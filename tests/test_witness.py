"""Tests for witness classification and minimalization (Cor. 4.1 discussion)."""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    perturb_enlarge_edge,
)
from repro.hypergraph.transversal import is_minimal_transversal
from repro.duality import decide_duality
from repro.duality.witness import (
    WitnessRole,
    check_result_witness,
    classify_witness,
    explain,
    extract_missing_minimal_transversal,
    witness_direction_pair,
)


class TestClassifyWitness:
    def test_new_transversal_of_g(self):
        g, h = matching_dual_pair(2)
        broken = perturb_drop_edge(h)
        missing = (set(h.edges) - set(broken.edges)).pop()
        assert classify_witness(g, broken, missing) is WitnessRole.NEW_TRANSVERSAL_OF_G

    def test_new_transversal_of_h(self):
        g, h = matching_dual_pair(2)
        broken_g = perturb_drop_edge(g)
        # With G missing an edge, some subset traverses H without
        # containing a G-edge... direction flips: classify from (broken_g, h).
        missing = (set(g.edges) - set(broken_g.edges)).pop()
        assert classify_witness(broken_g, h, missing) is WitnessRole.NEW_TRANSVERSAL_OF_H

    def test_extra_edge_of_h(self):
        g, h = matching_dual_pair(2)
        fat = perturb_enlarge_edge(h)
        fat_edge = max(fat.edges, key=len)
        assert classify_witness(g, fat, fat_edge) is WitnessRole.EXTRA_EDGE_OF_H

    def test_invalid(self):
        g, h = matching_dual_pair(2)
        assert classify_witness(g, h, frozenset({0})) is WitnessRole.INVALID


class TestResultValidation:
    def test_every_engine_witness_validates(self):
        from repro.duality import available_methods

        g, h = hard_nondual_pair(3)
        for method in available_methods():
            result = decide_duality(g, h, method=method)
            assert not result.is_dual
            assert check_result_witness(g, h, result), method

    def test_dual_results_pass_trivially(self):
        g, h = matching_dual_pair(2)
        result = decide_duality(g, h, method="bm")
        assert check_result_witness(g, h, result)

    def test_direction_pair(self):
        g, h = hard_nondual_pair(2)
        result = decide_duality(g, h, method="transversal")
        pair = witness_direction_pair(g, h, result)
        assert pair is not None

    def test_explain_strings(self):
        g, h = matching_dual_pair(2)
        assert "dual" in explain(g, h, decide_duality(g, h))
        g2, h2 = hard_nondual_pair(2)
        text = explain(g2, h2, decide_duality(g2, h2))
        assert "not dual" in text


class TestMinimalization:
    def test_extracts_missing_minimal_transversal(self):
        g, h = matching_dual_pair(3)
        broken = perturb_drop_edge(h, index=1)
        result = decide_duality(g, broken, method="logspace")
        witness = result.witness
        universe = g.vertices
        minimal = extract_missing_minimal_transversal(g, broken, witness)
        assert is_minimal_transversal(minimal, g.with_vertices(universe))
        assert minimal not in set(broken.edges)
        assert minimal in set(transversal_hypergraph(g).edges)

    def test_rejects_non_witness(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError):
            extract_missing_minimal_transversal(g, h, frozenset({0}))

    def test_minimalization_idempotent_on_minimal(self):
        g, h = matching_dual_pair(2)
        broken = perturb_drop_edge(h)
        missing = (set(h.edges) - set(broken.edges)).pop()
        assert extract_missing_minimal_transversal(g, broken, missing) == missing
