"""Regenerate the golden corpus (``python tests/corpus/generate.py``).

Each ``.hg`` file holds one duality instance (``G``, a ``==`` line,
``H``); ``MANIFEST.json`` records the expected verdict and why the
instance is in the corpus.  The families deliberately cover the
regressions past PRs tripped over:

* **skewed decomposition trees** — a tiny matching glued to a threshold
  block: the BM/logspace root has one giant child and several trivial
  ones, the shape one-level shard plans balance worst;
* **forced-true deltas** — matching instances drive the FK-B branch
  whose per-``u`` subproblems carry a delta of forced-true variables;
  the non-dual variant checks the delta is re-applied to the witness;
* **single-vertex edges** — singleton edges force vertices into every
  transversal (the ``graph_reduction`` forced part);
* **constants** — the Boolean-constant conventions (``tr(∅) = {∅}``);
* **extra-edge certificates** — an enlarged (non-minimal) H-edge, the
  entry-check failure path.

Verdicts in the manifest were cross-checked by every engine at
generation time; the replay tests assert today's engines still agree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.duality import decide_duality
from repro.hypergraph import Hypergraph
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    acyclic_dual_pair,
    graph_cover_pair,
    cycle_graph_edges,
    hard_nondual_pair,
    matching_dual_pair,
    perturb_enlarge_edge,
    random_dual_pair,
    threshold_dual_pair,
)
from repro.hypergraph.operations import relabel

HERE = Path(__file__).resolve().parent


def skewed_pair() -> tuple[Hypergraph, Hypergraph]:
    """M_1 ⊎ TH(7,4) with integer labels: one giant root child, one tiny."""
    g1, h1 = matching_dual_pair(1)  # vertices 0..1
    g2, h2 = threshold_dual_pair(7, 4)
    shift = {v: v + 2 for v in g2.vertices}
    g2, h2 = relabel(g2, shift), relabel(h2, shift)
    universe = g1.vertices | g2.vertices
    g = Hypergraph(tuple(g1.edges) + tuple(g2.edges), vertices=universe)
    h = Hypergraph(
        (e1 | e2 for e1 in h1.edges for e2 in h2.edges), vertices=universe
    )
    return g, h


def single_vertex_pair() -> tuple[Hypergraph, Hypergraph]:
    """Singleton edges mixed with a pair edge (forced vertices)."""
    g = Hypergraph([{0}, {1, 2}, {3}], vertices=range(4))
    h = Hypergraph([{0, 1, 3}, {0, 2, 3}], vertices=range(4))
    return g, h


def main() -> None:
    instances: dict[str, tuple[Hypergraph, Hypergraph, str]] = {}

    g, h = skewed_pair()
    instances["skewed-union"] = (g, h, "skewed decomposition tree (M1 ⊎ TH74)")
    instances["skewed-union-drop"] = (
        g,
        Hypergraph(list(h.edges)[:-1], vertices=h.vertices),
        "skewed tree with a missing transversal deep in the giant child",
    )

    g, h = matching_dual_pair(4)
    instances["matching-4"] = (g, h, "FK-B forced-true deltas (dual)")
    instances["matching-4-broken"] = (
        *hard_nondual_pair(4),
        "FK-B delta applied to the failing assignment (non-dual)",
    )

    instances["single-vertex-edges"] = (
        *single_vertex_pair(),
        "singleton edges force vertices into every transversal",
    )

    instances["constants"] = (
        Hypergraph.empty(),
        Hypergraph.trivial_true(),
        "tr(∅) = {∅}: the Boolean-constant convention",
    )

    g, h = threshold_dual_pair(7, 4)
    instances["threshold-7-4"] = (g, h, "self-dual-adjacent threshold pair")
    instances["threshold-7-4-enlarged"] = (
        g,
        perturb_enlarge_edge(h),
        "an enlarged H-edge: EXTRA_EDGE certificate via the entry check",
    )

    instances["cycle-5"] = (
        *graph_cover_pair(cycle_graph_edges(5)),
        "graph instance (rank 2): the tractable graph decider's home turf",
    )
    instances["acyclic-4"] = (
        *acyclic_dual_pair(4),
        "α-acyclic chain: GYO-guided Berge fast path",
    )
    instances["random-7-5"] = (
        *random_dual_pair(7, 5, seed=11),
        "irregular random dual pair",
    )

    manifest: dict[str, dict] = {}
    engines = ("bm", "logspace", "fk-a", "fk-b", "dfs-enum", "tractable")
    for name, (g, h, why) in sorted(instances.items()):
        verdicts = {e: decide_duality(g, h, method=e).is_dual for e in engines}
        assert len(set(verdicts.values())) == 1, (name, verdicts)
        hgio.dump_many([g, h], HERE / f"{name}.hg")
        manifest[name] = {
            "file": f"{name}.hg",
            "verdict": "dual" if verdicts[engines[0]] else "not-dual",
            "why": why,
        }
    (HERE / "MANIFEST.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(manifest)} corpus instances to {HERE}")


if __name__ == "__main__":
    main()
