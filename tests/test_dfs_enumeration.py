"""Tests for the space-efficient DFS enumerator and its decider (ref [44])."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.dfs_enumeration import (
    DFSStats,
    dfs_enumeration_stats,
    minimal_transversals_dfs,
    transversal_hypergraph_dfs,
)
from repro.hypergraph.generators import (
    matching,
    matching_dual_pair,
    perturb_drop_edge,
    threshold,
    threshold_dual_pair,
)
from repro.hypergraph.transversal import berge_peak_intermediate
from repro.duality import decide_duality
from repro.duality.enumeration import decide_by_dfs_enumeration
from repro.duality.witness import check_result_witness


class TestEnumerator:
    def test_matches_berge_on_families(self):
        for hg in (matching(3), threshold(5, 3), Hypergraph([{0, 1}, {1, 2}])):
            assert transversal_hypergraph_dfs(hg) == transversal_hypergraph(hg)

    def test_degenerate_conventions(self):
        assert transversal_hypergraph_dfs(Hypergraph.empty("ab")).edges == (
            frozenset(),
        )
        assert len(transversal_hypergraph_dfs(Hypergraph.trivial_true("ab"))) == 0

    def test_no_duplicates(self):
        hg = threshold(6, 3)
        out = list(minimal_transversals_dfs(hg))
        assert len(out) == len(set(out))

    def test_stats_accounting(self):
        stats = DFSStats()
        list(minimal_transversals_dfs(matching(4), stats))
        assert stats.yielded == 16
        assert stats.peak_partial == 4          # one vertex per pair
        assert stats.peak_depth == 4            # number of edges
        assert stats.peak_live_sets() == 1

    def test_working_set_beats_berge_peak(self):
        # matchings: Berge holds 2^k sets at its peak, DFS holds one
        # k-vertex partial — the space-efficiency contrast of ref [44].
        for k in (4, 6, 8):
            hg = matching(k)
            stats = dfs_enumeration_stats(hg)
            assert stats.peak_partial == k
            assert berge_peak_intermediate(hg) == 2 ** k

    def test_lazy_generation(self):
        hg = matching(10)  # 1024 transversals
        it = minimal_transversals_dfs(hg)
        first = [next(it) for _ in range(5)]
        assert len(set(first)) == 5

    @given(
        st.lists(
            st.frozensets(
                st.integers(min_value=0, max_value=5), min_size=1, max_size=3
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_dfs_equals_berge_random(self, edges):
        hg = Hypergraph(edges).minimized()
        assert transversal_hypergraph_dfs(hg) == transversal_hypergraph(hg)
        out = list(minimal_transversals_dfs(hg))
        assert len(out) == len(set(out))


class TestDecider:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: matching_dual_pair(3),
            lambda: threshold_dual_pair(5, 3),
            lambda: threshold_dual_pair(6, 3),
        ],
    )
    def test_accepts_dual_pairs(self, maker):
        g, h = maker()
        result = decide_by_dfs_enumeration(g, h)
        assert result.is_dual
        assert result.stats.extra["peak_partial"] <= len(g.vertices | h.vertices)

    def test_refutes_with_missing_transversal(self):
        g, h = matching_dual_pair(3)
        broken = perturb_drop_edge(h, index=1)
        result = decide_by_dfs_enumeration(g, broken)
        # either the entry check or the enumeration refutes; both carry
        # a checkable certificate
        assert not result.is_dual
        universe = g.vertices | broken.vertices
        assert check_result_witness(
            g.with_vertices(universe), broken.with_vertices(universe), result
        )

    def test_facade_integration(self):
        g, h = matching_dual_pair(2)
        assert decide_duality(g, h, method="dfs-enum").is_dual

    def test_constants(self):
        assert decide_by_dfs_enumeration(
            Hypergraph.empty("ab"), Hypergraph.trivial_true("ab")
        ).is_dual
        assert not decide_by_dfs_enumeration(
            Hypergraph.empty("ab"), Hypergraph.empty("ab")
        ).is_dual

    @given(
        st.lists(
            st.frozensets(
                st.integers(min_value=0, max_value=4), min_size=1, max_size=3
            ),
            min_size=1,
            max_size=4,
        ),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_reference(self, edges, perturb):
        g = Hypergraph(edges, vertices=range(5)).minimized()
        h = transversal_hypergraph(g)
        if perturb and len(h) > 1:
            h = Hypergraph(list(h.edges)[:-1], vertices=h.vertices)
        fast = decide_by_dfs_enumeration(g, h)
        slow = decide_duality(g, h, method="transversal")
        assert fast.is_dual == slow.is_dual
