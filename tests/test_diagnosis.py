"""Tests for :mod:`repro.diagnosis` — circuits, conflicts, HS-tree, Dual link."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError, VertexError
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.diagnosis import (
    Circuit,
    CircuitDiagnosisProblem,
    Gate,
    OracleDiagnosisProblem,
    conflict_hypergraph,
    extract_minimal_conflict,
    full_adder,
    hs_tree_diagnoses,
    is_conflict,
    minimal_conflicts,
    minimal_conflicts_brute_force,
    minimal_diagnoses,
    one_bit_comparator,
    two_bit_adder,
    verify_diagnosis_completeness,
)
from repro.diagnosis.hstree import (
    greiner_counterexample,
    hs_tree_reiter_subset_rule,
    make_scripted_provider,
)


# ----------------------------------------------------------------------
# Circuits
# ----------------------------------------------------------------------


class TestGate:
    def test_kinds(self):
        values = {"a": True, "b": False}
        assert Gate("g", "and", ("a", "b")).compute(values) is False
        assert Gate("g", "or", ("a", "b")).compute(values) is True
        assert Gate("g", "xor", ("a", "b")).compute(values) is True
        assert Gate("g", "nand", ("a", "b")).compute(values) is True
        assert Gate("g", "nor", ("a", "b")).compute(values) is False
        assert Gate("g", "not", ("a",)).compute(values) is False
        assert Gate("g", "buf", ("b",)).compute(values) is False

    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidInstanceError):
            Gate("g", "majority", ("a", "b", "c"))

    def test_arity_validation(self):
        with pytest.raises(InvalidInstanceError):
            Gate("g", "not", ("a", "b"))
        with pytest.raises(InvalidInstanceError):
            Gate("g", "and", ())


class TestCircuit:
    def test_full_adder_truth_table(self):
        circuit = full_adder()
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    s, cout = circuit.output_values(
                        {"a": a, "b": b, "cin": cin}
                    )
                    total = a + b + cin
                    assert s == bool(total % 2)
                    assert cout == bool(total >= 2)

    def test_two_bit_adder_truth_table(self):
        circuit = two_bit_adder()
        for x in range(4):
            for y in range(4):
                s0, s1, c1 = circuit.output_values(
                    {
                        "a0": x & 1,
                        "a1": (x >> 1) & 1,
                        "b0": y & 1,
                        "b1": (y >> 1) & 1,
                        "cin": 0,
                    }
                )
                total = x + y
                assert (int(s0) + 2 * int(s1) + 4 * int(c1)) == total

    def test_comparator(self):
        circuit = one_bit_comparator()
        lt, eq = circuit.output_values({"a": 0, "b": 1})
        assert lt and not eq
        lt, eq = circuit.output_values({"a": 1, "b": 1})
        assert not lt and eq

    def test_fault_override_changes_outputs(self):
        circuit = full_adder()
        healthy = circuit.output_values({"a": 1, "b": 0, "cin": 0})
        faulty = circuit.output_values(
            {"a": 1, "b": 0, "cin": 0}, fault_overrides={"x1": False}
        )
        assert healthy != faulty

    def test_rejects_cycle(self):
        with pytest.raises(InvalidInstanceError):
            Circuit(
                [Gate("g1", "buf", ("g2",)), Gate("g2", "buf", ("g1",))],
                inputs=("a",),
                outputs=("g1",),
            )

    def test_rejects_unknown_signal(self):
        with pytest.raises(VertexError):
            Circuit([Gate("g", "buf", ("zz",))], inputs=("a",), outputs=("g",))

    def test_rejects_duplicate_gates(self):
        with pytest.raises(InvalidInstanceError):
            Circuit(
                [Gate("g", "buf", ("a",)), Gate("g", "not", ("a",))],
                inputs=("a",),
                outputs=("g",),
            )

    def test_missing_input_raises(self):
        with pytest.raises(VertexError):
            full_adder().evaluate({"a": 1})

    def test_consistency_weak_fault_model(self):
        circuit = full_adder()
        inputs = {"a": 1, "b": 0, "cin": 0}
        correct = dict(zip(circuit.outputs, circuit.output_values(inputs)))
        # the correct observation is consistent with everything healthy
        assert circuit.consistent(inputs, correct, circuit.components)
        # a wrong sum is not
        wrong = dict(correct)
        wrong["x2"] = not wrong["x2"]
        assert not circuit.consistent(inputs, wrong, circuit.components)
        # ... but is explainable if the sum chain may be faulty
        assert circuit.consistent(
            inputs, wrong, circuit.components - {"x2"}
        )


# ----------------------------------------------------------------------
# Problems and conflicts
# ----------------------------------------------------------------------


def adder_problem() -> CircuitDiagnosisProblem:
    """Full adder observed with the x1 gate stuck low."""
    return CircuitDiagnosisProblem.observe_fault(
        full_adder(), {"a": 1, "b": 0, "cin": 0}, {"x1": False}
    )


class TestProblems:
    def test_observe_fault_builds_faulty_observation(self):
        problem = adder_problem()
        assert problem.is_faulty_observation()

    def test_healthy_observation_has_empty_diagnosis(self):
        circuit = full_adder()
        inputs = {"a": 1, "b": 1, "cin": 0}
        correct = dict(zip(circuit.outputs, circuit.output_values(inputs)))
        problem = CircuitDiagnosisProblem(circuit, inputs, correct)
        assert not problem.is_faulty_observation()
        assert minimal_diagnoses(problem).edges == (frozenset(),)

    def test_consistency_is_antimonotone(self):
        assert adder_problem().check_antimonotone_exhaustive()

    def test_oracle_counts_and_memoises(self):
        problem = adder_problem()
        problem.consistent(problem.components)
        problem.consistent(problem.components)
        assert problem.oracle_calls == 1

    def test_from_conflicts(self):
        problem = OracleDiagnosisProblem.from_conflicts(
            "abc", [{"a", "b"}]
        )
        assert is_conflict(problem, {"a", "b"})
        assert is_conflict(problem, {"a", "b", "c"})
        assert not is_conflict(problem, {"a"})

    def test_rejects_empty_components(self):
        with pytest.raises(InvalidInstanceError):
            OracleDiagnosisProblem((), lambda h: True)

    def test_rejects_unknown_component_query(self):
        problem = adder_problem()
        with pytest.raises(VertexError):
            problem.consistent({"nonexistent-gate"})


class TestConflicts:
    def test_extract_returns_minimal_conflict(self):
        problem = adder_problem()
        conflict = extract_minimal_conflict(problem)
        assert conflict is not None
        assert is_conflict(problem, conflict)
        for c in conflict:
            assert not is_conflict(problem, conflict - {c})

    def test_extract_none_when_consistent(self):
        problem = adder_problem()
        # the sum chain is the conflict; excluding it leaves consistency
        assert extract_minimal_conflict(problem, within={"a1", "a2", "o1"}) is None

    def test_learned_equals_brute_force(self):
        problem_a = adder_problem()
        problem_b = adder_problem()
        assert minimal_conflicts(problem_a) == minimal_conflicts_brute_force(
            problem_b
        )

    def test_full_adder_conflict_is_sum_chain(self):
        conflicts = minimal_conflicts(adder_problem())
        assert conflicts.edges == (frozenset({"x1", "x2"}),)


# ----------------------------------------------------------------------
# HS-tree and the diagnoses façade
# ----------------------------------------------------------------------


class TestHSTree:
    def test_routes_agree_on_adder(self):
        d1 = minimal_diagnoses(adder_problem(), "hstree")
        d2 = minimal_diagnoses(adder_problem(), "transversal")
        d3 = minimal_diagnoses(adder_problem(), "brute-force")
        assert d1 == d2 == d3
        assert d1.edges == (frozenset({"x1"}), frozenset({"x2"}))

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            minimal_diagnoses(adder_problem(), "quantum")

    def test_diagnoses_are_hitting_sets(self):
        problem = adder_problem()
        conflicts = minimal_conflicts(adder_problem())
        diagnoses, _stats = hs_tree_diagnoses(problem)
        for d in diagnoses.edges:
            assert all(d & c for c in conflicts.edges)

    def test_hitting_set_theorem(self):
        # diagnoses = tr(conflicts), Reiter's theorem
        conflicts = minimal_conflicts(adder_problem())
        diagnoses = minimal_diagnoses(adder_problem(), "hstree")
        assert diagnoses == transversal_hypergraph(conflicts).with_vertices(
            diagnoses.vertices
        )

    def test_stats_accounting(self):
        _diagnoses, stats = hs_tree_diagnoses(adder_problem())
        assert stats.nodes_expanded >= 1
        assert stats.labels_computed >= 1
        assert stats.labels_computed + stats.labels_reused >= 1

    def test_max_nodes_valve(self):
        problem = OracleDiagnosisProblem.from_conflicts(
            range(6), [{0, 1}, {2, 3}, {4, 5}]
        )
        with pytest.raises(RuntimeError):
            hs_tree_diagnoses(problem, max_nodes=1)

    def test_injected_fault_is_covered(self):
        # the actually injected fault must contain some minimal diagnosis
        problem = CircuitDiagnosisProblem.observe_fault(
            two_bit_adder(), {"a0": 1, "b0": 1, "a1": 0, "b1": 1, "cin": 0},
            {"c0": False},
        )
        if problem.is_faulty_observation():
            diagnoses = minimal_diagnoses(problem, "hstree")
            assert any(d <= {"c0"} or d == frozenset({"c0"})
                       for d in diagnoses.edges) or any(
                "c0" in d for d in diagnoses.edges
            )

    @given(
        st.lists(
            st.frozensets(
                st.integers(min_value=0, max_value=4), min_size=1, max_size=3
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_hstree_equals_transversal_on_random_conflicts(self, families):
        hg = Hypergraph(families, vertices=range(5)).minimized()
        problem = OracleDiagnosisProblem.from_conflicts(range(5), hg.edges)
        diagnoses, _ = hs_tree_diagnoses(problem)
        assert diagnoses == transversal_hypergraph(hg).with_vertices(
            frozenset(range(5))
        )


class TestGreinerCorrection:
    def test_reiter_subset_rule_loses_a_diagnosis(self):
        problem_factory, provider_factory, expected = greiner_counterexample()
        got, stats = hs_tree_reiter_subset_rule(
            problem_factory(), conflict_provider=provider_factory()
        )
        assert stats.subset_rule_firings > 0
        assert got != expected
        assert set(got.edges) < set(expected.edges)

    def test_sound_variant_survives_the_same_adversary(self):
        problem_factory, provider_factory, expected = greiner_counterexample()
        got, _stats = hs_tree_diagnoses(
            problem_factory(), conflict_provider=provider_factory()
        )
        assert got == expected

    def test_variants_agree_with_minimal_labels(self):
        # with guaranteed-minimal labels the subset rule never fires
        problem_factory, _provider, expected = greiner_counterexample()
        got, stats = hs_tree_reiter_subset_rule(problem_factory())
        assert got == expected
        assert stats.subset_rule_firings == 0

    def test_scripted_provider_validates_labels(self):
        problem = OracleDiagnosisProblem.from_conflicts("ab", [{"a"}])
        provider = make_scripted_provider([frozenset({"b"})])  # not a conflict
        # falls back to a genuine minimal conflict
        label = provider(problem, frozenset())
        assert label == frozenset({"a"})


# ----------------------------------------------------------------------
# The Dual link
# ----------------------------------------------------------------------


class TestDualityLink:
    def test_complete_diagnosis_set_verifies(self):
        conflicts = conflict_hypergraph(adder_problem())
        diagnoses = minimal_diagnoses(adder_problem(), "hstree")
        for method in ("transversal", "bm", "fk-b", "logspace"):
            assert verify_diagnosis_completeness(
                conflicts, diagnoses, method=method
            ).is_dual

    def test_incomplete_diagnosis_set_is_refuted(self):
        problem = OracleDiagnosisProblem.from_conflicts(
            range(4), [{0, 1}, {2, 3}]
        )
        conflicts = minimal_conflicts(problem)
        full = minimal_diagnoses(
            OracleDiagnosisProblem.from_conflicts(range(4), [{0, 1}, {2, 3}]),
            "transversal",
        )
        assert len(full) == 4
        partial = Hypergraph(list(full.edges)[:-1], vertices=full.vertices)
        result = verify_diagnosis_completeness(conflicts, partial)
        assert not result.is_dual

    def test_wrong_diagnosis_is_refuted(self):
        conflicts = Hypergraph([{0, 1}], vertices=range(3))
        wrong = Hypergraph([{0, 1}], vertices=range(3))  # non-minimal "diagnosis"
        result = verify_diagnosis_completeness(conflicts, wrong)
        assert not result.is_dual
