"""Tests for BooleanRelation and frequency semantics (paper conventions)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError, VertexError
from repro.itemsets import (
    BooleanRelation,
    frequency,
    grow_to_maximal_frequent,
    is_frequent,
    is_infrequent,
    shrink_to_minimal_infrequent,
    support_map,
)
from repro.itemsets.frequency import item_frequencies, validate_threshold


@pytest.fixture
def small_relation() -> BooleanRelation:
    return BooleanRelation(
        [
            {"a", "b", "c"},
            {"a", "b"},
            {"a", "b"},
            {"b", "c"},
            {"c"},
        ],
        items={"a", "b", "c", "d"},
    )


class TestRelation:
    def test_duplicates_preserved(self):
        rel = BooleanRelation([{"a"}, {"a"}])
        assert len(rel) == 2

    def test_items_default_to_union(self):
        rel = BooleanRelation([{"a"}, {"b"}])
        assert rel.items == {"a", "b"}

    def test_explicit_universe_allows_absent_items(self, small_relation):
        assert "d" in small_relation.items

    def test_rows_outside_universe_rejected(self):
        with pytest.raises(VertexError):
            BooleanRelation([{"z"}], items={"a"})

    def test_bitmap_roundtrip(self, small_relation):
        back = BooleanRelation.from_bitmap(
            small_relation.as_bitmap(), items=small_relation.items
        )
        assert back == small_relation

    def test_restrict_items(self, small_relation):
        projected = small_relation.restrict_items({"a", "b"})
        assert projected.items == {"a", "b"}
        assert len(projected) == len(small_relation)

    def test_restrict_items_validates(self, small_relation):
        with pytest.raises(VertexError):
            small_relation.restrict_items({"zz"})

    def test_distinct(self):
        rel = BooleanRelation([{"a"}, {"a"}, {"b"}])
        assert len(rel.distinct()) == 2

    def test_sample_rows(self, small_relation):
        sampled = small_relation.sample_rows([0, 1])
        assert len(sampled) == 2

    def test_equality_and_hash(self):
        a = BooleanRelation([{"x"}], items={"x", "y"})
        b = BooleanRelation([{"x"}], items={"x", "y"})
        assert a == b
        assert len({a, b}) == 1


class TestFrequency:
    def test_counts(self, small_relation):
        assert frequency(small_relation, {"a", "b"}) == 3
        assert frequency(small_relation, {"c"}) == 3
        assert frequency(small_relation, {"d"}) == 0
        assert frequency(small_relation, set()) == 5

    def test_strictness_of_threshold(self, small_relation):
        # f({"a","b"}) = 3: frequent iff z < 3, strictly.
        assert is_frequent(small_relation, {"a", "b"}, 2)
        assert not is_frequent(small_relation, {"a", "b"}, 3)
        assert is_infrequent(small_relation, {"a", "b"}, 3)

    def test_threshold_domain(self, small_relation):
        with pytest.raises(InvalidInstanceError):
            validate_threshold(small_relation, 0)
        with pytest.raises(InvalidInstanceError):
            validate_threshold(small_relation, 6)
        with pytest.raises(InvalidInstanceError):
            validate_threshold(small_relation, 2.5)
        assert validate_threshold(small_relation, 5) == 5

    def test_unknown_items_rejected(self, small_relation):
        with pytest.raises(VertexError):
            frequency(small_relation, {"zz"})

    def test_empty_set_at_boundary_threshold(self, small_relation):
        # z = |M| makes even ∅ infrequent.
        assert is_infrequent(small_relation, set(), 5)
        assert is_frequent(small_relation, set(), 4)

    def test_support_map(self, small_relation):
        counts = support_map(small_relation, [{"a"}, {"b"}, {"a", "b"}])
        assert counts[frozenset({"a"})] == 3
        assert counts[frozenset({"b"})] == 4
        assert counts[frozenset({"a", "b"})] == 3

    def test_item_frequencies(self, small_relation):
        freqs = item_frequencies(small_relation)
        assert freqs["d"] == 0
        assert freqs["b"] == 4

    @given(st.lists(st.frozensets(st.sampled_from("abcd")), min_size=1, max_size=8))
    def test_antitone(self, rows):
        rel = BooleanRelation(rows, items=set("abcd"))
        assert frequency(rel, {"a"}) >= frequency(rel, {"a", "b"})
        assert frequency(rel, set()) == len(rel)


class TestGrowShrink:
    def test_grow_reaches_maximal(self, small_relation):
        z = 2
        grown = grow_to_maximal_frequent(small_relation, {"a"}, z)
        assert is_frequent(small_relation, grown, z)
        for item in small_relation.items - grown:
            assert not is_frequent(small_relation, grown | {item}, z)

    def test_grow_requires_frequent_start(self, small_relation):
        with pytest.raises(InvalidInstanceError):
            grow_to_maximal_frequent(small_relation, {"d"}, 2)

    def test_shrink_reaches_minimal(self, small_relation):
        z = 2
        shrunk = shrink_to_minimal_infrequent(
            small_relation, {"a", "b", "c", "d"}, z
        )
        assert not is_frequent(small_relation, shrunk, z)
        for item in shrunk:
            assert is_frequent(small_relation, shrunk - {item}, z)

    def test_shrink_requires_infrequent_start(self, small_relation):
        with pytest.raises(InvalidInstanceError):
            shrink_to_minimal_infrequent(small_relation, {"a"}, 2)

    def test_deterministic(self, small_relation):
        a = grow_to_maximal_frequent(small_relation, {"b"}, 2)
        b = grow_to_maximal_frequent(small_relation, {"b"}, 2)
        assert a == b
