"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.hypergraph import Hypergraph
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import hard_nondual_pair, matching_dual_pair


@pytest.fixture
def dual_files(tmp_path):
    g, h = matching_dual_pair(2)
    g_path, h_path = tmp_path / "g.hg", tmp_path / "h.hg"
    hgio.dump(g, g_path)
    hgio.dump(h, h_path)
    return g_path, h_path


@pytest.fixture
def nondual_files(tmp_path):
    g, h = hard_nondual_pair(2)
    g_path, h_path = tmp_path / "g.hg", tmp_path / "h.hg"
    hgio.dump(g, g_path)
    hgio.dump(h, h_path)
    return g_path, h_path


class TestDualCommand:
    def test_dual_pair_exit_zero(self, dual_files, capsys):
        g, h = dual_files
        assert main(["dual", str(g), str(h)]) == 0
        assert "dual" in capsys.readouterr().out

    def test_nondual_exit_one(self, nondual_files, capsys):
        g, h = nondual_files
        assert main(["dual", str(g), str(h)]) == 1
        out = capsys.readouterr().out
        assert "not dual" in out

    def test_method_selection(self, dual_files):
        g, h = dual_files
        assert main(["dual", str(g), str(h), "--method", "fk-b"]) == 0


class TestTrCommand:
    def test_prints_transversals(self, tmp_path, capsys):
        path = tmp_path / "g.hg"
        hgio.dump(Hypergraph([{1, 2}]), path)
        assert main(["tr", str(path)]) == 0
        out = capsys.readouterr().out
        assert "{1}" in out and "{2}" in out


class TestTreeAndPathnode:
    def test_tree_output(self, dual_files, capsys):
        g, h = dual_files
        assert main(["tree", str(g), str(h)]) == 0
        out = capsys.readouterr().out
        assert "T(G,H)" in out
        assert "[done]" in out

    def test_tree_fail_exit(self, nondual_files):
        g, h = nondual_files
        assert main(["tree", str(g), str(h)]) == 1

    def test_pathnode_root(self, dual_files, capsys):
        g, h = dual_files
        assert main(["pathnode", str(g), str(h)]) == 0
        assert "label: []" in capsys.readouterr().out

    def test_pathnode_wrongpath(self, dual_files, capsys):
        g, h = dual_files
        assert main(["pathnode", str(g), str(h), "9999"]) == 1
        assert "wrongpath" in capsys.readouterr().out


class TestBordersCommand:
    def test_borders(self, tmp_path, capsys):
        tx = tmp_path / "tx.txt"
        tx.write_text("a b\na b\na b\nb c\n", encoding="utf-8")
        assert main(["borders", str(tx), "2"]) == 0
        out = capsys.readouterr().out
        assert "IS+" in out and "IS-" in out


class TestKeysCommand:
    def test_keys(self, tmp_path, capsys):
        path = tmp_path / "rel.csv"
        path.write_text("A,B\n1,1\n1,2\n2,1\n", encoding="utf-8")
        assert main(["keys", str(path)]) == 0
        out = capsys.readouterr().out
        assert "minimal keys" in out

    def test_empty_relation(self, tmp_path):
        path = tmp_path / "rel.csv"
        path.write_text("A,B\n", encoding="utf-8")
        assert main(["keys", str(path)]) == 1


class TestCoterieCommand:
    def test_nondominated(self, tmp_path, capsys):
        path = tmp_path / "q.hg"
        hgio.dump(Hypergraph([{0, 1}, {0, 2}, {1, 2}]), path)
        assert main(["coterie", str(path)]) == 0
        assert "non-dominated" in capsys.readouterr().out

    def test_dominated(self, tmp_path, capsys):
        path = tmp_path / "q.hg"
        hgio.dump(Hypergraph([{0, 1}], vertices={0, 1}), path)
        assert main(["coterie", str(path)]) == 1
        assert "DOMINATED" in capsys.readouterr().out

    def test_invalid(self, tmp_path, capsys):
        path = tmp_path / "q.hg"
        hgio.dump(Hypergraph([{0}, {1}]), path)
        assert main(["coterie", str(path)]) == 1
        assert "not a coterie" in capsys.readouterr().out


class TestClassifyCommand:
    def test_acyclic_instance(self, tmp_path, capsys):
        path = tmp_path / "g.hg"
        hgio.dump(Hypergraph([{0, 1}, {1, 2}]), path)
        assert main(["classify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "alpha-acyclic:      True" in out

    def test_cyclic_instance(self, tmp_path, capsys):
        path = tmp_path / "g.hg"
        hgio.dump(Hypergraph([{0, 1}, {1, 2}, {0, 2}]), path)
        assert main(["classify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "alpha-acyclic:      False" in out


class TestRulesCommand:
    def test_rules(self, tmp_path, capsys):
        tx = tmp_path / "tx.txt"
        tx.write_text("a b\na b\na b\nb\n", encoding="utf-8")
        assert main(["rules", str(tx), "2", "--min-confidence", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "association rules" in out
        assert "->" in out


class TestInfoCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "PSPACE" in capsys.readouterr().out

    def test_chi(self, capsys):
        assert main(["chi", "1000000"]) == 0
        assert "chi(" in capsys.readouterr().out


class TestLearnCommand:
    def test_learn_majority(self, capsys):
        assert main(["learn", "a b | b c | a c"]) == 0
        out = capsys.readouterr().out
        assert "minimal true points" in out
        assert "membership queries" in out
        assert "(a|b)" in out.replace(" ", "") or "learned CNF" in out

    def test_learn_with_engine(self, capsys):
        assert main(["learn", "a b", "--method", "logspace"]) == 0
        assert "duality checks" in capsys.readouterr().out


class TestDiagnoseCommand:
    def test_injected_fault(self, capsys):
        code = main(
            [
                "diagnose",
                "full-adder",
                "--inputs",
                "a=1,b=0,cin=0",
                "--fault",
                "x1=0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal diagnoses" in out
        assert "x1" in out

    def test_observed_outputs(self, capsys):
        code = main(
            [
                "diagnose",
                "full-adder",
                "--inputs",
                "a=1,b=0,cin=0",
                "--observe",
                "x2=0,o1=0",
            ]
        )
        assert code == 0
        assert "completeness" in capsys.readouterr().out

    def test_healthy_observation(self, capsys):
        code = main(
            [
                "diagnose",
                "full-adder",
                "--inputs",
                "a=1,b=0,cin=0",
                "--observe",
                "x2=1,o1=0",
            ]
        )
        assert code == 0
        assert "nothing to diagnose" in capsys.readouterr().out


class TestAbduceCommand:
    def test_explanations(self, tmp_path, capsys):
        theory = tmp_path / "t.horn"
        theory.write_text(
            "rain -> wet\nsprinkler -> wet\nwet cold -> ice\n-> cold\n",
            encoding="utf-8",
        )
        code = main(
            [
                "abduce",
                str(theory),
                "ice",
                "--hypotheses",
                "rain,sprinkler,cold",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "{rain}" in out and "{sprinkler}" in out

    def test_unexplainable_exits_one(self, tmp_path, capsys):
        theory = tmp_path / "t.horn"
        theory.write_text("a -> b\nq -> q\n", encoding="utf-8")
        code = main(["abduce", str(theory), "q", "--hypotheses", "a,b"])
        assert code == 1


class TestEnvelopeCommand:
    def test_envelope_of_xor(self, tmp_path, capsys):
        models = tmp_path / "m.txt"
        models.write_text("a\nb\n", encoding="utf-8")
        assert main(["envelope", str(models)]) == 0
        out = capsys.readouterr().out
        assert "a b -> !" in out
        assert "strict approximation" in out

    def test_envelope_exact_marker(self, tmp_path, capsys):
        models = tmp_path / "m.txt"
        models.write_text("-\na\na b\n", encoding="utf-8")
        assert main(["envelope", str(models)]) == 0
        assert "exact" in capsys.readouterr().out


class TestSelfDualCommand:
    def test_self_dual(self, tmp_path, capsys):
        from repro.hypergraph.generators import threshold

        path = tmp_path / "g.hg"
        hgio.dump(threshold(5), path)  # odd-majority: self-dual
        assert main(["selfdual", str(path)]) == 0
        assert "self-dual" in capsys.readouterr().out

    def test_not_self_dual(self, tmp_path, capsys):
        path = tmp_path / "g.hg"
        hgio.dump(Hypergraph([{0, 1}, {2, 3}]), path)
        assert main(["selfdual", str(path)]) == 1
        assert "NOT" in capsys.readouterr().out


class TestConsoleScriptParity:
    """The installed ``repro`` command and ``python -m repro`` are the
    same entry point (pyproject's console script routes to
    ``repro.cli:main``), so the three invocation styles must agree."""

    def test_entry_point_declared_and_resolvable(self):
        import tomllib
        from pathlib import Path

        pyproject = Path(__file__).parents[1] / "pyproject.toml"
        metadata = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        scripts = metadata["project"]["scripts"]
        assert scripts["repro"] == "repro.cli:main"
        assert scripts["monotone-dual"] == "repro.cli:main"
        # The declared target resolves to the callable this suite tests.
        module_name, _, attr = scripts["repro"].partition(":")
        import importlib

        assert getattr(importlib.import_module(module_name), attr) is main

    def test_python_m_repro_matches_direct_main(self, capsys):
        import os
        import subprocess
        import sys
        from pathlib import Path

        assert main(["chi", "64"]) == 0
        direct = capsys.readouterr().out

        src = Path(__file__).parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "chi", "64"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0
        assert proc.stdout == direct
