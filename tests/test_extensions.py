"""Tests for the extension features: policies, Berge ordering, rules,
inverse mining, ND closure, streaming transducers."""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    matching_dual_pair,
    perturb_drop_edge,
    random_simple,
    threshold_dual_pair,
)
from repro.hypergraph.transversal import berge_peak_intermediate


class TestTieBreakPolicies:
    def test_all_policies_give_correct_verdicts(self):
        from repro.duality.boros_makino import decide_boros_makino
        from repro.duality.policies import ALL_POLICIES

        g, h = threshold_dual_pair(6, 3)
        broken = perturb_drop_edge(h)
        for policy in ALL_POLICIES:
            assert decide_boros_makino(g, h, policy=policy).is_dual, policy.name
            assert not decide_boros_makino(g, broken, policy=policy).is_dual, (
                policy.name
            )

    def test_policies_may_change_tree_size_not_verdict(self):
        from repro.duality.boros_makino import tree_for
        from repro.duality.policies import ALL_POLICIES

        g, h = threshold_dual_pair(6, 3)
        if len(h) > len(g):
            g, h = h, g
        sizes = {}
        for policy in ALL_POLICIES:
            tree = tree_for(g, h, policy=policy)
            assert tree.all_done(), policy.name
            sizes[policy.name] = tree.node_count()
        assert len(sizes) == len(ALL_POLICIES)

    def test_policy_lookup(self):
        from repro.duality.policies import PAPER_POLICY, policy_by_name

        assert policy_by_name("paper") is PAPER_POLICY
        with pytest.raises(ValueError):
            policy_by_name("nonsense")

    def test_paper_policy_is_default(self):
        from repro.duality.boros_makino import tree_for
        from repro.duality.policies import PAPER_POLICY

        g, h = matching_dual_pair(3)
        g, h = (h, g) if len(h) > len(g) else (g, h)
        default_tree = tree_for(g, h)
        paper_tree = tree_for(g, h, policy=PAPER_POLICY)
        assert default_tree.labels() == paper_tree.labels()


class TestBergeOrdering:
    @pytest.mark.parametrize(
        "order", ("canonical", "small-first", "large-first", "interleaved")
    )
    def test_result_independent_of_order(self, order):
        for seed in range(4):
            hg = random_simple(7, 5, seed=seed)
            assert transversal_hypergraph(hg, order=order) == (
                transversal_hypergraph(hg)
            )

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            transversal_hypergraph(Hypergraph([{1}]), order="random")

    def test_peak_intermediate_measured(self):
        hg = random_simple(8, 6, seed=3)
        peaks = {
            order: berge_peak_intermediate(hg, order)
            for order in ("canonical", "small-first", "large-first", "interleaved")
        }
        final = len(transversal_hypergraph(hg))
        assert all(peak >= 1 for peak in peaks.values())
        assert max(peaks.values()) >= final or final <= 1

    def test_trivial_true_peak_zero(self):
        assert berge_peak_intermediate(Hypergraph.trivial_true()) == 0


class TestAssociationRules:
    @pytest.fixture
    def relation(self):
        from repro.itemsets import BooleanRelation

        return BooleanRelation(
            [
                {"bread", "milk"},
                {"bread", "milk"},
                {"bread", "milk", "eggs"},
                {"bread", "eggs"},
                {"milk"},
            ],
            items={"bread", "milk", "eggs"},
        )

    def test_rule_statistics_exact(self, relation):
        from repro.itemsets.rules import mine_rules

        rules = mine_rules(relation, z=2, min_confidence=0.5)
        by_pair = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent))): r
            for r in rules
        }
        rule = by_pair[(("milk",), ("bread",))]
        # f(milk)=4, f(bread,milk)=3.
        assert rule.support == 3
        assert rule.confidence == pytest.approx(3 / 4)
        assert rule.lift == pytest.approx((3 / 4) / (4 / 5))

    def test_min_confidence_filters(self, relation):
        from repro.itemsets.rules import mine_rules

        strict = mine_rules(relation, z=2, min_confidence=0.99)
        loose = mine_rules(relation, z=2, min_confidence=0.5)
        assert len(strict) <= len(loose)

    def test_rule_unions_are_frequent(self, relation):
        from repro.itemsets import is_frequent
        from repro.itemsets.rules import mine_rules

        for rule in mine_rules(relation, z=2, min_confidence=0.5):
            assert is_frequent(relation, rule.antecedent | rule.consequent, 2)

    def test_rules_under_border(self, relation):
        from repro.itemsets import maximal_frequent_itemsets
        from repro.itemsets.rules import mine_rules, rules_under_border

        rules = mine_rules(relation, z=2, min_confidence=0.5)
        border = maximal_frequent_itemsets(relation, 2)
        assert rules_under_border(rules, border)

    def test_bad_confidence_rejected(self, relation):
        from repro.errors import InvalidInstanceError
        from repro.itemsets.rules import mine_rules

        with pytest.raises(InvalidInstanceError):
            mine_rules(relation, z=2, min_confidence=0.0)

    def test_deterministic_order(self, relation):
        from repro.itemsets.rules import mine_rules

        assert mine_rules(relation, z=2) == mine_rules(relation, z=2)


class TestInverseMining:
    def test_realises_prescribed_border(self):
        from repro.itemsets.inverse import (
            expected_minimal_infrequent,
            realize_maximal_frequent,
            verify_realization,
        )
        from repro.itemsets.borders import minimal_infrequent_itemsets

        prescribed = Hypergraph(
            [{"a", "b"}, {"b", "c", "d"}], vertices={"a", "b", "c", "d"}
        )
        relation = realize_maximal_frequent(prescribed, z=2)
        assert verify_realization(relation, 2, prescribed)
        assert minimal_infrequent_itemsets(relation, 2) == (
            expected_minimal_infrequent(prescribed)
        )

    def test_empty_family(self):
        from repro.itemsets.borders import borders
        from repro.itemsets.inverse import realize_maximal_frequent

        relation = realize_maximal_frequent(
            Hypergraph.empty({"a", "b"}), z=3
        )
        is_plus, is_minus = borders(relation, 3)
        assert is_plus.is_trivial_false()
        assert set(is_minus.edges) == {frozenset()}

    def test_padding_preserves_borders(self):
        from repro.itemsets.inverse import (
            realize_maximal_frequent,
            verify_realization,
        )

        prescribed = Hypergraph([{"a", "b"}], vertices={"a", "b", "c"})
        padded = realize_maximal_frequent(prescribed, z=1, padding_rows=4)
        assert verify_realization(padded, 1, prescribed)

    def test_non_antichain_rejected(self):
        from repro.errors import InvalidInstanceError
        from repro.itemsets.inverse import realize_maximal_frequent

        bad = Hypergraph([{"a"}, {"a", "b"}])
        with pytest.raises(InvalidInstanceError):
            realize_maximal_frequent(bad, z=1)

    def test_feasible_predicate(self):
        from repro.itemsets.inverse import feasible

        assert feasible(Hypergraph([{"a"}, {"b"}]))
        assert not feasible(Hypergraph([{"a"}, {"a", "b"}]))


class TestNdClosure:
    def test_already_nd_returns_zero_rounds(self):
        from repro.coteries import majority_coterie
        from repro.coteries.coterie import nd_closure

        nd, rounds = nd_closure(majority_coterie(3))
        assert rounds == 0
        assert nd == majority_coterie(3)

    def test_grid_closes_to_nd(self):
        from repro.coteries import grid_coterie
        from repro.coteries.coterie import nd_closure

        nd, rounds = nd_closure(grid_coterie(2, 2))
        assert rounds >= 1
        assert nd.is_nondominated()

    def test_closure_dominates_original(self):
        from repro.coteries import Coterie
        from repro.coteries.coterie import nd_closure

        weak = Coterie([{0, 1, 2}], universe={0, 1, 2})
        nd, _rounds = nd_closure(weak)
        assert nd.is_nondominated()
        assert nd.dominates(weak) or nd == weak


class TestStreamingTransducers:
    def test_each_transducer_behaviour(self):
        from repro.machine import SpaceMeter, StringView
        from repro.machine.library import (
            BinaryIncrementTransducer,
            CopyTransducer,
            DuplicateTransducer,
            FilterZerosTransducer,
            ParityPrefixTransducer,
            RotateTransducer,
        )

        meter = SpaceMeter()
        cases = [
            (CopyTransducer(), "abc", "abc"),
            (RotateTransducer(), "abcd", "bcda"),
            (RotateTransducer(), "", ""),
            (DuplicateTransducer(), "ab", "aabb"),
            (BinaryIncrementTransducer(), "0111", "1000"),
            (BinaryIncrementTransducer(), "111", "1000"),
            (BinaryIncrementTransducer(), "1010", "1011"),
            (BinaryIncrementTransducer(), "", "1"),
            # "101": parities after each char are 1, 1, 0 → pairs
            # ("1","1"), ("1","0"), ("0","1").
            (ParityPrefixTransducer(), "101", "111001"),
            (FilterZerosTransducer(), "10011", "111"),
        ]
        for stage, text, expected in cases:
            assert stage.transduce(StringView(text), meter) == expected, stage.name
        assert meter.live_bits == 0

    def test_streaming_in_pipeline(self):
        from repro.machine import Pipeline
        from repro.machine.library import (
            BinaryIncrementTransducer,
            RotateTransducer,
        )

        pipeline = Pipeline([BinaryIncrementTransducer(), RotateTransducer()])
        assert pipeline.compute_recomputed("0110") == pipeline.compute_direct(
            "0110"
        )

    def test_increment_chain_counts(self):
        from repro.machine import self_composition
        from repro.machine.library import BinaryIncrementTransducer

        pipeline = self_composition(BinaryIncrementTransducer(), 3)
        assert pipeline.compute_recomputed("0000") == "0011"

    def test_output_char_on_streaming(self):
        from repro.machine import SpaceMeter, StringView
        from repro.machine.library import DuplicateTransducer

        meter = SpaceMeter()
        stage = DuplicateTransducer()
        assert stage.output_char(StringView("xy"), 3, meter) == "y"
        assert meter.live_bits == 0
