"""Every example script must run cleanly — the examples are part of the API.

Each ``examples/*.py`` is executed in a subprocess; a non-zero exit or
an empty stdout fails the suite.  Keeps the documentation honest: if an
API change breaks a walkthrough, the tests say so.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    # the repository promises ≥ 3 runnable examples; keep the floor high
    assert len(EXAMPLE_SCRIPTS) >= 8
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
