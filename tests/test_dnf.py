"""Tests for monotone DNF formulas and the DNF↔hypergraph correspondence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.dnf import MonotoneDNF, parse_dnf
from repro.errors import NotIrredundantError, ParseError
from repro.hypergraph import Hypergraph, transversal_hypergraph

from tests.conftest import hypergraphs


class TestConstruction:
    def test_terms_canonical(self):
        f = MonotoneDNF([["b", "a"], ["c"]])
        assert f.terms == (frozenset({"c"}), frozenset({"a", "b"}))

    def test_variables_default_to_union(self):
        f = MonotoneDNF([{"a"}, {"b"}])
        assert f.variables == {"a", "b"}

    def test_explicit_variables(self):
        f = MonotoneDNF([{"a"}], variables={"a", "b"})
        assert f.variables == {"a", "b"}

    def test_roundtrip_with_hypergraph(self):
        hg = Hypergraph([{1, 2}, {3}])
        f = MonotoneDNF.from_hypergraph(hg)
        assert f.hypergraph() == hg

    def test_equality_and_hash(self):
        assert MonotoneDNF([{1}]) == MonotoneDNF([{1}])
        assert len({MonotoneDNF([{1}]), MonotoneDNF([{1}])}) == 1


class TestIrredundancy:
    def test_detection(self):
        assert MonotoneDNF([{1}, {2}]).is_irredundant()
        assert not MonotoneDNF([{1}, {1, 2}]).is_irredundant()

    def test_require_raises(self):
        with pytest.raises(NotIrredundantError):
            MonotoneDNF([{1}, {1, 2}]).require_irredundant()

    def test_irredundant_drops_covered_terms(self):
        f = MonotoneDNF([{1}, {1, 2}]).irredundant()
        assert f.terms == (frozenset({1}),)


class TestSemantics:
    def test_evaluate_with_mapping(self):
        f = MonotoneDNF([{"a", "b"}])
        assert f.evaluate({"a": True, "b": True})
        assert not f.evaluate({"a": True, "b": False})

    def test_evaluate_with_true_set(self):
        f = MonotoneDNF([{"a", "b"}, {"c"}])
        assert f.evaluate({"c"})
        assert not f.evaluate({"a"})

    def test_constants(self):
        false = MonotoneDNF()
        true = MonotoneDNF([frozenset()])
        assert false.is_constant_false() and not false.evaluate(set())
        assert true.is_constant_true() and true.evaluate(set())

    def test_monotonicity(self):
        f = MonotoneDNF([{1, 2}, {3}])
        assert not f.evaluate({1})
        assert f.evaluate({1, 3})

    def test_implies(self):
        stronger = MonotoneDNF([{1, 2}], variables={1, 2})
        weaker = MonotoneDNF([{1}], variables={1, 2})
        assert stronger.implies(weaker)
        assert not weaker.implies(stronger)

    def test_equivalent_ignores_redundancy(self):
        assert MonotoneDNF([{1}, {1, 2}]).equivalent(MonotoneDNF([{1}], variables={1, 2}))


class TestDuality:
    def test_dual_formula_of_majority_is_itself(self):
        f = parse_dnf("a b | b c | a c")
        assert f.dual_formula() == f

    def test_dual_formula_via_transversals(self):
        f = MonotoneDNF([{1, 2}, {3, 4}])
        d = f.dual_formula()
        assert d.hypergraph() == transversal_hypergraph(f.hypergraph())

    def test_semantic_duality_truth_table(self):
        f = MonotoneDNF([{1}, {2}])
        g = MonotoneDNF([{1, 2}])
        assert f.semantically_dual_to(g)
        assert g.semantically_dual_to(f)

    def test_semantic_non_duality(self):
        f = MonotoneDNF([{1}, {2}])
        assert not f.semantically_dual_to(f)

    def test_constants_are_mutually_dual(self):
        false = MonotoneDNF()
        true = MonotoneDNF([frozenset()])
        assert false.semantically_dual_to(true)
        assert true.semantically_dual_to(false)
        assert not false.semantically_dual_to(false)
        assert not true.semantically_dual_to(true)

    @given(hypergraphs(max_vertices=4, max_edges=3))
    @settings(max_examples=40)
    def test_dual_formula_is_semantically_dual(self, hg):
        f = MonotoneDNF.from_hypergraph(hg.minimized())
        assert f.semantically_dual_to(f.dual_formula())

    @given(hypergraphs(max_vertices=4, max_edges=3))
    @settings(max_examples=40)
    def test_double_dual_is_identity_on_irredundant(self, hg):
        f = MonotoneDNF.from_hypergraph(hg.minimized())
        assert f.dual_formula().dual_formula() == f


class TestParser:
    def test_basic(self):
        f = parse_dnf("x1 x2 | x3")
        assert frozenset({"x1", "x2"}) in f.terms
        assert frozenset({"x3"}) in f.terms

    def test_integer_variables(self):
        f = parse_dnf("1 2 | 3")
        assert frozenset({1, 2}) in f.terms

    def test_constants(self):
        assert parse_dnf("FALSE").is_constant_false()
        assert parse_dnf("TRUE").is_constant_true()

    def test_unicode_connectives(self):
        f = parse_dnf("a ∧ b ∨ c")
        assert f == parse_dnf("a b | c")

    def test_ampersand(self):
        assert parse_dnf("a & b | c") == parse_dnf("a b | c")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_dnf("   ")

    def test_empty_term_rejected(self):
        with pytest.raises(ParseError):
            parse_dnf("a | | b")

    def test_bad_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_dnf("a | b$c")

    def test_roundtrip(self):
        for text in ("a b | c", "FALSE", "TRUE", "x | y | z"):
            f = parse_dnf(text)
            assert parse_dnf(f.to_text()) == f

    def test_rendering(self):
        assert parse_dnf("b a | c").to_text() == "c | a b"
        assert MonotoneDNF().to_text() == "FALSE"
        assert MonotoneDNF([frozenset()]).to_text() == "TRUE"

    def test_pretty(self):
        assert "∨" in parse_dnf("a b | c").pretty()
        assert MonotoneDNF().pretty() == "⊥"
