"""Tests for :mod:`repro.learning` — membership-query exact learning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnf import MonotoneDNF, parse_dnf
from repro.errors import VertexError
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import matching, threshold
from repro.hypergraph.operations import complement_family
from repro.learning import (
    MembershipOracle,
    NotMonotoneError,
    learn_monotone_function,
    maximize_false_point,
    minimize_true_point,
)
from repro.logic import decide_cnf_dnf_equivalence


def brute_force_borders(
    dnf: MonotoneDNF,
) -> tuple[set[frozenset], set[frozenset]]:
    """(minimal true points, maximal false points) by exhaustive scan."""
    from repro._util import maximize_family, minimize_family, powerset

    true_points = [p for p in powerset(dnf.variables) if dnf.evaluate(p)]
    false_points = [p for p in powerset(dnf.variables) if not dnf.evaluate(p)]
    return set(minimize_family(true_points)), set(maximize_family(false_points))


# ----------------------------------------------------------------------
# MembershipOracle
# ----------------------------------------------------------------------


class TestMembershipOracle:
    def test_counts_distinct_queries_only(self):
        oracle = MembershipOracle.from_dnf(parse_dnf("a b"))
        assert oracle.query({"a", "b"})
        assert oracle.query({"a", "b"})
        assert oracle.query(frozenset({"a"})) is False
        assert oracle.query_count == 2

    def test_rejects_out_of_universe_queries(self):
        oracle = MembershipOracle.from_dnf(parse_dnf("a b"))
        with pytest.raises(VertexError):
            oracle.query({"z"})

    def test_reset_counter(self):
        oracle = MembershipOracle.from_dnf(parse_dnf("a"))
        oracle.query({"a"})
        oracle.reset_counter()
        assert oracle.query_count == 0

    def test_from_hypergraph_matches_dnf_semantics(self):
        hg = Hypergraph([{"a", "b"}, {"c"}])
        oracle = MembershipOracle.from_hypergraph(hg)
        dnf = MonotoneDNF.from_hypergraph(hg)
        from repro._util import powerset

        for p in powerset(hg.vertices):
            assert oracle.query(p) == dnf.evaluate(p)

    def test_from_transversal_predicate(self):
        hg = Hypergraph([{"a", "b"}, {"b", "c"}])
        oracle = MembershipOracle.from_transversal_predicate(hg)
        assert oracle.query({"b"})
        assert oracle.query({"a", "c"})
        assert not oracle.query({"a"})

    def test_monotonicity_check_passes_on_monotone(self):
        oracle = MembershipOracle.from_dnf(parse_dnf("a b | c"))
        assert oracle.check_monotone_exhaustive()

    def test_monotonicity_check_catches_violation(self):
        # parity of |point| is not monotone
        oracle = MembershipOracle(
            lambda p: len(p) % 2 == 1, {"a", "b"}, name="parity"
        )
        with pytest.raises(NotMonotoneError):
            oracle.check_monotone_exhaustive()

    def test_spot_check(self):
        oracle = MembershipOracle(
            lambda p: p == frozenset({"a"}), {"a", "b"}, name="point"
        )
        with pytest.raises(NotMonotoneError):
            oracle.spot_check_monotone({"a"}, {"a", "b"})

    def test_from_infrequency_is_monotone(self):
        from repro.itemsets.datasets import market_basket

        relation = market_basket(n_items=5, n_rows=20, seed=7)
        oracle = MembershipOracle.from_infrequency(relation, z=8)
        assert oracle.check_monotone_exhaustive()


# ----------------------------------------------------------------------
# Greedy border moves
# ----------------------------------------------------------------------


class TestGreedyMoves:
    def test_minimize_lands_on_minimal_true_point(self):
        dnf = parse_dnf("a b | b c")
        oracle = MembershipOracle.from_dnf(dnf)
        mtp, _ = brute_force_borders(dnf)
        point = minimize_true_point(oracle, dnf.variables)
        assert point in mtp

    def test_minimize_requires_true_start(self):
        oracle = MembershipOracle.from_dnf(parse_dnf("a b"))
        with pytest.raises(ValueError):
            minimize_true_point(oracle, frozenset())

    def test_maximize_lands_on_maximal_false_point(self):
        dnf = parse_dnf("a b | b c")
        oracle = MembershipOracle.from_dnf(dnf)
        _, mfp = brute_force_borders(dnf)
        point = maximize_false_point(oracle, frozenset())
        assert point in mfp

    def test_maximize_requires_false_start(self):
        oracle = MembershipOracle.from_dnf(parse_dnf("a"))
        with pytest.raises(ValueError):
            maximize_false_point(oracle, frozenset({"a"}))

    def test_query_budgets(self):
        dnf = parse_dnf("a b c d")
        oracle = MembershipOracle.from_dnf(dnf)
        minimize_true_point(oracle, dnf.variables)
        # start point + one probe per vertex
        assert oracle.query_count <= len(dnf.variables) + 1


# ----------------------------------------------------------------------
# The learner
# ----------------------------------------------------------------------


KNOWN_FUNCTIONS = [
    "a",
    "a b",
    "a | b",
    "a b | c",
    "a b | b c | a c",
    "a b | c d",
    "a c | a d | b c | b d",
    "a b c | d",
]


class TestLearner:
    @pytest.mark.parametrize("text", KNOWN_FUNCTIONS)
    def test_learns_exact_borders(self, text):
        dnf = parse_dnf(text)
        oracle = MembershipOracle.from_dnf(dnf)
        learned = learn_monotone_function(oracle)
        mtp, mfp = brute_force_borders(dnf)
        assert set(learned.minimal_true_points.edges) == mtp
        assert set(learned.maximal_false_points.edges) == mfp

    @pytest.mark.parametrize("text", KNOWN_FUNCTIONS)
    def test_learned_normal_forms_are_equivalent(self, text):
        dnf = parse_dnf(text)
        learned = learn_monotone_function(MembershipOracle.from_dnf(dnf))
        assert learned.dnf().equivalent(dnf)
        assert decide_cnf_dnf_equivalence(learned.cnf(), learned.dnf()).is_dual

    def test_constant_true(self):
        oracle = MembershipOracle(lambda p: True, {"a", "b"}, name="true")
        learned = learn_monotone_function(oracle)
        assert learned.minimal_true_points.edges == (frozenset(),)
        assert len(learned.maximal_false_points) == 0
        assert learned.evaluate(frozenset())

    def test_constant_false(self):
        oracle = MembershipOracle(lambda p: False, {"a", "b"}, name="false")
        learned = learn_monotone_function(oracle)
        assert len(learned.minimal_true_points) == 0
        assert learned.maximal_false_points.edges == (frozenset({"a", "b"}),)
        assert not learned.evaluate({"a", "b"})
        assert learned.duality_checks == 0

    def test_single_variable_universe(self):
        oracle = MembershipOracle(lambda p: "a" in p, {"a"}, name="id")
        learned = learn_monotone_function(oracle)
        assert learned.minimal_true_points.edges == (frozenset({"a"}),)
        assert learned.maximal_false_points.edges == (frozenset(),)

    def test_iteration_count_is_border_size(self):
        dnf = parse_dnf("a b | b c | a c")
        learned = learn_monotone_function(MembershipOracle.from_dnf(dnf))
        total_border = len(learned.minimal_true_points) + len(
            learned.maximal_false_points
        )
        # two seeds + one addition per remaining border point
        assert learned.trace.additions() == total_border - 2
        # one duality check per addition plus the final YES
        assert learned.duality_checks == learned.trace.additions() + 1

    def test_query_bound_gkmt(self):
        # queries ≤ (|V| + 1) · (|MTP| + |MFP|) + constant
        for text in KNOWN_FUNCTIONS:
            dnf = parse_dnf(text)
            oracle = MembershipOracle.from_dnf(dnf)
            learned = learn_monotone_function(oracle)
            border = len(learned.minimal_true_points) + len(
                learned.maximal_false_points
            )
            n = len(oracle.universe)
            assert learned.queries <= (n + 1) * border + 2

    @pytest.mark.parametrize("method", ["transversal", "bm", "fk-b", "logspace"])
    def test_engine_choice(self, method):
        dnf = parse_dnf("a b | b c")
        learned = learn_monotone_function(
            MembershipOracle.from_dnf(dnf), method=method
        )
        assert learned.dnf().equivalent(dnf)

    def test_max_iterations_safety_valve(self):
        dnf = parse_dnf("a b | b c | a c")
        with pytest.raises(RuntimeError):
            learn_monotone_function(
                MembershipOracle.from_dnf(dnf), max_iterations=1
            )

    def test_learn_transversal_hypergraph(self):
        # learning the transversal predicate of G recovers tr(G) as MTP
        g = Hypergraph([{"a", "b"}, {"b", "c"}, {"c", "d"}])
        oracle = MembershipOracle.from_transversal_predicate(g)
        learned = learn_monotone_function(oracle)
        assert learned.minimal_true_points == transversal_hypergraph(g)

    def test_learn_matching_function(self):
        g = matching(3)
        oracle = MembershipOracle.from_hypergraph(g)
        learned = learn_monotone_function(oracle)
        assert learned.minimal_true_points == g
        # maximal false points = complements of tr(matching)
        expected = complement_family(transversal_hypergraph(g))
        assert learned.maximal_false_points == expected

    def test_learn_threshold_function(self):
        g = threshold(5, 3)
        learned = learn_monotone_function(MembershipOracle.from_hypergraph(g))
        assert learned.minimal_true_points == g

    def test_learn_infrequency_recovers_itemset_borders(self):
        from repro.itemsets.borders import borders
        from repro.itemsets.datasets import market_basket

        relation = market_basket(n_items=5, n_rows=16, seed=3)
        z = 5
        oracle = MembershipOracle.from_infrequency(relation, z)
        learned = learn_monotone_function(oracle)
        is_plus, is_minus = borders(relation, z)
        assert learned.minimal_true_points == is_minus
        assert learned.maximal_false_points == is_plus

    @given(
        st.lists(
            st.frozensets(
                st.integers(min_value=0, max_value=4), min_size=1, max_size=3
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_learner_is_exact_on_random_functions(self, terms):
        hg = Hypergraph(terms, vertices=range(5)).minimized()
        oracle = MembershipOracle.from_hypergraph(hg)
        learned = learn_monotone_function(oracle)
        assert learned.minimal_true_points == hg
        from repro._util import powerset

        for p in powerset(range(5)):
            assert learned.evaluate(p) == any(e <= p for e in hg.edges)
