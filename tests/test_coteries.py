"""Tests for coteries: Prop. 1.3, constructions, votes, availability."""

from __future__ import annotations

import pytest

from repro.errors import NotACoterieError
from repro.coteries import (
    Coterie,
    alive_quorum_exists,
    availability,
    availability_by_enumeration,
    availability_curve,
    coterie_from_votes,
    dominating_coterie,
    grid_coterie,
    is_coterie,
    is_vote_definable,
    majority_coterie,
    singleton_coterie,
    tree_coterie,
    wheel_coterie,
)


class TestCoterieAxioms:
    def test_valid(self):
        c = Coterie([{1, 2}, {2, 3}, {1, 3}])
        assert len(c) == 3

    def test_empty_family_rejected(self):
        with pytest.raises(NotACoterieError):
            Coterie([])

    def test_empty_quorum_rejected(self):
        with pytest.raises(NotACoterieError):
            Coterie([set()])

    def test_non_antichain_rejected(self):
        with pytest.raises(NotACoterieError):
            Coterie([{1}, {1, 2}])

    def test_disjoint_quorums_rejected(self):
        with pytest.raises(NotACoterieError):
            Coterie([{1}, {2}])

    def test_is_coterie_predicate(self):
        assert is_coterie([{1, 2}, {2, 3}, {1, 3}])
        assert not is_coterie([{1}, {2}])

    def test_equality(self):
        assert Coterie([{1, 2}, {1, 3}, {2, 3}]) == Coterie(
            [{3, 2}, {3, 1}, {2, 1}]
        )


class TestDomination:
    def test_singleton_dominates_pair_coterie(self):
        # Every quorum of {{0,1}} contains the quorum {0} of the
        # singleton coterie, so the singleton dominates it.
        big = Coterie([{0, 1}], universe={0, 1, 2})
        small = singleton_coterie(3, leader=0)
        assert small.dominates(big)
        assert not big.dominates(small)

    def test_no_self_domination(self):
        c = majority_coterie(3)
        assert not c.dominates(c)

    @pytest.mark.parametrize("method", ("bm", "fk-b", "logspace", "transversal"))
    def test_majority_is_nondominated(self, method):
        for n in (1, 3, 5):
            assert majority_coterie(n).is_nondominated(method=method)

    def test_majority_needs_odd(self):
        with pytest.raises(NotACoterieError):
            majority_coterie(4)

    def test_singleton_is_nondominated(self):
        assert singleton_coterie(5, leader=2).is_nondominated()

    def test_wheel_is_nondominated(self):
        for n in (4, 5, 6):
            assert wheel_coterie(n).is_nondominated()

    def test_grid_is_dominated(self):
        assert not grid_coterie(2, 2).is_nondominated()

    def test_tree_is_nondominated(self):
        assert tree_coterie(2).is_nondominated()
        assert tree_coterie(3).is_nondominated()

    def test_prop_1_3_against_brute_force(self):
        # tr(H) = H ⟺ no dominating coterie exists (small universes).
        cases = [
            majority_coterie(3),
            singleton_coterie(3),
            grid_coterie(2, 2),
            Coterie([{0, 1}], universe={0, 1}),
        ]
        for coterie in cases:
            via_dual = coterie.is_nondominated()
            via_search = not coterie.is_dominated_brute_force()
            assert via_dual == via_search, coterie

    def test_dominating_coterie_construction(self):
        grid = grid_coterie(2, 2)
        dom = dominating_coterie(grid)
        assert dom is not None
        assert dom.dominates(grid)

    def test_dominating_of_nd_is_none(self):
        assert dominating_coterie(majority_coterie(3)) is None

    def test_one_edge_two_sites_dominated(self):
        c = Coterie([{0, 1}], universe={0, 1})
        assert not c.is_nondominated()
        dom = dominating_coterie(c)
        assert dom is not None and dom.dominates(c)


class TestVotes:
    def test_majority_votes(self):
        c = coterie_from_votes({"a": 1, "b": 1, "c": 1})
        assert c == Coterie([{"a", "b"}, {"a", "c"}, {"b", "c"}])

    def test_weighted_votes(self):
        # total = 4, default threshold = 3: {a,b} and {a,c} win; {b,c}
        # reaches only 2 votes.
        c = coterie_from_votes({"a": 2, "b": 1, "c": 1})
        assert c == Coterie([{"a", "b"}, {"a", "c"}], universe={"a", "b", "c"})

    def test_negative_votes_rejected(self):
        with pytest.raises(NotACoterieError):
            coterie_from_votes({"a": -1})

    def test_unreachable_threshold_rejected(self):
        with pytest.raises(NotACoterieError):
            coterie_from_votes({"a": 1}, threshold=5)

    def test_sub_majority_threshold_rejected(self):
        with pytest.raises(NotACoterieError):
            coterie_from_votes({"a": 1, "b": 1}, threshold=1)

    def test_majority_is_vote_definable(self):
        found, assignment = is_vote_definable(majority_coterie(3), max_vote=1)
        assert found
        assert assignment["threshold"] >= 2

    def test_singleton_is_vote_definable(self):
        found, assignment = is_vote_definable(singleton_coterie(3), max_vote=1)
        assert found


class TestAvailability:
    def test_matches_enumeration(self):
        for coterie in (majority_coterie(3), singleton_coterie(3), wheel_coterie(4)):
            for p in (0.0, 0.3, 0.5, 0.9, 1.0):
                assert availability(coterie, p) == pytest.approx(
                    availability_by_enumeration(coterie, p)
                )

    def test_alive_quorum(self):
        c = majority_coterie(3)
        assert alive_quorum_exists(c, {0, 1})
        assert not alive_quorum_exists(c, {0})

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            availability(majority_coterie(3), 1.5)

    def test_domination_implies_availability_dominance(self):
        grid = grid_coterie(2, 2)
        dom = dominating_coterie(grid)
        for p in (0.2, 0.5, 0.8):
            assert availability(dom, p) >= availability(grid, p) - 1e-12

    def test_majority5_beats_singleton_at_high_p(self):
        maj, single = majority_coterie(5), singleton_coterie(5)
        assert availability(maj, 0.9) > availability(single, 0.9)
        assert availability(maj, 0.3) < availability(single, 0.3)

    def test_curve_shape(self):
        curve = availability_curve(majority_coterie(3), points=5)
        assert curve[0] == (0.0, pytest.approx(0.0))
        assert curve[-1][1] == pytest.approx(1.0)
        values = [v for _, v in curve]
        assert values == sorted(values)
