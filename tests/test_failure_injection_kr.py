"""Failure injection for the knowledge-representation extensions.

Malformed inputs, adversarial oracles, and broken invariants must fail
loudly with the documented exceptions — never return quietly-wrong
answers.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    InvalidInstanceError,
    ParseError,
    ReproError,
    VertexError,
)
from repro.hypergraph import Hypergraph
from repro.logic import HornClause, HornTheory, MonotoneCNF, parse_horn_theory
from repro.learning import (
    MembershipOracle,
    NotMonotoneError,
    learn_monotone_function,
)
from repro.diagnosis import OracleDiagnosisProblem, hs_tree_diagnoses
from repro.abduction import AbductionProblem
from repro.envelopes import horn_envelope


class TestLearningFailures:
    def test_not_monotone_error_is_repro_error(self):
        assert issubclass(NotMonotoneError, ReproError)

    def test_adversarial_oracle_terminates_and_is_detectable(self):
        # The learner's contract requires a monotone oracle.  On a
        # non-monotone one it must still terminate (its guards bound the
        # loop), and the wrongness must be detectable: either a guard
        # fires, or the learned function provably disagrees with the
        # oracle — and check_monotone_exhaustive names the violation.
        def non_monotone(p):
            return p == frozenset({"a"}) or frozenset({"a", "b"}) <= p

        oracle = MembershipOracle(
            non_monotone, {"a", "b", "c"}, name="adversarial"
        )
        try:
            learned = learn_monotone_function(oracle, max_iterations=50)
        except (RuntimeError, ValueError, ReproError):
            # a guard fired (here: the claimed border family stops being
            # an antichain, which the engine's simplicity check rejects)
            return
        from repro._util import powerset

        disagreements = [
            p
            for p in powerset(oracle.universe)
            if learned.evaluate(p) != non_monotone(p)
        ]
        assert disagreements  # cannot have learned a non-monotone function
        with pytest.raises(NotMonotoneError):
            oracle.check_monotone_exhaustive()

    def test_oracle_universe_enforced_in_moves(self):
        from repro.learning import minimize_true_point

        oracle = MembershipOracle(lambda p: True, {"a"}, name="true")
        with pytest.raises(VertexError):
            minimize_true_point(oracle, {"a", "zz"})

    def test_constructors_validate_lazily_but_query_strictly(self):
        oracle = MembershipOracle.from_hypergraph(Hypergraph([{"a"}]))
        with pytest.raises(VertexError):
            oracle.query({"b"})


class TestDiagnosisFailures:
    def test_provider_label_meeting_path_rejected(self):
        problem = OracleDiagnosisProblem.from_conflicts("abc", [{"a", "b"}])

        def bad_provider(prob, path):
            return frozenset({"a"})  # ignores the path

        with pytest.raises(ValueError):
            hs_tree_diagnoses(problem, conflict_provider=bad_provider)

    def test_hstree_node_budget(self):
        problem = OracleDiagnosisProblem.from_conflicts(
            range(8), [{0, 1}, {2, 3}, {4, 5}, {6, 7}]
        )
        with pytest.raises(RuntimeError):
            hs_tree_diagnoses(problem, max_nodes=2)

    def test_circuit_problem_output_validation(self):
        from repro.diagnosis import CircuitDiagnosisProblem, full_adder

        with pytest.raises(VertexError):
            CircuitDiagnosisProblem(
                full_adder(), {"a": 1, "b": 0, "cin": 0}, {"bogus": True}
            ).is_faulty_observation()


class TestAbductionFailures:
    def test_nondefinite_theory_blocks_learner_route(self):
        theory = HornTheory.from_tuples(
            [(("a",), "q"), (("a", "b"), None)], atoms="abq"
        )
        problem = AbductionProblem(theory, hypotheses="ab", query="q")
        from repro.abduction import minimal_explanations

        with pytest.raises(InvalidInstanceError):
            minimal_explanations(problem)

    def test_brute_force_still_works_with_constraints(self):
        from repro.abduction import minimal_explanations_brute_force

        theory = HornTheory.from_tuples(
            [(("a",), "q"), (("a", "b"), None)], atoms="abq"
        )
        problem = AbductionProblem(theory, hypotheses="ab", query="q")
        expl = minimal_explanations_brute_force(problem)
        # {a} explains; {a,b} is inconsistent so it is not an explanation
        assert set(expl.edges) == {frozenset({"a"})}


class TestLogicFailures:
    def test_horn_parser_error_positions(self):
        with pytest.raises(ParseError):
            parse_horn_theory("a -> b\nbroken line\n")

    def test_cnf_requires_irredundant_when_asked(self):
        from repro.errors import NotIrredundantError

        with pytest.raises(NotIrredundantError):
            MonotoneCNF([{"a"}, {"a", "b"}]).require_irredundant()

    def test_negative_clause_satisfaction_is_strict(self):
        clause = HornClause(frozenset())  # empty body → ⊥: unsatisfiable
        assert not clause.satisfied_by(set())
        theory = HornTheory([clause])
        assert not theory.is_consistent()


class TestEnvelopeFailures:
    def test_empty_model_family(self):
        with pytest.raises(InvalidInstanceError):
            horn_envelope([])

    def test_universe_mismatch(self):
        with pytest.raises(VertexError):
            horn_envelope([{"z"}], atoms="ab")


class TestTractableFailures:
    def test_specialised_deciders_reject_wrong_classes(self):
        from repro.hypergraph import transversal_hypergraph
        from repro.duality.tractable import (
            decide_duality_acyclic,
            decide_duality_graph,
            decide_duality_threshold,
        )

        rank3 = Hypergraph([{0, 1, 2}, {2, 3, 4}])
        h3 = transversal_hypergraph(rank3)
        with pytest.raises(InvalidInstanceError):
            decide_duality_graph(rank3, h3)
        nonuniform = Hypergraph([{0, 1}, {1, 2, 3}])
        hn = transversal_hypergraph(nonuniform)
        with pytest.raises(InvalidInstanceError):
            decide_duality_threshold(nonuniform, hn)
        from repro.hypergraph.generators import cycle_graph_edges

        cyc = Hypergraph(cycle_graph_edges(4).edges)
        hc = transversal_hypergraph(cyc)
        with pytest.raises(InvalidInstanceError):
            decide_duality_acyclic(cyc, hc)

    def test_dispatcher_never_raises_on_simple_pairs(self):
        from repro.duality.tractable import decide_duality_tractable
        from repro.hypergraph import transversal_hypergraph

        for edges in ([{0, 1, 2}, {2, 3, 4}], [{0, 1}], [{0, 1, 2}]):
            g = Hypergraph(edges)
            h = transversal_hypergraph(g)
            assert decide_duality_tractable(g, h).is_dual


class TestSelfDualizationFailures:
    def test_rejects_constants_and_collisions(self):
        from repro.duality.self_duality import self_dualization
        from repro.hypergraph import transversal_hypergraph

        g = Hypergraph([{"a", "b"}])
        h = transversal_hypergraph(g)
        with pytest.raises(InvalidInstanceError):
            self_dualization(Hypergraph.trivial_true("ab"), h)
        with pytest.raises(VertexError):
            self_dualization(g, h, x="a")
