"""Differential conformance fuzzer: every engine, every path, one answer.

``Dual`` is the rare problem where we have *nine* independent deciders
(plus a definitional truth-table check), most of them with two data
paths (integer-mask kernels vs the ``frozenset`` reference) and several
with a sharded multi-process path.  Randomised differential testing
exploits that redundancy: any disagreement on any instance is a bug in
at least one engine, with the instance as a free reproducer.

The fuzzer is seeded and sized through the environment so CI can run a
heavy sweep while the tier-1 suite stays fast:

* ``REPRO_CONFORMANCE_INSTANCES`` — how many random instances
  (default 60; CI runs ≥ 500);
* ``REPRO_CONFORMANCE_SEED`` — the master seed (default 20260726).

Contracts checked per instance:

* all engines return the **same verdict**, and every NOT_DUAL verdict
  carries a witness that :func:`check_result_witness` validates;
* for each engine with a ``use_bitset`` toggle (``fk-a``, ``fk-b``,
  ``guess-check``, ``dfs-enum``, ``tractable``) and for the tree
  engines' global kernel toggle (``bm``, ``logspace``), the mask and
  ``frozenset`` paths return **bit-for-bit identical results** —
  verdict, certificate, and work counters;
* the sharded paths (``fk-a``, ``fk-b``, ``bm``, ``logspace``) are
  identical to serial at ``n_jobs=1`` on every instance and at
  ``n_jobs=2`` (through one persistent :class:`EnginePool`) on a
  stride sample.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.duality import check_result_witness, decide_duality
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    degenerate_pairs,
    perturb_drop_edge,
    perturb_enlarge_edge,
    random_simple,
)
from repro.hypergraph.operations import use_bitset_kernels
from repro.parallel import decide_duality_parallel
from repro.service import EnginePool

N_INSTANCES = int(os.environ.get("REPRO_CONFORMANCE_INSTANCES", "60"))
SEED = int(os.environ.get("REPRO_CONFORMANCE_SEED", "20260726"))

#: Every decision engine.  ``truth-table`` is definitional (2^n
#: assignments) and feasible because the generator caps universes at 7
#: vertices; ``transversal`` is the Berge oracle.
ALL_ENGINES = (
    "fk-a",
    "fk-b",
    "bm",
    "logspace",
    "berge",
    "guess-check",
    "dfs-enum",
    "tractable",
    "truth-table",
)

#: Engines with a per-call ``use_bitset`` reference toggle.
TOGGLED_ENGINES = ("fk-a", "fk-b", "guess-check", "dfs-enum", "tractable")

#: Engines whose mask kernels sit behind the global operations toggle.
KERNEL_TOGGLED_ENGINES = ("bm", "logspace")

SHARDED_ENGINES = ("fk-a", "fk-b", "bm", "logspace")

#: Every how-many instances the expensive n_jobs=2 process fan-out runs.
PROCESS_STRIDE = max(1, N_INSTANCES // 20)


def _generate_corpus(n: int, seed: int):
    """``n`` seeded random instances: dual, perturbed, and adversarial.

    Universes stay ≤ 7 vertices so the truth-table engine stays feasible
    (2^7 assignments).  Roughly half the instances are exact dual pairs
    ``(G, tr(G))``; the rest are perturbations with known failure modes
    (dropped transversal, enlarged edge, unrelated H) plus the
    degenerate constant pairs sprinkled in.
    """
    rng = random.Random(seed)
    corpus = []
    degenerates = degenerate_pairs()
    while len(corpus) < n:
        roll = rng.random()
        if roll < 0.04:
            name, g, h, _dual = degenerates[rng.randrange(len(degenerates))]
            corpus.append((f"degenerate:{name}", g, h))
            continue
        n_vertices = rng.randint(3, 7)
        g = random_simple(
            n_vertices=n_vertices,
            n_edges=rng.randint(1, 5),
            min_size=1,
            max_size=rng.randint(1, min(4, n_vertices)),
            seed=rng.randrange(1 << 30),
        )
        if g.is_trivial_false():
            continue
        h = transversal_hypergraph(g)
        if roll < 0.50:
            corpus.append((f"dual:{len(corpus)}", g, h))
        elif roll < 0.65 and len(h) > 1:
            corpus.append(
                (f"drop:{len(corpus)}", g, perturb_drop_edge(h, rng.randrange(len(h))))
            )
        elif roll < 0.80 and len(h) >= 1:
            corpus.append(
                (
                    f"enlarge:{len(corpus)}",
                    g,
                    perturb_enlarge_edge(h, rng.randrange(len(h))),
                )
            )
        else:
            other = random_simple(
                n_vertices=rng.randint(3, 7),
                n_edges=rng.randint(1, 5),
                seed=rng.randrange(1 << 30),
            )
            if other.is_trivial_false():
                continue
            corpus.append((f"unrelated:{len(corpus)}", g, other))
    return corpus


CORPUS = _generate_corpus(N_INSTANCES, SEED)


def _identical(a, b) -> bool:
    """Bit-for-bit result identity: verdict, certificate, counters."""
    return (
        a.verdict == b.verdict
        and a.certificate == b.certificate
        and a.method == b.method
        and a.stats.nodes == b.stats.nodes
        and a.stats.max_depth == b.stats.max_depth
        and a.stats.max_children == b.stats.max_children
        and a.stats.base_cases == b.stats.base_cases
    )


def test_corpus_is_seeded_and_sized():
    assert len(CORPUS) == N_INSTANCES
    assert _generate_corpus(5, SEED)[0][0] == _generate_corpus(5, SEED)[0][0]


def test_all_engines_agree_on_every_instance():
    """One verdict per instance, witnesses valid, across all 9 engines."""
    for name, g, h in CORPUS:
        reference = decide_duality(g, h, method="bm")
        for engine in ALL_ENGINES:
            result = decide_duality(g, h, method=engine)
            assert result.verdict == reference.verdict, (name, engine)
            if not result.is_dual and result.witness is not None:
                assert check_result_witness(g, h, result), (name, engine)


def test_mask_and_frozenset_paths_identical():
    """`use_bitset=False` references replay the mask paths exactly."""
    for name, g, h in CORPUS:
        for engine in TOGGLED_ENGINES:
            fast = decide_duality(g, h, method=engine, use_bitset=True)
            reference = decide_duality(g, h, method=engine, use_bitset=False)
            assert _identical(fast, reference), (name, engine)
            assert fast.stats.extra == reference.stats.extra, (name, engine)


def test_kernel_toggle_paths_identical():
    """The tree engines under the global restriction-kernel toggle."""
    for name, g, h in CORPUS[:: max(1, N_INSTANCES // 100 or 1)]:
        for engine in KERNEL_TOGGLED_ENGINES:
            fast = decide_duality(g, h, method=engine)
            use_bitset_kernels(False)
            try:
                reference = decide_duality(g, h, method=engine)
            finally:
                use_bitset_kernels(True)
            assert _identical(fast, reference), (name, engine)


def test_sharded_in_process_identical_to_serial():
    """n_jobs=1 sharded solving replays the serial engines exactly."""
    for name, g, h in CORPUS:
        for engine in SHARDED_ENGINES:
            serial = decide_duality(g, h, method=engine)
            sharded = decide_duality_parallel(g, h, method=engine, n_jobs=1)
            assert sharded.verdict == serial.verdict, (name, engine)
            assert sharded.certificate == serial.certificate, (name, engine)


def test_sharded_two_workers_identical_to_serial():
    """n_jobs=2 through one persistent pool, on a stride sample."""
    with EnginePool(2) as pool:
        for name, g, h in CORPUS[::PROCESS_STRIDE]:
            for engine in SHARDED_ENGINES:
                serial = decide_duality(g, h, method=engine)
                sharded = decide_duality_parallel(g, h, method=engine, pool=pool)
                assert sharded.verdict == serial.verdict, (name, engine)
                assert sharded.certificate == serial.certificate, (name, engine)
        assert pool.generations == 1  # the whole sweep, one worker spawn


def test_recursive_shard_plans_identical_to_serial():
    """Multi-level bm/logspace plans at several targets, stats included."""
    from repro.parallel import plan_bm, plan_logspace, solve_shards

    for name, g, h in CORPUS[:: max(1, N_INSTANCES // 50 or 1)]:
        for engine, plan_fn in (("bm", plan_bm), ("logspace", plan_logspace)):
            serial = decide_duality(g, h, method=engine)
            for target in (2, 6):
                plan = plan_fn(g, h, target_shards=target)
                merged = solve_shards(plan, 1)
                assert merged.verdict == serial.verdict, (name, engine, target)
                assert merged.certificate == serial.certificate, (
                    name,
                    engine,
                    target,
                )
                assert merged.stats.nodes == serial.stats.nodes, (
                    name,
                    engine,
                    target,
                )
                assert merged.stats.max_depth == serial.stats.max_depth


@pytest.mark.parametrize("engine", ["fk-b", "bm"])
def test_dual_verdicts_match_ground_truth(engine):
    """Instances built as (G, tr(G)) must come out DUAL."""
    for name, g, h in CORPUS:
        if not name.startswith("dual:"):
            continue
        assert decide_duality(g, h, method=engine).is_dual, name


# ---------------------------------------------------------------------------
# Distributed tier: a coordinator fanning shards out to peer servers
# ---------------------------------------------------------------------------
#
# The fleet is real — in-process :class:`DualityServer` instances spoken
# to over TCP via the ``solve_shard`` op — so this tier covers the wire
# codec, the pipelined peer channels, and the hedged dispatch, not just
# the merge.  The oracle is double: serial engines (verdict +
# certificate) and an in-process replay of the *same shard plan* the
# backend dispatches (full bit-for-bit result identity, stats included,
# via ``_identical`` — FK shard counters depend on the plan width, so
# the local oracle must shard at the fleet's width).

#: Every how-many instances the non-default engines run distributed.
DISTRIBUTED_STRIDE = max(1, N_INSTANCES // 30)


def _golden_instances():
    from pathlib import Path

    from repro.parallel.batch import load_instance

    root = Path(__file__).parent / "corpus"
    return [(path.name, *load_instance(path)) for path in sorted(root.glob("*.hg"))]


@pytest.fixture(scope="module")
def peer_fleet():
    """Three worker duality servers, shared across the distributed tier."""
    from repro.net.server import DualityServer

    servers = [DualityServer(n_jobs=1).start() for _ in range(3)]
    yield servers
    for server in servers:
        server.shutdown()


def _fleet_backend(servers, **kwargs):
    from repro.parallel import PeerBackend

    peers = ["%s:%d" % server.address for server in servers]
    kwargs.setdefault("hedge_after", None)  # deterministic: no duplicates
    return PeerBackend(peers, **kwargs)


def _local_replay(g, h, engine, width):
    """In-process replay of the exact plan a ``width``-wide backend runs.

    The deterministic oracle for full ``_identical`` checks: same plan
    width as the peer fleet, shards solved inline in submission order.
    """
    from repro.parallel import executor

    class _Inline:
        def map_shards(self, plan, trace=None):
            runner = executor.SHARD_RUNNERS[executor.shard_kind(plan)]
            return [runner(item) for item in executor.shard_worker_items(plan)]

    backend = _Inline()
    backend.width = width
    return decide_duality_parallel(g, h, method=engine, backend=backend)


def test_distributed_identical_to_serial_fuzzed(peer_fleet):
    """fk-b distributed over 3 peers: every fuzzed instance, both oracles."""
    backend = _fleet_backend(peer_fleet)
    try:
        for name, g, h in CORPUS:
            serial = decide_duality(g, h, method="fk-b")
            local = _local_replay(g, h, "fk-b", backend.width)
            distributed = decide_duality_parallel(g, h, method="fk-b", backend=backend)
            assert distributed.verdict == serial.verdict, name
            assert distributed.certificate == serial.certificate, name
            assert _identical(distributed, local), name
    finally:
        backend.close()


def test_distributed_all_sharded_engines_on_stride(peer_fleet):
    """Every sharded engine distributed, bit-for-bit with local sharding."""
    backend = _fleet_backend(peer_fleet)
    try:
        for name, g, h in CORPUS[::DISTRIBUTED_STRIDE]:
            for engine in SHARDED_ENGINES:
                serial = decide_duality(g, h, method=engine)
                local = _local_replay(g, h, engine, backend.width)
                distributed = decide_duality_parallel(
                    g, h, method=engine, backend=backend
                )
                assert distributed.verdict == serial.verdict, (name, engine)
                assert distributed.certificate == serial.certificate, (name, engine)
                assert _identical(distributed, local), (name, engine)
    finally:
        backend.close()


def test_distributed_identical_on_golden_corpus(peer_fleet):
    """The checked-in golden corpus, distributed, against both oracles."""
    backend = _fleet_backend(peer_fleet)
    try:
        for name, g, h in _golden_instances():
            for engine in ("fk-b", "bm"):
                serial = decide_duality(g, h, method=engine)
                local = _local_replay(g, h, engine, backend.width)
                distributed = decide_duality_parallel(
                    g, h, method=engine, backend=backend
                )
                assert distributed.verdict == serial.verdict, (name, engine)
                assert distributed.certificate == serial.certificate, (name, engine)
                assert _identical(distributed, local), (name, engine)
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Learned-selection tier: method="auto" conforms on every decision path
# ---------------------------------------------------------------------------
#
# ``auto`` is a meta-method like ``portfolio``: every path returns some
# serial engine's own result object, so its verdicts (and, on the
# deterministic sequential paths checked here, its full results) must
# be bit-for-bit reproducible by re-running the chosen engine serially.

#: Every how-many instances the auto tier checks (it reruns the chosen
#: engine serially per instance, so it strides like the other tiers).
AUTO_STRIDE = max(1, N_INSTANCES // 30)


@pytest.fixture(scope="module")
def trained_selector():
    """A selector trained online from sequential portfolio races over a
    corpus slice — the exact bootstrap ``repro model fit`` documents."""
    from repro.hypergraph import mask_payload
    from repro.obs.timings import structural_features
    from repro.parallel.portfolio import race_portfolio
    from repro.select import fit_engine_model

    rows = []
    for _name, g, h in CORPUS[:: max(1, N_INSTANCES // 24)]:
        result = race_portfolio(g, h, n_jobs=1)
        features = structural_features(mask_payload(g), mask_payload(h))
        race = result.stats.extra["portfolio"]
        for engine, elapsed in race["timings_s"].items():
            if elapsed is not None:
                rows.append({"engine": engine, "elapsed_s": elapsed, **features})
    return fit_engine_model(rows)


def test_auto_verdicts_identical_to_serial(trained_selector):
    """Trained auto (predicted or reduced-race) on a corpus stride:
    the verdict matches serial, the result is the chosen engine's own."""
    import warnings

    for name, g, h in CORPUS[::AUTO_STRIDE]:
        serial = decide_duality(g, h, method="bm")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a cold start here is a bug
            result = decide_duality(g, h, method="auto", model=trained_selector)
        assert result.verdict == serial.verdict, name
        auto = result.stats.extra["auto"]
        assert auto["mode"] in ("predicted", "reduced-race"), name
        replay = decide_duality(g, h, method=auto["engine"])
        assert _identical(result, replay), (name, auto)


def test_auto_low_confidence_race_identical_to_serial(trained_selector):
    """confidence > 1 forces the reduced race on every instance; the
    sequential race winner's result is its engine's serial result."""
    for name, g, h in CORPUS[::AUTO_STRIDE]:
        result = decide_duality(
            g, h, method="auto", model=trained_selector, confidence=1.5
        )
        auto = result.stats.extra["auto"]
        assert auto["mode"] == "reduced-race", name
        assert len(auto["engines"]) == 2, name
        replay = decide_duality(g, h, method=auto["engine"])
        assert _identical(result, replay), (name, auto)


def test_auto_cold_start_identical_to_serial(monkeypatch):
    """No model at all: auto warns and degrades to the full portfolio,
    whose sequential winner is bit-for-bit some serial engine."""
    from repro.select import ColdStartWarning, reset_default_model
    from repro.select.selector import MODEL_ENV

    monkeypatch.delenv(MODEL_ENV, raising=False)
    reset_default_model()
    try:
        for name, g, h in CORPUS[::AUTO_STRIDE]:
            with pytest.warns(ColdStartWarning):
                result = decide_duality(g, h, method="auto")
            auto = result.stats.extra["auto"]
            assert auto["mode"] == "cold-start", name
            replay = decide_duality(g, h, method=auto["engine"])
            assert _identical(result, replay), (name, auto)
    finally:
        reset_default_model()


def test_distributed_survives_peer_killed_mid_run():
    """One peer dies mid-sweep: hedged retries reroute, verdicts hold.

    The killed peer's in-flight shards resolve as retryable (the drop
    contract of the peer channel) and relaunch on the survivors, so the
    batch completes bit-for-bit — the peer costs latency, not answers.
    """
    from repro.net.server import DualityServer

    servers = [DualityServer(n_jobs=1).start() for _ in range(3)]
    backend = _fleet_backend(servers, hedge_after=0.2)
    sample = CORPUS[::DISTRIBUTED_STRIDE]
    kill_at = max(1, len(sample) // 3)
    try:
        for index, (name, g, h) in enumerate(sample):
            if index == kill_at:
                servers[0].shutdown()  # mid-run, without warning the backend
            serial = decide_duality(g, h, method="fk-b")
            local = _local_replay(g, h, "fk-b", backend.width)
            distributed = decide_duality_parallel(g, h, method="fk-b", backend=backend)
            assert distributed.verdict == serial.verdict, name
            assert distributed.certificate == serial.certificate, name
            assert _identical(distributed, local), name
        health = backend.stats()["peers"]
        assert not health[0]["connected"]  # the victim is marked down
        assert any(peer["connected"] for peer in health[1:])
    finally:
        backend.close()
        for server in servers[1:]:
            server.shutdown()
