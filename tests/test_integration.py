"""End-to-end integration flows across modules.

Each test walks a realistic pipeline from raw input to verified output,
crossing at least two subpackages — the flows a downstream user of the
library would actually run.
"""

from __future__ import annotations

from repro.dnf import parse_dnf
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph import io as hgio
from repro.duality import decide_dnf_duality, decide_duality
from repro.duality.witness import extract_missing_minimal_transversal


class TestDnfToWitnessFlow:
    def test_parse_decide_minimalise(self):
        f = parse_dnf("a b | c d")
        true_dual = f.dual_formula()
        # Drop one prime implicant of the dual and refute.
        wrong = Hypergraph(
            list(true_dual.hypergraph().edges)[:-1],
            vertices=true_dual.variables,
        )
        from repro.dnf import MonotoneDNF
        from repro.duality.witness import witness_direction_pair

        result = decide_dnf_duality(f, MonotoneDNF.from_hypergraph(wrong))
        assert not result.is_dual
        # The engine may report the witness in either direction (it
        # swaps sides for |H| > |G|); resolve it before minimalising.
        base, reference = witness_direction_pair(f.hypergraph(), wrong, result)
        missing = extract_missing_minimal_transversal(
            base, reference, result.witness
        )
        assert missing in set(transversal_hypergraph(base).edges)
        assert missing not in set(reference.edges)

    def test_fixed_direction_witness_via_logspace(self):
        # find_new_transversal_logspace never swaps: its witness always
        # speaks about tr(G) vs H, so the missing dual term is direct.
        from repro.duality.logspace import find_new_transversal_logspace

        f = parse_dnf("a b | c d")
        true_dual = f.dual_formula()
        wrong = Hypergraph(
            list(true_dual.hypergraph().edges)[:-1],
            vertices=true_dual.variables,
        )
        witness = find_new_transversal_logspace(f.hypergraph(), wrong)
        missing = extract_missing_minimal_transversal(
            f.hypergraph(), wrong, witness
        )
        assert missing in set(true_dual.hypergraph().edges)
        assert missing not in set(wrong.edges)

    def test_file_roundtrip_to_decision(self, tmp_path):
        g = Hypergraph([{0, 1}, {1, 2}, {0, 2}], vertices=range(3))
        path = tmp_path / "g.hg"
        hgio.dump(g, path)
        loaded = hgio.load(path)
        assert decide_duality(loaded, transversal_hypergraph(loaded)).is_dual


class TestMiningFlow:
    def test_transactions_to_borders_to_identification(self, tmp_path):
        from repro.itemsets import (
            decide_identification,
            enumerate_borders,
            io as txio,
        )
        from repro.itemsets.datasets import market_basket

        relation = market_basket(n_items=7, n_rows=25, seed=99)
        path = tmp_path / "baskets.txt"
        txio.dump(relation, path)
        reloaded = txio.load(path)
        assert reloaded == relation

        z = 4
        is_plus, is_minus, _ = enumerate_borders(reloaded, z, method="fk-b")
        outcome = decide_identification(reloaded, z, is_minus, is_plus)
        assert outcome.complete

    def test_witness_grows_into_new_border_set(self):
        from repro.itemsets import decide_identification, levelwise_borders
        from repro.itemsets.datasets import planted_borders
        from repro.itemsets.frequency import is_frequent

        relation, z, _ = planted_borders(n_items=6, z=2, seed=12)
        is_plus, is_minus = levelwise_borders(relation, z)
        if len(is_plus) <= 1:
            return
        partial = Hypergraph(list(is_plus.edges)[1:], vertices=relation.items)
        outcome = decide_identification(relation, z, is_minus, partial)
        assert not outcome.complete
        new_set = outcome.new_maximal_frequent or outcome.new_minimal_infrequent
        if outcome.new_maximal_frequent is not None:
            assert is_frequent(relation, new_set, z)
            assert new_set in set(is_plus.edges)


class TestKeysFlow:
    def test_armstrong_to_keys_to_additional_key(self):
        from repro.keys import (
            FDSchema,
            armstrong_relation,
            decide_additional_key,
            fd,
            minimal_keys,
        )

        schema = FDSchema("ABCD", [fd("AB", "C"), fd("C", "D"), fd("D", "A")])
        instance = armstrong_relation(schema)
        keys = minimal_keys(instance)
        assert keys == schema.candidate_keys()
        outcome = decide_additional_key(instance, keys, method="logspace")
        assert not outcome.exists

    def test_csv_like_flow(self):
        from repro.keys import RelationalInstance, enumerate_minimal_keys_incrementally

        instance = RelationalInstance(
            [
                {"id": i, "grp": i % 2, "tag": ("x" if i < 2 else "y")}
                for i in range(4)
            ]
        )
        keys = enumerate_minimal_keys_incrementally(instance, method="fk-a")
        assert frozenset({"id"}) in set(keys)


class TestCoterieFlow:
    def test_audit_repair_reaudit(self):
        from repro.coteries import dominating_coterie, grid_coterie

        grid = grid_coterie(2, 2)
        assert not grid.is_nondominated(method="guess-check")
        repaired = dominating_coterie(grid, method="bm")
        assert repaired.dominates(grid)
        # Iterating repair reaches a non-dominated coterie.
        current = repaired
        for _ in range(10):
            if current.is_nondominated():
                break
            current = dominating_coterie(current)
        assert current.is_nondominated()

    def test_votes_to_duality(self):
        from repro.coteries import coterie_from_votes

        coterie = coterie_from_votes({"a": 1, "b": 1, "c": 1, "d": 1, "e": 1})
        hg = coterie.hypergraph()
        assert decide_duality(hg, hg, method="fk-b").is_dual


class TestCrossEngineCertificates:
    def test_certificate_path_replays_across_engines(self):
        from repro.hypergraph.generators import hard_nondual_pair
        from repro.duality.guess_and_check import check_certificate

        g, h = hard_nondual_pair(3)
        result = decide_duality(g, h, method="guess-check")
        assert not result.is_dual
        gg, hh = (h, g) if len(h) > len(g) else (g, h)
        assert check_certificate(gg, hh, result.certificate.path)

    def test_all_engines_one_instance_full_pipeline(self):
        from repro.duality import available_methods, check_result_witness
        from repro.hypergraph.generators import random_dual_pair, perturb_drop_edge

        g, h = random_dual_pair(6, 4, seed=42)
        broken = perturb_drop_edge(h)
        for method in available_methods():
            result = decide_duality(g, broken, method=method)
            assert not result.is_dual, method
            assert check_result_witness(g, broken, result), method
