"""Tests for the parallel subsystem (:mod:`repro.parallel`).

The contract under test everywhere: parallelism changes wall time, never
answers.  Sharded solving, the portfolio racer, and the batch front end
must return verdicts and certificates identical to the serial reference
engines, for every ``n_jobs``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.duality import check_result_witness, decide_duality
from repro.hypergraph import (
    Hypergraph,
    canonical_digest,
    from_mask_payload,
    instance_key,
    mask_payload,
)
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    perturb_enlarge_edge,
    random_dual_pair,
    random_simple,
    standard_dual_suite,
    threshold_dual_pair,
)
from repro.parallel import (
    PARALLEL_METHODS,
    ResultCache,
    WorkerPool,
    decide_duality_parallel,
    plan_bm,
    plan_fk,
    plan_logspace,
    race_portfolio,
    resolve_n_jobs,
    solve_many,
    solve_shards,
)

from tests.conftest import nonempty_simple_hypergraphs


def _instance_corpus():
    """A mixed corpus: dual, perturbed-non-dual, and adversarial pairs."""
    corpus = []
    for name, g, h in standard_dual_suite(max_matching=3, max_threshold=5):
        corpus.append((name, g, h))
        if len(h) > 1:
            corpus.append((f"{name}-drop", g, perturb_drop_edge(h)))
            corpus.append((f"{name}-enlarge", g, perturb_enlarge_edge(h)))
    corpus.append(("hard-3", *hard_nondual_pair(3)))
    for seed in range(3):
        corpus.append((f"random-{seed}", *random_dual_pair(6, 4, seed=seed)))
    return corpus


CORPUS = _instance_corpus()


# ---------------------------------------------------------------------------
# Sharded solving: bit-for-bit equivalence with the serial engines
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("method", PARALLEL_METHODS)
class TestShardedEquivalence:
    def test_corpus_in_process(self, method):
        for name, g, h in CORPUS:
            reference = decide_duality(g, h, method=method)
            sharded = decide_duality_parallel(g, h, method=method, n_jobs=1)
            assert sharded.verdict == reference.verdict, (method, name)
            assert sharded.certificate == reference.certificate, (method, name)
            assert sharded.method == reference.method, (method, name)

    def test_corpus_two_workers(self, method):
        # A spot-check subset across processes (pool startup is not free).
        for name, g, h in CORPUS[::7]:
            reference = decide_duality(g, h, method=method)
            sharded = decide_duality(g, h, method=method, n_jobs=2)
            assert sharded.verdict == reference.verdict, (method, name)
            assert sharded.certificate == reference.certificate, (method, name)

    @given(
        nonempty_simple_hypergraphs(max_vertices=5, max_edges=4),
        nonempty_simple_hypergraphs(max_vertices=5, max_edges=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_fuzzed_in_process(self, method, g, h):
        reference = decide_duality(g, h, method=method)
        sharded = decide_duality_parallel(g, h, method=method, n_jobs=1)
        assert sharded.verdict == reference.verdict
        assert sharded.certificate == reference.certificate


class TestShardedStats:
    """The tree engines' work counters survive the shard/merge round trip."""

    def test_bm_and_logspace_stats_match_serial(self):
        for name, g, h in CORPUS:
            for method in ("bm", "logspace"):
                reference = decide_duality(g, h, method=method)
                sharded = decide_duality_parallel(g, h, method=method, n_jobs=1)
                assert sharded.stats.nodes == reference.stats.nodes, (method, name)
                assert sharded.stats.max_depth == reference.stats.max_depth
                if method == "logspace":
                    assert (
                        sharded.stats.peak_space_bits
                        == reference.stats.peak_space_bits
                    ), name

    def test_fk_stats_match_serial_on_dual_instances(self):
        # On dual instances the serial recursion visits every branch the
        # planner unrolled, so even the counters line up.
        for name, g, h in CORPUS:
            reference = decide_duality(g, h, method="fk-b")
            if not reference.is_dual:
                continue
            sharded = decide_duality_parallel(g, h, method="fk-b", n_jobs=1)
            assert sharded.stats.nodes == reference.stats.nodes, name
            assert sharded.stats.max_depth == reference.stats.max_depth, name
            assert sharded.stats.base_cases == reference.stats.base_cases, name

    def test_fk_plan_oversharding(self):
        g, h = threshold_dual_pair(9, 5)
        plan = plan_fk(g, h, use_b=True, target_shards=8)
        assert len(plan.shards) >= 8
        # Orders are the serial DFS positions.
        assert [s.order for s in plan.shards] == list(range(len(plan.shards)))


class TestRecursiveShardPlans:
    """Multi-level bm/logspace plans: more shards, same answers."""

    def _skewed(self):
        # One tiny block glued to one big block: the root's children are
        # very uneven, so a one-level plan cannot balance the work.
        return threshold_dual_pair(9, 5)

    def test_bm_reshards_past_the_root_children(self):
        g, h = self._skewed()
        one_level = plan_bm(g, h)
        recursive = plan_bm(g, h, target_shards=len(one_level.shards) + 4)
        assert len(recursive.shards) > len(one_level.shards)
        # Re-sharding expanded interior nodes beyond the root.
        assert recursive.plan_stats.nodes > one_level.plan_stats.nodes

    def test_logspace_reshards_past_the_root_children(self):
        g, h = self._skewed()
        one_level = plan_logspace(g, h)
        recursive = plan_logspace(g, h, target_shards=len(one_level.shards) + 4)
        assert len(recursive.shards) > len(one_level.shards)
        assert len(recursive.extra["planned_nodes"]) > len(
            one_level.extra["planned_nodes"]
        )

    @pytest.mark.parametrize("method", ["bm", "logspace"])
    def test_recursive_plans_preserve_results_and_stats(self, method):
        plan_fn = plan_bm if method == "bm" else plan_logspace
        for name, g, h in CORPUS:
            serial = decide_duality(g, h, method=method)
            for target in (2, 5, 11):
                plan = plan_fn(g, h, target_shards=target)
                merged = solve_shards(plan, 1)
                assert merged.verdict == serial.verdict, (name, target)
                assert merged.certificate == serial.certificate, (name, target)
                assert merged.stats.nodes == serial.stats.nodes, (name, target)
                assert merged.stats.max_depth == serial.stats.max_depth
                if method == "bm":
                    assert merged.stats.base_cases == serial.stats.base_cases
                    assert (
                        merged.stats.max_children == serial.stats.max_children
                    )
                else:
                    assert (
                        merged.stats.peak_space_bits
                        == serial.stats.peak_space_bits
                    ), (name, target)

    def test_facade_engages_recursive_plans_at_n_jobs_2(self):
        g, h = self._skewed()
        result = decide_duality(g, h, method="bm", n_jobs=2)
        reference = decide_duality(g, h, method="bm")
        assert result.certificate == reference.certificate
        assert result.stats.extra["n_shards"] >= len(plan_bm(g, h).shards)


class TestFacadeParallelOptions:
    def test_n_jobs_rejected_for_serial_only_engines(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError, match="no parallel path"):
            decide_duality(g, h, method="berge", n_jobs=2)

    def test_bad_n_jobs_rejected(self):
        g, h = matching_dual_pair(2)
        for bad in (0, -2, 1.5, "4"):
            with pytest.raises(ValueError):
                decide_duality(g, h, method="fk-b", n_jobs=bad)

    def test_n_jobs_minus_one_means_all_cores(self):
        assert resolve_n_jobs(-1) >= 1
        g, h = matching_dual_pair(2)
        assert decide_duality(g, h, method="fk-b", n_jobs=-1).is_dual

    def test_unknown_option_rejected_with_sanctioned_list(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError, match="sanctioned options for 'fk-b'"):
            decide_duality(g, h, method="fk-b", frobnicate=True)
        with pytest.raises(ValueError, match="accepts no engine options"):
            decide_duality(g, h, method="logspace", use_bitset=False)

    def test_sanctioned_option_accepted(self):
        g, h = matching_dual_pair(2)
        assert decide_duality(g, h, method="fk-b", use_bitset=False).is_dual

    def test_use_bitset_false_incompatible_with_sharding(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError, match="use_bitset=False"):
            decide_duality(g, h, method="fk-b", n_jobs=2, use_bitset=False)


# ---------------------------------------------------------------------------
# Portfolio racing
# ---------------------------------------------------------------------------

class TestPortfolio:
    def test_sequential_mode_records_all_timings(self):
        g, h = matching_dual_pair(3)
        result = decide_duality(g, h, method="portfolio")
        race = result.stats.extra["portfolio"]
        assert race["mode"] == "sequential"
        assert set(race["timings_s"]) == set(race["engines"])
        assert all(t is not None for t in race["timings_s"].values())
        assert result.is_dual

    def test_winner_result_is_the_winners_serial_result(self):
        for name, g, h in CORPUS[::5]:
            result = race_portfolio(g, h, n_jobs=1)
            winner = result.stats.extra["portfolio"]["winner"]
            reference = decide_duality(g, h, method=winner)
            assert result.verdict == reference.verdict, name
            assert result.certificate == reference.certificate, name
            assert check_result_witness(g, h, result), name

    def test_race_mode_agrees_with_serial_references(self):
        for name, g, h in CORPUS[::9]:
            result = race_portfolio(g, h, n_jobs=2)
            assert result.stats.extra["portfolio"]["mode"] == "race"
            fk = decide_duality(g, h, method="fk-b")
            ls = decide_duality(g, h, method="logspace")
            assert result.verdict == fk.verdict == ls.verdict, name
            winner = result.stats.extra["portfolio"]["winner"]
            assert (
                result.certificate
                == decide_duality(g, h, method=winner).certificate
            ), name

    def test_unknown_engine_rejected(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError, match="unknown portfolio engine"):
            race_portfolio(g, h, engines=("fk-b", "quantum"))
        with pytest.raises(ValueError, match="at least one engine"):
            race_portfolio(g, h, engines=())

    def test_custom_engine_subset(self):
        g, h = hard_nondual_pair(2)
        result = race_portfolio(g, h, engines=("fk-a", "bm"), n_jobs=1)
        assert not result.is_dual
        assert set(result.stats.extra["portfolio"]["timings_s"]) == {"fk-a", "bm"}


class TestPortfolioCrashPaths:
    """A racer whose engine raises is reported and replaced, not dropped."""

    def _not_simple_pair(self):
        # {0} ⊂ {0, 1} makes G non-simple: every engine's precondition
        # check raises, which is the deterministic stand-in for an
        # engine crash inside a racer.
        g = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        return g, h

    def test_run_portfolio_entry_reports_instead_of_raising(self):
        from repro.parallel.portfolio import run_portfolio_entry

        g, h = self._not_simple_pair()
        engine, elapsed, result, error = run_portfolio_entry(
            ("fk-b", mask_payload(g), mask_payload(h))
        )
        assert engine == "fk-b"
        assert elapsed >= 0.0
        assert result is None
        assert error is not None and "NotSimple" in error

    def test_sequential_mode_survives_a_crashing_engine(self, monkeypatch):
        from repro import duality

        real = duality.decide_duality

        def crashy(g, h, method="bm", **kw):
            if method == "bm":
                raise RuntimeError("engine bm exploded")
            return real(g, h, method=method, **kw)

        monkeypatch.setattr(duality, "decide_duality", crashy)
        g, h = matching_dual_pair(3)
        result = race_portfolio(g, h, engines=("bm", "fk-b"), n_jobs=1)
        race = result.stats.extra["portfolio"]
        assert result.is_dual
        assert race["winner"] == "fk-b"
        assert "bm" in race["errors"] and "exploded" in race["errors"]["bm"]
        assert race["timings_s"]["bm"] is not None  # reported, not dropped

    def test_race_mode_replaces_crashed_racers(self, monkeypatch):
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("monkeypatching racers requires fork semantics")
        from repro import duality

        real = duality.decide_duality

        def crashy(g, h, method="bm", **kw):
            if method in ("bm", "logspace"):
                raise RuntimeError(f"engine {method} exploded")
            return real(g, h, method=method, **kw)

        monkeypatch.setattr(duality, "decide_duality", crashy)
        g, h = matching_dual_pair(3)
        # Two slots, three engines: both initial racers crash, so the
        # race must relaunch fk-b on a vacated slot and still answer.
        result = race_portfolio(
            g, h, engines=("bm", "logspace", "fk-b"), n_jobs=2
        )
        race = result.stats.extra["portfolio"]
        assert result.is_dual
        assert race["mode"] == "race"
        assert race["winner"] == "fk-b"
        assert set(race["errors"]) == {"bm", "logspace"}
        reference = decide_duality(g, h, method="fk-b")
        assert result.verdict == reference.verdict
        assert result.certificate == reference.certificate

    def test_every_engine_failing_raises_with_the_reasons(self):
        from repro.errors import NotSimpleError

        g, h = self._not_simple_pair()
        # Sequential mode re-raises the shared underlying failure (the
        # pre-existing every-engine-rejects-non-simple contract) with
        # the other engines' outcomes attached as a note.
        with pytest.raises(NotSimpleError) as info:
            race_portfolio(g, h, engines=("fk-b", "bm"), n_jobs=1)
        assert any(
            "every portfolio engine failed" in note
            for note in getattr(info.value, "__notes__", [])
        )
        # Race mode only has the racers' error reprs to report.
        with pytest.raises(RuntimeError, match="every portfolio engine"):
            race_portfolio(g, h, engines=("fk-b", "bm"), n_jobs=2)


# ---------------------------------------------------------------------------
# Canonical hashing
# ---------------------------------------------------------------------------

class TestCanonicalHashing:
    def test_payload_round_trip(self):
        for _name, g, h in CORPUS[:10]:
            for hg in (g, h):
                assert from_mask_payload(mask_payload(hg)) == hg

    def test_digest_invariant_under_order_preserving_relabelling(self):
        g = Hypergraph([{1, 2}, {2, 3}, {3, 4}], vertices=range(6))
        relabelled = Hypergraph(
            [("b", "c"), ("c", "d"), ("d", "e")],
            vertices=["a", "b", "c", "d", "e", "f"],
        )
        assert canonical_digest(g) == canonical_digest(relabelled)

    def test_digest_invariant_under_construction_order(self):
        edges = [{1, 4}, {2, 3}, {1, 2}]
        shuffled = list(edges)
        random.Random(7).shuffle(shuffled)
        assert canonical_digest(Hypergraph(edges)) == canonical_digest(
            Hypergraph(shuffled)
        )

    def test_distinct_families_get_distinct_digests(self):
        seen = {}
        rng_instances = [
            random_simple(n_vertices=6, n_edges=4, seed=seed) for seed in range(40)
        ]
        rng_instances += [g for _n, g, h in CORPUS[:10] for g in (g, h)]
        for hg in rng_instances:
            digest = canonical_digest(hg)
            previous = seen.setdefault(digest, hg)
            # Same digest must mean same mask structure.
            assert mask_payload(previous)[1] == mask_payload(hg)[1]

    def test_instance_key_binds_labels_and_method(self):
        g = Hypergraph([{1, 2}, {2, 3}], vertices=range(4))
        relabelled = Hypergraph(
            [("b", "c"), ("c", "d")], vertices=["a", "b", "c", "d"]
        )
        assert canonical_digest(g) == canonical_digest(relabelled)
        assert instance_key(g, g, "fk-b") != instance_key(
            relabelled, relabelled, "fk-b"
        )
        assert instance_key(g, g, "fk-b") != instance_key(g, g, "bm")
        assert instance_key(g, g, "fk-b") == instance_key(g, g, "fk-b")


# ---------------------------------------------------------------------------
# Batch front end and result cache
# ---------------------------------------------------------------------------

class TestSolveMany:
    def _pairs(self):
        return [
            matching_dual_pair(3),
            threshold_dual_pair(7, 4),
            hard_nondual_pair(3),
            random_dual_pair(6, 4, seed=2),
        ]

    @pytest.mark.parametrize("method", ["fk-b", "logspace"])
    def test_two_jobs_identical_to_serial_reference(self, method):
        pairs = self._pairs()
        items = solve_many(pairs, method=method, n_jobs=2)
        assert len(items) == len(pairs)
        for (g, h), item in zip(pairs, items):
            reference = decide_duality(g, h, method=method)
            assert item.result.verdict == reference.verdict
            assert item.result.certificate == reference.certificate
            assert item.result.method == reference.method

    def test_randomized_batches_identical_to_serial(self):
        rng = random.Random(13)
        pairs = []
        for _ in range(12):
            g = random_simple(
                n_vertices=rng.randint(3, 6),
                n_edges=rng.randint(1, 4),
                seed=rng.randint(0, 10_000),
            )
            if rng.random() < 0.5:
                from repro.hypergraph import transversal_hypergraph

                pairs.append((g, transversal_hypergraph(g)))
            else:
                h = random_simple(
                    n_vertices=rng.randint(3, 6),
                    n_edges=rng.randint(1, 4),
                    seed=rng.randint(0, 10_000),
                )
                pairs.append((g, h))
        for method in ("fk-b", "logspace"):
            items = solve_many(pairs, method=method, n_jobs=2)
            for (g, h), item in zip(pairs, items):
                reference = decide_duality(g, h, method=method)
                assert item.result.verdict == reference.verdict, method
                assert item.result.certificate == reference.certificate, method

    def test_cache_hit_miss_behaviour(self):
        pairs = self._pairs()
        cache = ResultCache()
        first = solve_many(pairs, method="fk-b", cache=cache)
        assert cache.misses == len(pairs) and cache.hits == 0
        assert all(not item.cached for item in first)
        second = solve_many(pairs, method="fk-b", cache=cache)
        assert cache.hits == len(pairs)
        assert all(item.cached and item.elapsed_s == 0.0 for item in second)
        for a, b in zip(first, second):
            assert a.key == b.key
            assert a.result.verdict == b.result.verdict
            assert a.result.certificate == b.result.certificate

    def test_cache_is_method_sensitive(self):
        cache = ResultCache()
        pairs = [matching_dual_pair(2)]
        solve_many(pairs, method="fk-b", cache=cache)
        solve_many(pairs, method="bm", cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_duplicate_instances_solved_once(self):
        g, h = matching_dual_pair(3)
        items = solve_many([(g, h), (g, h), (g, h)], method="fk-b")
        assert not items[0].cached
        assert items[1].cached and items[2].cached
        assert items[0].result.certificate == items[2].result.certificate

    def test_cache_json_round_trip(self, tmp_path):
        pairs = self._pairs()
        cache = ResultCache()
        originals = solve_many(pairs, method="fk-b", cache=cache)
        path = tmp_path / "cache.json"
        saved = cache.save(path)
        assert saved == len(pairs)
        reloaded = ResultCache.load(path)
        replayed = solve_many(pairs, method="fk-b", cache=reloaded)
        assert reloaded.hits == len(pairs)
        for original, replay in zip(originals, replayed):
            assert replay.cached
            assert replay.result.verdict == original.result.verdict
            assert replay.result.certificate == original.result.certificate
            assert replay.result.stats.extra.get("cached") is True

    def test_path_inputs(self, tmp_path):
        g, h = matching_dual_pair(2)
        path = tmp_path / "instance.hg"
        hgio.dump_many([g, h], path)
        (item,) = solve_many([path], method="bm")
        assert item.source == str(path)
        assert item.is_dual

    def test_malformed_instance_file_rejected(self, tmp_path):
        g, _h = matching_dual_pair(2)
        path = tmp_path / "only-one.hg"
        hgio.dump(g, path)
        with pytest.raises(ValueError, match="exactly two hypergraphs"):
            solve_many([path])


class TestWorkerPool:
    def test_in_process_fallback_is_plain_map(self):
        pool = WorkerPool(1)
        assert pool.map(len, [(1, 2), (3,)]) == [2, 1]

    def test_single_item_never_forks(self):
        # A lambda is unpicklable: proof that one item stays in-process.
        pool = WorkerPool(4)
        assert pool.map(lambda x: x + 1, [41]) == [42]

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        for bad in (0, -3, True, 2.0):
            with pytest.raises(ValueError):
                resolve_n_jobs(bad)


# ---------------------------------------------------------------------------
# CLI front end
# ---------------------------------------------------------------------------

class TestBatchCommand:
    @pytest.fixture
    def instance_files(self, tmp_path):
        files = []
        for name, (g, h) in (
            ("dual-m3", matching_dual_pair(3)),
            ("dual-t74", threshold_dual_pair(7, 4)),
            ("broken", hard_nondual_pair(3)),
        ):
            path = tmp_path / f"{name}.hg"
            hgio.dump_many([g, h], path)
            files.append(path)
        return files

    def test_batch_reports_and_exit_status(self, instance_files, capsys):
        status = main(["batch", *map(str, instance_files)])
        out = capsys.readouterr().out
        assert status == 1  # one instance is not dual
        assert "broken.hg" in out and "NOT dual" in out
        assert "3 instances (2 dual, 1 not)" in out

    def test_batch_all_dual_exits_zero(self, instance_files, capsys):
        status = main(["batch", *map(str, instance_files[:2]), "--jobs", "2"])
        assert status == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_batch_cache_round_trip(self, instance_files, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        main(["batch", *map(str, instance_files), "--cache", str(cache)])
        first = capsys.readouterr().out
        assert "hits/misses 0/3" in first
        main(["batch", *map(str, instance_files), "--cache", str(cache)])
        second = capsys.readouterr().out
        assert "hits/misses 3/0" in second
        assert second.count("[cached]") == 3

    def test_dual_jobs_flag(self, tmp_path, capsys):
        g, h = matching_dual_pair(2)
        g_path, h_path = tmp_path / "g.hg", tmp_path / "h.hg"
        hgio.dump(g, g_path)
        hgio.dump(h, h_path)
        assert (
            main(
                ["dual", str(g_path), str(h_path), "--method", "fk-b", "-j", "2"]
            )
            == 0
        )

    def test_dual_portfolio_reports_winner(self, tmp_path, capsys):
        g, h = matching_dual_pair(2)
        g_path, h_path = tmp_path / "g.hg", tmp_path / "h.hg"
        hgio.dump(g, g_path)
        hgio.dump(h, h_path)
        assert main(["dual", str(g_path), str(h_path), "--method", "portfolio"]) == 0
        assert "portfolio winner:" in capsys.readouterr().out

    def test_portfolio_with_cache_rejected(self):
        with pytest.raises(ValueError, match="portfolio.*cannot be cached"):
            solve_many(
                [matching_dual_pair(2)], method="portfolio", cache=ResultCache()
            )

    def test_duplicate_misses_counted_once(self):
        g, h = matching_dual_pair(3)
        cache = ResultCache()
        solve_many([(g, h), (g, h), (g, h)], method="fk-b", cache=cache)
        assert cache.misses == 1 and cache.hits == 0
