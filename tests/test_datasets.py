"""Tests for the synthetic dataset generators (the offline substitutes)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidInstanceError
from repro.itemsets.borders import borders, maximal_frequent_itemsets
from repro.itemsets.datasets import (
    categorical_onehot,
    contrast_pair,
    dense_random,
    market_basket,
    planted_borders,
    single_pattern,
)
from repro.itemsets.frequency import frequency


class TestMarketBasket:
    def test_shape_and_seeding(self):
        a = market_basket(n_items=8, n_rows=25, seed=1)
        b = market_basket(n_items=8, n_rows=25, seed=1)
        assert a == b
        assert len(a) == 25
        assert len(a.items) == 8

    def test_patterns_create_correlation(self):
        rel = market_basket(n_items=10, n_rows=80, n_patterns=2, seed=3)
        # Some pair should co-occur far above the noise level.
        best = max(
            frequency(rel, {x, y})
            for x in rel.items
            for y in rel.items
            if x < y
        )
        assert best > len(rel) // 8

    def test_pattern_size_bound(self):
        with pytest.raises(InvalidInstanceError):
            market_basket(n_items=3, pattern_size=5)


class TestDenseRandom:
    def test_density_bounds(self):
        with pytest.raises(InvalidInstanceError):
            dense_random(density=1.5)

    def test_extreme_densities(self):
        empty = dense_random(n_items=4, n_rows=5, density=0.0, seed=1)
        assert all(not row for row in empty.rows)
        full = dense_random(n_items=4, n_rows=5, density=1.0, seed=1)
        assert all(len(row) == 4 for row in full.rows)


class TestPlantedBorders:
    def test_borders_match_plant(self):
        rel, z, expected = planted_borders(
            maximal_frequent=[{"i00", "i01"}, {"i02"}], n_items=4, z=3
        )
        assert maximal_frequent_itemsets(rel, z) == expected

    def test_default_plant_is_consistent(self):
        rel, z, expected = planted_borders(n_items=6, z=2, seed=8)
        assert maximal_frequent_itemsets(rel, z) == expected

    def test_bad_parameters(self):
        with pytest.raises(InvalidInstanceError):
            planted_borders(maximal_frequent=[{"zz"}], n_items=3)
        with pytest.raises(InvalidInstanceError):
            planted_borders(n_items=3, z=0)


class TestContrastAndSingle:
    def test_contrast_has_wide_and_narrow_border_sets(self):
        rel, z = contrast_pair(n_items=8, seed=2)
        is_plus, _ = borders(rel, z)
        sizes = sorted(len(e) for e in is_plus.edges)
        assert sizes[0] <= 2
        assert sizes[-1] >= 3

    def test_single_pattern_borders(self):
        rel, z = single_pattern(n_items=6, z=2)
        is_plus, is_minus = borders(rel, z)
        assert len(is_plus) == 1
        # Minimal infrequent sets are exactly the out-of-pattern singletons.
        assert all(len(e) == 1 for e in is_minus.edges)


class TestCategoricalOnehot:
    def test_one_item_per_group(self):
        rel = categorical_onehot(n_attributes=3, n_values=3, n_rows=20, seed=4)
        for row in rel.rows:
            for i in range(3):
                group = {a for a in row if a.startswith(f"a{i}=")}
                assert len(group) == 1

    def test_within_group_pairs_never_frequent(self):
        rel = categorical_onehot(n_attributes=3, n_values=3, n_rows=30, seed=5)
        for i in range(3):
            assert frequency(rel, {f"a{i}=0", f"a{i}=1"}) == 0

    def test_item_universe_covers_all_values(self):
        rel = categorical_onehot(n_attributes=2, n_values=4, n_rows=5, seed=1)
        assert len(rel.items) == 8

    def test_skew_makes_value0_dominant(self):
        rel = categorical_onehot(
            n_attributes=2, n_values=3, n_rows=60, skew=0.8, seed=6
        )
        assert frequency(rel, {"a0=0"}) > frequency(rel, {"a0=1"})

    def test_parameter_validation(self):
        with pytest.raises(InvalidInstanceError):
            categorical_onehot(n_values=1)
        with pytest.raises(InvalidInstanceError):
            categorical_onehot(skew=0.0)

    def test_borders_contain_cross_category_infrequents(self):
        rel = categorical_onehot(
            n_attributes=3, n_values=2, n_rows=40, skew=0.9, seed=7
        )
        _, is_minus = borders(rel, len(rel) - 5)
        assert len(is_minus) > 0
