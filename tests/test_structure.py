"""Tests for structural hypergraph analysis (the §6 tractability landscape)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    cycle_graph_edges,
    matching,
    path_graph_edges,
    threshold,
)
from repro.hypergraph.structure import (
    gyo_reduction,
    is_alpha_acyclic,
    is_conformal,
    primal_degeneracy,
    primal_graph_edges,
    tractability_report,
)

from tests.conftest import hypergraphs


class TestPrimalGraph:
    def test_pairs_from_edges(self):
        hg = Hypergraph([{1, 2, 3}])
        assert primal_graph_edges(hg) == {
            frozenset({1, 2}),
            frozenset({1, 3}),
            frozenset({2, 3}),
        }

    def test_empty(self):
        assert primal_graph_edges(Hypergraph.empty()) == set()

    def test_singletons_have_no_pairs(self):
        assert primal_graph_edges(Hypergraph.singletons({1, 2})) == set()


class TestAcyclicity:
    def test_single_edge_acyclic(self):
        assert is_alpha_acyclic(Hypergraph([{1, 2, 3}]))

    def test_empty_acyclic(self):
        assert is_alpha_acyclic(Hypergraph.empty())

    def test_path_acyclic(self):
        assert is_alpha_acyclic(path_graph_edges(5))

    def test_triangle_graph_cyclic(self):
        assert not is_alpha_acyclic(cycle_graph_edges(3))

    def test_cycle_cyclic(self):
        assert not is_alpha_acyclic(cycle_graph_edges(5))

    def test_triangle_with_covering_edge_acyclic(self):
        # Adding the full triangle edge makes the classic example acyclic.
        hg = Hypergraph([{1, 2}, {2, 3}, {1, 3}, {1, 2, 3}])
        assert is_alpha_acyclic(hg)

    def test_star_acyclic(self):
        hg = Hypergraph([{0, i} for i in range(1, 5)])
        assert is_alpha_acyclic(hg)

    def test_matching_acyclic(self):
        assert is_alpha_acyclic(matching(3))

    def test_gyo_residue_on_cyclic(self):
        residue = gyo_reduction(cycle_graph_edges(4))
        assert len(residue) > 0

    def test_gyo_residue_empty_on_acyclic(self):
        assert len(gyo_reduction(path_graph_edges(4))) == 0


class TestConformality:
    def test_triangle_not_conformal(self):
        # The primal graph of C3 is a triangle clique not inside any edge.
        assert not is_conformal(cycle_graph_edges(3))

    def test_covered_triangle_conformal(self):
        hg = Hypergraph([{1, 2}, {2, 3}, {1, 3}, {1, 2, 3}])
        assert is_conformal(hg)

    def test_square_conformal(self):
        # C4's primal cliques are its edges.
        assert is_conformal(cycle_graph_edges(4))

    def test_single_edge_conformal(self):
        assert is_conformal(Hypergraph([{1, 2, 3, 4}]))

    @given(hypergraphs(max_vertices=5, max_edges=4))
    @settings(max_examples=40, deadline=None)
    def test_acyclic_implies_conformal(self, hg):
        # α-acyclic ⟹ conformal (one half of the classical equivalence).
        if is_alpha_acyclic(hg):
            assert is_conformal(hg)


class TestDegeneracy:
    def test_edgeless(self):
        assert primal_degeneracy(Hypergraph.empty({1, 2})) == 0

    def test_path(self):
        assert primal_degeneracy(path_graph_edges(5)) == 1

    def test_cycle(self):
        assert primal_degeneracy(cycle_graph_edges(5)) == 2

    def test_clique_via_big_edge(self):
        assert primal_degeneracy(Hypergraph([{1, 2, 3, 4}])) == 3

    def test_threshold_hypergraph_is_dense(self):
        assert primal_degeneracy(threshold(5, 3)) == 4


class TestReport:
    def test_acyclic_verdict(self):
        report = tractability_report(path_graph_edges(4))
        assert report.alpha_acyclic
        assert "alpha-acyclic" in report.verdict

    def test_bounded_degeneracy_verdict(self):
        report = tractability_report(cycle_graph_edges(6))
        assert not report.alpha_acyclic
        assert report.degeneracy == 2
        assert "degeneracy" in report.verdict

    def test_general_case_verdict(self):
        dense = threshold(9, 5)
        report = tractability_report(dense, degeneracy_threshold=3, rank_threshold=3)
        assert "general-case" in report.verdict

    def test_rank_verdict(self):
        hg = Hypergraph(
            [{i, (i + 1) % 8, (i + 3) % 8} for i in range(8)]
        )
        report = tractability_report(hg, degeneracy_threshold=1, rank_threshold=3)
        if not report.alpha_acyclic and report.degeneracy > 1:
            assert "rank" in report.verdict or "general" in report.verdict

    def test_report_fields(self):
        report = tractability_report(matching(2))
        assert report.rank == 2
        assert report.degeneracy == 1
        assert report.conformal
