"""Tests for :mod:`repro.keys.horn_bridge` — FDs ⟷ definite Horn theories."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError
from repro.keys.fd import FDSchema, fd
from repro.keys.horn_bridge import (
    characteristic_closed_sets,
    closed_sets_are_horn_models,
    closures_agree,
    fd_schema_to_horn,
    horn_to_fd_schema,
)
from repro.logic import HornTheory, intersection_closure


def sample_schema() -> FDSchema:
    """The classic (city, street → zip; zip → city) style schema."""
    return FDSchema(
        "abcd",
        [fd("ab", "c"), fd("c", "a"), fd("d", "bc")],
    )


class TestTranslation:
    def test_clause_per_rhs_atom(self):
        theory = fd_schema_to_horn(sample_schema())
        # ab→c (1) + c→a (1) + d→bc (2) = 4 clauses
        assert len(theory) == 4
        assert theory.is_definite()
        assert theory.atoms == frozenset("abcd")

    def test_tautological_rhs_dropped(self):
        schema = FDSchema("ab", [fd("ab", "ab")])
        theory = fd_schema_to_horn(schema)
        assert len(theory) == 0  # X → X carries no information

    def test_roundtrip_preserves_semantics(self):
        schema = sample_schema()
        back = horn_to_fd_schema(fd_schema_to_horn(schema))
        from repro._util import powerset

        for attrs in powerset(schema.attributes):
            assert schema.closure(attrs) == back.closure(attrs)

    def test_negative_clauses_rejected(self):
        from repro.logic import HornClause

        theory = HornTheory([HornClause({"a"}, "b"), HornClause({"b"})])
        with pytest.raises(InvalidInstanceError):
            horn_to_fd_schema(theory)

    def test_facts_translate_to_empty_lhs(self):
        theory = HornTheory.from_tuples([((), "a")], atoms="ab")
        schema = horn_to_fd_schema(theory)
        assert schema.closure(()) == frozenset({"a"})


class TestSemanticsBridge:
    def test_closures_agree_on_sample(self):
        schema = sample_schema()
        from repro._util import powerset

        for attrs in powerset(schema.attributes):
            assert closures_agree(schema, attrs)

    def test_closed_sets_are_models(self):
        assert closed_sets_are_horn_models(sample_schema())

    def test_closed_sets_are_intersection_closed(self):
        schema = sample_schema()
        closed = schema.closed_sets()
        assert intersection_closure(closed) == set(closed)

    def test_characteristic_sets_generate_all_closed_sets(self):
        schema = sample_schema()
        chars = characteristic_closed_sets(schema)
        assert intersection_closure(chars) == set(schema.closed_sets())
        # every characteristic set is closed
        for s in chars:
            assert schema.is_closed(s)

    @given(
        st.lists(
            st.tuples(
                st.frozensets(st.sampled_from("abcd"), min_size=1, max_size=2),
                st.frozensets(st.sampled_from("abcd"), min_size=1, max_size=2),
            ),
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bridge_on_random_schemas(self, dep_specs):
        schema = FDSchema(
            "abcd",
            [fd(lhs, rhs) for lhs, rhs in dep_specs],
        )
        assert closed_sets_are_horn_models(schema)
        from repro._util import powerset

        for attrs in list(powerset(schema.attributes))[:8]:
            assert closures_agree(schema, attrs)

    def test_keys_via_horn_closure(self):
        # candidate keys = minimal sets whose Horn closure is everything
        schema = sample_schema()
        theory = fd_schema_to_horn(schema)
        keys = schema.candidate_keys()
        for key in keys.edges:
            assert theory.closure(key) == schema.attributes
            for attr in key:
                assert theory.closure(key - {attr}) != schema.attributes
