"""Golden-corpus regression replay (``tests/corpus/*.hg``).

The corpus files are real instances past PRs tripped over — skewed
decomposition trees, FK-B forced-true deltas, single-vertex edges,
Boolean constants, extra-edge certificates — with their expected
verdicts recorded in ``MANIFEST.json`` (regenerate with
``python tests/corpus/generate.py``).  The replays drive them through
the batch front end and the persistent service, so a regression in any
engine, the shard planner, the cache, or the service layer shows up as
a verdict flip on a named, checked-in instance.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.duality import check_result_witness, decide_duality
from repro.parallel import ResultCache, load_instance, solve_many
from repro.service import EnginePool, EngineService

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
MANIFEST = json.loads((CORPUS_DIR / "MANIFEST.json").read_text(encoding="utf-8"))

REPLAY_ENGINES = ("bm", "logspace", "fk-b", "dfs-enum", "tractable")


def _files():
    return [CORPUS_DIR / entry["file"] for entry in MANIFEST.values()]


def test_manifest_matches_files_on_disk():
    files = {entry["file"] for entry in MANIFEST.values()}
    on_disk = {p.name for p in CORPUS_DIR.glob("*.hg")}
    assert files == on_disk
    assert len(MANIFEST) >= 10


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_every_engine_reproduces_the_expected_verdict(name):
    entry = MANIFEST[name]
    g, h = load_instance(CORPUS_DIR / entry["file"])
    expected_dual = entry["verdict"] == "dual"
    for engine in REPLAY_ENGINES:
        result = decide_duality(g, h, method=engine)
        assert result.is_dual == expected_dual, (name, engine, entry["why"])
        if not result.is_dual and result.witness is not None:
            assert check_result_witness(g, h, result), (name, engine)


def test_corpus_replays_through_solve_many():
    items = solve_many(_files(), method="bm", cache=ResultCache())
    for item, (name, entry) in zip(items, sorted(MANIFEST.items())):
        assert item.source.endswith(entry["file"])
        assert item.is_dual == (entry["verdict"] == "dual"), name


def test_corpus_replays_through_the_service(tmp_path):
    cache_path = tmp_path / "corpus-cache.json"
    with EngineService(method="bm", cache=cache_path) as service:
        for path in _files():
            service.submit(path)
        responses = service.drain()
    for response, (name, entry) in zip(responses, sorted(MANIFEST.items())):
        assert response.is_dual == (entry["verdict"] == "dual"), name

    # A second service session answers the whole corpus from the cache.
    with EngineService(method="bm", cache=cache_path) as replay:
        for path in _files():
            replay.submit(path)
        replayed = replay.drain()
        assert replay.pool.tasks_completed == 0
    for first, second in zip(responses, replayed):
        assert second.cached
        assert second.result.verdict == first.result.verdict
        assert second.result.certificate == first.result.certificate


def test_corpus_sharded_and_pooled_replay():
    """The skewed instances through recursive plans and a warm pool."""
    from repro.parallel import plan_bm, plan_logspace, solve_shards

    with EnginePool(2) as pool:
        for name, entry in sorted(MANIFEST.items()):
            g, h = load_instance(CORPUS_DIR / entry["file"])
            for engine, plan_fn in (("bm", plan_bm), ("logspace", plan_logspace)):
                serial = decide_duality(g, h, method=engine)
                plan = plan_fn(g, h, target_shards=4)
                merged = solve_shards(plan, pool=pool)
                assert merged.verdict == serial.verdict, (name, engine)
                assert merged.certificate == serial.certificate, (name, engine)
        assert pool.generations == 1
