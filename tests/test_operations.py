"""Tests for the restriction/complement/contraction operators (Section 2 algebra)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import VertexError
from repro.hypergraph import (
    Hypergraph,
    complement_family,
    contract,
    delete_edges_meeting,
    minimized_union,
    project,
    relabel,
    restrict_to_subsets,
    restriction_instance,
    union,
)

from tests.conftest import hypergraphs


class TestProject:
    def test_projection_intersects_edges(self):
        g = Hypergraph([{1, 2}, {2, 3}, {3, 4}], vertices=range(1, 5))
        p = project(g, {2, 3})
        assert set(p.edges) == {frozenset({2}), frozenset({2, 3}), frozenset({3})}

    def test_projection_may_create_empty_edge(self):
        g = Hypergraph([{1}, {2}], vertices={1, 2})
        p = project(g, {1})
        assert frozenset() in set(p.edges)

    def test_projection_not_minimized(self):
        # {2} ⊂ {2,3} must both survive — marksmall's "∅ ∈ G^S" test
        # depends on projections keeping covered edges.
        g = Hypergraph([{1, 2}, {2, 3}], vertices=range(1, 4))
        p = project(g, {2, 3})
        assert len(p) == 2

    def test_projection_scope_must_be_subset(self):
        with pytest.raises(VertexError):
            project(Hypergraph([{1}]), {1, 99})

    def test_projection_universe_is_scope(self):
        g = Hypergraph([{1, 2}], vertices={1, 2, 3})
        assert project(g, {1}).vertices == {1}


class TestRestrictToSubsets:
    def test_keeps_only_contained_edges(self):
        h = Hypergraph([{1}, {1, 2}, {2, 3}], vertices=range(1, 4))
        r = restrict_to_subsets(h, {1, 2})
        assert set(r.edges) == {frozenset({1}), frozenset({1, 2})}

    def test_scope_must_be_subset(self):
        with pytest.raises(VertexError):
            restrict_to_subsets(Hypergraph([{1}]), {99})

    def test_restriction_instance_matches_paper_definition(self):
        g = Hypergraph([{1, 2}, {3}], vertices=range(1, 4))
        h = Hypergraph([{1, 3}, {2}], vertices=range(1, 4))
        gs, hs = restriction_instance(g, h, frozenset({1, 2}))
        assert set(gs.edges) == {frozenset({1, 2}), frozenset()}
        assert set(hs.edges) == {frozenset({2})}


class TestComplementFamily:
    def test_basic(self):
        a = Hypergraph([{1, 2}], vertices={1, 2, 3})
        assert set(complement_family(a).edges) == {frozenset({3})}

    def test_involution(self):
        a = Hypergraph([{1}, {2, 3}], vertices={1, 2, 3})
        assert complement_family(complement_family(a)) == a

    def test_with_larger_universe(self):
        a = Hypergraph([{1}], vertices={1})
        c = complement_family(a, universe={1, 2})
        assert set(c.edges) == {frozenset({2})}

    def test_universe_must_cover(self):
        with pytest.raises(VertexError):
            complement_family(Hypergraph([{1, 2}]), universe={1})

    @given(hypergraphs())
    def test_involution_property(self, hg):
        assert complement_family(complement_family(hg)) == hg


class TestContractAndDelete:
    def test_contract_removes_and_minimizes(self):
        g = Hypergraph([{1, 2}, {2}, {1, 3}], vertices=range(1, 4))
        c = contract(g, {2})
        # {1,2} → {1}, {2} → {} which absorbs everything else.
        assert set(c.edges) == {frozenset()}
        assert c.vertices == {1, 3}

    def test_delete_edges_meeting(self):
        g = Hypergraph([{1, 2}, {3}], vertices=range(1, 4))
        d = delete_edges_meeting(g, {1})
        assert set(d.edges) == {frozenset({3})}
        assert d.vertices == g.vertices


class TestUnionAndRelabel:
    def test_union_keeps_both_edge_sets(self):
        a = Hypergraph([{1}])
        b = Hypergraph([{2}])
        assert len(union(a, b)) == 2

    def test_minimized_union_is_simple(self):
        a = Hypergraph([{1}])
        b = Hypergraph([{1, 2}])
        assert set(minimized_union(a, b).edges) == {frozenset({1})}

    def test_relabel_injective(self):
        g = Hypergraph([{1, 2}], vertices={1, 2})
        r = relabel(g, {1: "a", 2: "b"})
        assert set(r.edges) == {frozenset({"a", "b"})}

    def test_relabel_requires_full_mapping(self):
        with pytest.raises(VertexError):
            relabel(Hypergraph([{1, 2}]), {1: "a"})

    def test_relabel_requires_injective(self):
        with pytest.raises(VertexError):
            relabel(Hypergraph([{1, 2}]), {1: "a", 2: "a"})


class TestDualityCommutesWithComplement:
    @given(hypergraphs(max_vertices=5, max_edges=4))
    def test_tr_of_complement_family(self, hg):
        # Sanity for the itemset bridge: tr(A^c) is well-defined and simple.
        from repro.hypergraph import transversal_hypergraph

        trc = transversal_hypergraph(complement_family(hg))
        assert trc.is_simple()
