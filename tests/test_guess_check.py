"""Tests for Section 5: guess-and-check certificates (Thm 5.1, Lemma 5.1)."""

from __future__ import annotations

import math

import pytest

from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    perturb_enlarge_edge,
    standard_dual_suite,
    threshold_dual_pair,
)
from repro.duality.guess_and_check import (
    certificate_for,
    check_certificate,
    check_certificate_metered,
    decide_guess_and_check,
)
from repro.duality.logspace import descriptor_bits, instance_size


def _ordered(g, h):
    return (h, g) if len(h) > len(g) else (g, h)


class TestCertificates:
    def test_dual_instance_has_no_certificate(self):
        g, h = _ordered(*matching_dual_pair(3))
        assert certificate_for(g, h) is None

    def test_nondual_instance_has_verified_certificate(self):
        g, h = _ordered(*hard_nondual_pair(3))
        pi = certificate_for(g, h)
        assert pi is not None
        assert check_certificate(g, h, pi)

    def test_wrong_guesses_rejected(self):
        g, h = _ordered(*hard_nondual_pair(3))
        assert not check_certificate(g, h, (10 ** 9,))
        assert not check_certificate(g, h, (0,))

    def test_done_leaf_is_not_a_certificate(self):
        g, h = _ordered(*matching_dual_pair(2))
        # Every node of a dual instance's tree is done/nil — no
        # descriptor may check out.
        from repro.duality.logspace import iter_tree_nodes

        for attrs in iter_tree_nodes(g, h):
            assert not check_certificate(g, h, attrs.label)

    def test_invalid_instance_raises(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError):
            check_certificate(g, perturb_enlarge_edge(h), ())

    def test_metered_check(self):
        g, h = _ordered(*hard_nondual_pair(3))
        pi = certificate_for(g, h)
        ok, meter = check_certificate_metered(g, h, pi)
        assert ok
        assert meter.peak_bits > 0
        assert meter.live_bits == 0


class TestDecider:
    def test_suite_agreement(self):
        for name, g, h in standard_dual_suite(max_matching=3, max_threshold=5):
            assert decide_guess_and_check(g, h).is_dual, name

    def test_rejections_carry_certificate_path(self):
        g, h = matching_dual_pair(3)
        broken = perturb_drop_edge(h)
        result = decide_guess_and_check(g, broken)
        assert not result.is_dual
        assert result.certificate.path is not None
        gg, hh = _ordered(g, broken)
        assert check_certificate(gg, hh, result.certificate.path)


class TestGuessSizeBound:
    def test_guessed_bits_reported_and_polylog(self):
        # Theorem 5.1: the guess is O(log² n) bits.
        for k in (2, 3, 4, 5):
            g, h = _ordered(*matching_dual_pair(k))
            result = decide_guess_and_check(g, h)
            n = instance_size(g, h)
            bound = 4 * (math.log2(n) ** 2) + 16
            assert 0 < result.stats.guessed_bits <= bound

    def test_guessed_bits_formula(self):
        g, h = _ordered(*threshold_dual_pair(5, 3))
        result = decide_guess_and_check(g, h)
        assert result.stats.guessed_bits == descriptor_bits(g, h)


class TestBitsetEquivalence:
    """The mask-domain walker must replicate the frozenset walk exactly."""

    def _assert_equivalent(self, g, h):
        fast = decide_guess_and_check(g, h, use_bitset=True)
        reference = decide_guess_and_check(g, h, use_bitset=False)
        assert fast.verdict == reference.verdict
        assert fast.certificate == reference.certificate
        assert fast.stats.nodes == reference.stats.nodes
        assert fast.stats.guessed_bits == reference.stats.guessed_bits
        assert fast.stats.extra.get("swapped") == reference.stats.extra.get(
            "swapped"
        )

    def test_dual_suite(self):
        for _name, g, h in standard_dual_suite(max_matching=3, max_threshold=5):
            self._assert_equivalent(g, h)

    def test_perturbed_suite(self):
        for _name, g, h in standard_dual_suite(max_matching=3, max_threshold=4):
            if len(h) > 1:
                self._assert_equivalent(g, perturb_drop_edge(h))
                self._assert_equivalent(g, perturb_enlarge_edge(h))

    def test_hard_nondual(self):
        self._assert_equivalent(*hard_nondual_pair(3))

    def test_fuzzed_instances(self):
        from hypothesis import given, settings

        from tests.conftest import nonempty_simple_hypergraphs

        @given(
            nonempty_simple_hypergraphs(max_vertices=5, max_edges=4),
            nonempty_simple_hypergraphs(max_vertices=5, max_edges=4),
        )
        @settings(max_examples=40, deadline=None)
        def run(g, h):
            from repro.errors import NotSimpleError

            try:
                self._assert_equivalent(g, h)
            except NotSimpleError:
                pass  # both paths share prepare_instance; nothing to compare

        run()
