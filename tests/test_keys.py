"""Tests for minimal keys, Prop. 1.2, FDs and Armstrong relations."""

from __future__ import annotations

import pytest

from repro.errors import InvalidInstanceError
from repro.hypergraph import Hypergraph
from repro.keys import (
    FDSchema,
    RelationalInstance,
    agree_sets,
    armstrong_relation,
    decide_additional_key,
    difference_hypergraph,
    enumerate_minimal_keys_incrementally,
    fd,
    is_key,
    is_minimal_key,
    minimal_keys,
    minimal_keys_brute_force,
    satisfied_closure_matches,
    satisfies,
    validate_claimed_keys,
)


@pytest.fixture
def instance() -> RelationalInstance:
    return RelationalInstance(
        [
            {"A": 1, "B": 1, "C": 1, "D": 0},
            {"A": 1, "B": 2, "C": 1, "D": 1},
            {"A": 2, "B": 1, "C": 2, "D": 0},
            {"A": 2, "B": 2, "C": 1, "D": 0},
        ]
    )


class TestRelationalInstance:
    def test_rows_aligned_with_attributes(self, instance):
        assert instance.attributes == ("A", "B", "C", "D")
        assert len(instance) == 4

    def test_mismatched_rows_rejected(self):
        with pytest.raises(InvalidInstanceError):
            RelationalInstance([{"A": 1}, {"B": 2}])

    def test_duplicate_tuples_rejected(self):
        with pytest.raises(InvalidInstanceError):
            RelationalInstance([{"A": 1}, {"A": 1}])

    def test_empty_needs_attributes(self):
        with pytest.raises(InvalidInstanceError):
            RelationalInstance([])
        inst = RelationalInstance([], attributes=("A",))
        assert inst.attributes == ("A",)

    def test_column(self, instance):
        assert instance.column("A") == (1, 1, 2, 2)

    def test_projection_distinguishes(self, instance):
        assert instance.projection_distinguishes({"A", "B"})
        assert not instance.projection_distinguishes({"A"})


class TestKeys:
    def test_difference_hypergraph_is_simple_nonempty_edges(self, instance):
        diff = difference_hypergraph(instance)
        assert diff.is_simple()
        assert all(edge for edge in diff.edges)

    def test_is_key_definition(self, instance):
        assert is_key(instance, {"A", "B"})
        assert not is_key(instance, {"C", "D"})

    def test_minimal_key_definition(self, instance):
        assert is_minimal_key(instance, {"A", "B"})
        assert not is_minimal_key(instance, {"A", "B", "C"})

    def test_transversal_characterisation(self, instance):
        assert minimal_keys(instance) == minimal_keys_brute_force(instance)

    def test_single_row_instance_has_empty_key(self):
        inst = RelationalInstance([{"A": 1, "B": 2}])
        keys = minimal_keys(inst)
        assert set(keys.edges) == {frozenset()}

    def test_every_attribute_distinct_instance(self):
        inst = RelationalInstance(
            [{"A": i, "B": i % 2} for i in range(4)]
        )
        keys = minimal_keys(inst)
        assert set(keys.edges) == {frozenset({"A"})}


class TestAdditionalKey:
    @pytest.mark.parametrize("method", ("bm", "fk-b", "logspace", "transversal"))
    def test_complete_set_recognised(self, instance, method):
        keys = minimal_keys(instance)
        outcome = decide_additional_key(instance, keys, method=method)
        assert not outcome.exists
        assert outcome.new_key is None

    @pytest.mark.parametrize("method", ("bm", "fk-b", "logspace", "transversal"))
    def test_missing_key_found(self, instance, method):
        keys = minimal_keys(instance)
        partial = Hypergraph(
            list(keys.edges)[:-1], vertices=instance.attributes
        )
        outcome = decide_additional_key(instance, partial, method=method)
        assert outcome.exists
        assert outcome.new_key in set(keys.edges)
        assert outcome.new_key not in set(partial.edges)

    def test_claimed_non_key_rejected(self, instance):
        bogus = Hypergraph([{"C"}], vertices=instance.attributes)
        with pytest.raises(InvalidInstanceError):
            decide_additional_key(instance, bogus)

    def test_claimed_non_minimal_key_rejected(self, instance):
        bogus = Hypergraph([{"A", "B", "C"}], vertices=instance.attributes)
        with pytest.raises(InvalidInstanceError):
            validate_claimed_keys(instance, bogus)

    def test_incremental_enumeration(self, instance):
        keys = enumerate_minimal_keys_incrementally(instance)
        assert set(keys) == set(minimal_keys(instance).edges)


class TestFDSchema:
    @pytest.fixture
    def schema(self) -> FDSchema:
        return FDSchema("ABCD", [fd("A", "B"), fd("BC", "D")])

    def test_closure(self, schema):
        assert schema.closure({"A"}) == {"A", "B"}
        assert schema.closure({"A", "C"}) == {"A", "B", "C", "D"}

    def test_implies(self, schema):
        assert schema.implies(fd("AC", "D"))
        assert not schema.implies(fd("B", "A"))

    def test_closed_sets(self, schema):
        closed = schema.closed_sets()
        assert frozenset() in closed
        assert frozenset("ABCD") in closed
        assert frozenset("A") not in closed

    def test_unknown_attribute_rejected(self):
        with pytest.raises(InvalidInstanceError):
            FDSchema("AB", [fd("A", "Z")])

    def test_candidate_keys_match_brute_force(self, schema):
        assert schema.candidate_keys() == schema.candidate_keys_brute_force()

    def test_candidate_keys_trivial_schema(self):
        schema = FDSchema("AB", [fd("", "AB")])
        keys = schema.candidate_keys()
        assert set(keys.edges) == {frozenset()}

    def test_is_superkey(self, schema):
        assert schema.is_superkey({"A", "C"})
        assert not schema.is_superkey({"A", "B"})


class TestArmstrong:
    @pytest.mark.parametrize(
        "attrs, deps",
        [
            ("ABC", [("A", "B")]),
            ("ABCD", [("A", "B"), ("BC", "D")]),
            ("ABC", [("AB", "C"), ("C", "A")]),
            ("AB", []),
        ],
    )
    def test_armstrong_property(self, attrs, deps):
        schema = FDSchema(attrs, [fd(l, r) for l, r in deps])
        relation = armstrong_relation(schema)
        assert satisfied_closure_matches(relation, schema)

    def test_satisfies(self):
        schema = FDSchema("ABC", [fd("A", "B")])
        relation = armstrong_relation(schema)
        assert satisfies(relation, fd("A", "B"))
        assert not satisfies(relation, fd("B", "A"))

    def test_agree_sets_are_closed(self):
        schema = FDSchema("ABCD", [fd("A", "B"), fd("BC", "D")])
        relation = armstrong_relation(schema)
        for agreement in agree_sets(relation):
            assert schema.is_closed(agreement)

    def test_armstrong_keys_match_schema_keys(self):
        schema = FDSchema("ABC", [fd("A", "BC")])
        relation = armstrong_relation(schema)
        assert minimal_keys(relation) == schema.candidate_keys()
