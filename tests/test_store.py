"""Tests for the durable verdict store (:mod:`repro.store`).

The contracts:

* **O(1) durability** — every put is one fsync'd journal append plus a
  WAL insert; nothing ever rewrites the whole store;
* **crash safety by construction** — ``kill -9`` at any instant leaves
  the journal loadable to the last complete line, and a verdict that
  was acknowledged is always recoverable;
* **multi-process sharing** — two processes (or two servers) on one
  store file see each other's verdicts, bit-for-bit;
* **degrade, never block** — a corrupt database or journal is
  quarantined with a warning and costs recomputation, not startup;
* **migration** — a legacy ``cache.json`` at the store path is
  imported automatically, every codec vertex type surviving exactly.

Plus regression tests for the two PR-8 satellite bugfixes: the
``solve_many`` timing-log file-handle leak and the ``ResultCache``
dirty-count inflation on eviction/overwrite.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.duality import decide_duality
from repro.duality.result import (
    Certificate,
    DecisionStats,
    DualityResult,
    Verdict,
)
from repro.hypergraph import instance_key, pair_digest, relabel
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    threshold_dual_pair,
)
from repro.net import DualityServer
from repro.obs.timings import TimingLog
from repro.parallel import ResultCache, solve_many
from repro.parallel.batch import result_to_json
from repro.service import EngineService
from repro.store import VerdictStore

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _solved(pair=None, method="fk-b"):
    g, h = pair if pair is not None else matching_dual_pair(3)
    result = decide_duality(g, h, method=method)
    return instance_key(g, h, method), pair_digest(g, h), result


def _write_instance(path: Path, pair) -> Path:
    g, h = pair
    text = hgio.dumps(g) + "==\n" + hgio.dumps(h)
    path.write_text(text, encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# The store itself
# ---------------------------------------------------------------------------

class TestVerdictStore:
    def test_round_trip_is_bit_for_bit(self, tmp_path):
        store = VerdictStore(tmp_path / "store.db")
        for pair in (
            matching_dual_pair(3),
            threshold_dual_pair(7, 4),
            hard_nondual_pair(3),
        ):
            key, digest, result = _solved(pair)
            assert store.get(key) is None
            assert store.put(key, result, digest=digest)
            replayed = store.get(key)
            assert replayed.verdict == result.verdict
            assert replayed.certificate == result.certificate
            assert replayed.method == result.method
        assert store.hits == 3 and store.misses == 3
        store.close()

    def test_put_appends_get_survives_reopen_compacted(self, tmp_path):
        path = tmp_path / "store.db"
        store = VerdictStore(path)
        key, digest, result = _solved()
        store.put(key, result, digest=digest)
        # The journal grew by exactly one line and nothing rewrote it.
        assert store.journal_bytes() > 0
        journal_after_one = store.journal_bytes()
        k2, d2, r2 = _solved(hard_nondual_pair(3))
        store.put(k2, r2, digest=d2)
        assert store.journal_bytes() > journal_after_one
        store.close()

        reopened = VerdictStore(path)
        assert reopened.journal_bytes() == 0  # open compacts
        assert len(reopened) == 2
        assert reopened.get(key).certificate == result.certificate
        assert reopened.get(k2).certificate == r2.certificate
        reopened.close()

    def test_contains_len_and_stats(self, tmp_path):
        store = VerdictStore(tmp_path / "store.db")
        key, digest, result = _solved()
        assert key not in store and len(store) == 0
        store.put(key, result, digest=digest)
        assert key in store and len(store) == 1
        stats = store.stats()
        assert stats["entries"] == 1 and stats["puts"] == 1
        assert stats["journal_bytes"] > 0
        store.compact()
        assert store.journal_bytes() == 0
        assert len(store) == 1  # compaction drops nothing
        store.close()

    def test_structural_digest_finds_relabelled_twin(self, tmp_path):
        store = VerdictStore(tmp_path / "store.db")
        g, h = matching_dual_pair(3)
        key, digest, result = _solved((g, h))
        store.put(key, result, digest=digest)
        # An order-preserving relabelling of both sides: a different
        # labelled instance (different instance_key) with the same
        # structure (same pair_digest).
        mapping = {v: f"v{v}" for v in g.vertices | h.vertices}
        g2, h2 = relabel(g, mapping), relabel(h, mapping)
        assert instance_key(g2, h2, "fk-b") != key
        assert store.get(instance_key(g2, h2, "fk-b")) is None  # exact: miss
        assert store.get_structural(pair_digest(g2, h2)) is Verdict.DUAL
        assert store.stats()["structural_hits"] == 1
        store.close()

    def test_unencodable_witness_is_refused_not_stored(self, tmp_path):
        store = VerdictStore(tmp_path / "store.db")
        result = DualityResult(
            verdict=Verdict.NOT_DUAL,
            certificate=Certificate(
                kind=None, witness=frozenset({object()}), detail="", path=None
            ),
            stats=DecisionStats(),
            method="test",
        )
        assert store.put("some-key", result) is False
        assert len(store) == 0
        store.close()

    def test_timings_table_records_and_reads_back(self, tmp_path):
        store = VerdictStore(tmp_path / "store.db")
        log = store.timing_log()
        log.record(
            "fk-b", 0.0123, features={"g_edges": 3}, dual=True, trace_id="t1"
        )
        log.record("bm", 0.5, shard=2, role="portfolio")
        assert log.records_written == 2
        rows = store.load_timings()
        assert len(rows) == 2 and store.timings_recorded() == 2
        assert rows[0]["engine"] == "fk-b" and rows[0]["g_edges"] == 3
        assert rows[0]["dual"] is True and rows[0]["trace_id"] == "t1"
        assert rows[1]["shard"] == 2 and rows[1]["role"] == "portfolio"
        assert store.load_timings(engine="bm")[0]["engine"] == "bm"
        log.close()  # no-op: the store owns the connection
        store.close()


# ---------------------------------------------------------------------------
# ResultCache with a durable backend
# ---------------------------------------------------------------------------

class TestCacheBackend:
    def test_write_through_before_visibility(self, tmp_path):
        path = tmp_path / "store.db"
        store = VerdictStore(path)
        cache = ResultCache(backend=store)
        key, digest, result = _solved()
        cache.put(key, result, digest=digest)
        # Durable the instant put returns: a second, independent store
        # handle on the same file already sees the verdict.
        other = VerdictStore(path)
        assert other.get(key).certificate == result.certificate
        other.close()
        # With a backend the whole-file save machinery must never fire.
        assert cache.new_since_save == 0
        store.close()

    def test_memory_miss_falls_through_and_promotes(self, tmp_path):
        path = tmp_path / "store.db"
        key, digest, result = _solved()
        writer = VerdictStore(path)
        writer.put(key, result, digest=digest)
        writer.close()

        store = VerdictStore(path)
        cache = ResultCache(backend=store)
        assert cache.get(key).certificate == result.certificate
        assert cache.hits == 1 and cache.misses == 0
        assert len(cache) == 1  # promoted into the LRU
        backend_hits = store.hits
        assert cache.get(key) is not None
        assert store.hits == backend_hits  # served from memory now
        store.close()

    def test_eviction_loses_nothing_with_a_backend(self, tmp_path):
        store = VerdictStore(tmp_path / "store.db")
        cache = ResultCache(max_entries=1, backend=store)
        key1, d1, r1 = _solved(matching_dual_pair(3))
        key2, d2, r2 = _solved(hard_nondual_pair(3))
        cache.put(key1, r1, digest=d1)
        cache.put(key2, r2, digest=d2)  # evicts key1 from memory
        assert cache.evictions == 1 and len(cache) == 1
        assert cache.get(key1).certificate == r1.certificate  # backend refill
        store.close()


# ---------------------------------------------------------------------------
# Satellite bugfix regressions
# ---------------------------------------------------------------------------

class TestDirtyCountRegression:
    """`new_since_save` must never exceed what a save would write."""

    def test_eviction_of_never_saved_entry_deflates_the_count(self):
        cache = ResultCache(max_entries=2)
        _key, _digest, result = _solved()
        for n in range(3):
            cache.put(f"key-{n}", result)
        # key-0 was evicted before any save: a save writes 2 entries.
        assert len(cache) == 2
        assert cache.new_since_save == 2

    def test_overwrite_does_not_inflate_the_count(self):
        cache = ResultCache()
        _key, _digest, result = _solved()
        cache.put("key", result)
        cache.put("key", result)
        assert cache.new_since_save == 1

    def test_overwrite_after_save_stays_clean(self, tmp_path):
        cache = ResultCache()
        _key, _digest, result = _solved()
        cache.put("key", result)
        cache.save(tmp_path / "cache.json")
        assert cache.new_since_save == 0
        cache.put("key", result)  # the file already holds this verdict
        assert cache.new_since_save == 0

    def test_churning_bounded_cache_stops_triggering_autosaves(self, tmp_path):
        """The original bug: evictions left the counter inflated, so a
        full bounded cache re-saved an unchanged file forever."""
        cache = ResultCache(max_entries=2)
        _key, _digest, result = _solved()
        for n in range(10):
            cache.put(f"key-{n}", result)
        path = tmp_path / "cache.json"
        assert cache.save(path) == 2
        assert cache.new_since_save == 0
        before = path.stat().st_mtime_ns
        # A service autosave loop persists only when new_since_save > 0.
        if cache.new_since_save:
            cache.save(path)
        assert path.stat().st_mtime_ns == before


class TestSolveManyTimingsOwnership:
    """`solve_many(timings=path)` must close the log it opened."""

    def _open_fds_for(self, path: Path) -> list[str]:
        target = str(path)
        out = []
        for fd in os.listdir("/proc/self/fd"):
            try:
                if os.readlink(f"/proc/self/fd/{fd}") == target:
                    out.append(fd)
            except OSError:
                continue
        return out

    def test_path_timings_handle_is_closed(self, tmp_path):
        log_path = tmp_path / "timings.jsonl"
        solve_many([matching_dual_pair(3)], method="fk-b", timings=log_path)
        assert log_path.exists()
        assert self._open_fds_for(log_path) == []  # the leak of PR 7

    def test_path_timings_closed_even_when_solving_raises(self, tmp_path):
        log_path = tmp_path / "timings.jsonl"
        with pytest.raises(ValueError):
            solve_many(
                [matching_dual_pair(2)], method="portfolio",
                cache=ResultCache(), timings=log_path,
            )
        assert self._open_fds_for(log_path) == []

    def test_caller_owned_log_is_left_open(self, tmp_path):
        log = TimingLog(tmp_path / "timings.jsonl")
        solve_many([matching_dual_pair(3)], method="fk-b", timings=log)
        written = log.records_written
        log.record("probe", 0.0)  # still usable: solve_many didn't close it
        assert log.records_written == written + 1
        log.close()


# ---------------------------------------------------------------------------
# Crash safety and corruption
# ---------------------------------------------------------------------------

class TestCrashSafety:
    def test_kill_dash_nine_mid_append_leaves_journal_loadable(self, tmp_path):
        """SIGKILL a process that is appending verdicts in a tight
        loop; the journal must replay to the last complete line and
        every verdict the child reported as flushed must be present."""
        path = tmp_path / "store.db"
        key, digest, result = _solved()
        entry = result_to_json(result)

        script = textwrap.dedent(
            """
            import json, sys
            sys.path.insert(0, sys.argv[2])
            from repro.store import VerdictStore
            entry = json.loads(sys.argv[3])
            store = VerdictStore(sys.argv[1])
            n = 0
            while True:
                store.put_entry(f"key-{n:06d}", entry)
                n += 1
                if n % 25 == 0:
                    print(n, flush=True)  # all n so far are fsynced
            """
        )
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(path), SRC, json.dumps(entry)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            acknowledged = int(child.stdout.readline())
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                line = child.stdout.readline()
                acknowledged = int(line)
                if acknowledged >= 100:
                    break
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.wait()

        store = VerdictStore(path)  # must not raise, must replay
        assert len(store) >= acknowledged
        assert store.get("key-000000") is not None
        assert store.get(f"key-{acknowledged - 1:06d}") is not None
        store.close()

    def test_partial_trailing_line_is_silently_dropped(self, tmp_path):
        path = tmp_path / "store.db"
        store = VerdictStore(path)
        key, digest, result = _solved()
        store.put(key, result, digest=digest)
        store.close()
        # Simulate a crash mid-append: a torn, newline-less tail.
        with open(str(path) + ".journal", "ab") as fh:
            fh.write(b'{"key": "torn-entr')
        reopened = VerdictStore(path)
        assert len(reopened) == 1
        assert reopened.get(key) is not None
        reopened.close()

    def test_malformed_complete_line_warns_and_degrades(self, tmp_path):
        path = tmp_path / "store.db"
        store = VerdictStore(path)
        key, digest, result = _solved()
        store.put(key, result, digest=digest)
        store.close()
        with open(str(path) + ".journal", "ab") as fh:
            fh.write(b"this is not json\n")
            fh.write(b'{"key": "k", "no_entry": true}\n')
        with pytest.warns(RuntimeWarning, match="malformed"):
            reopened = VerdictStore(path)
        assert len(reopened) == 1  # the good verdict survived
        reopened.close()

    def test_corrupt_database_quarantined_with_warning(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_bytes(b"SQLite format 3\x00" + b"\xde\xad\xbe\xef" * 64)
        with pytest.warns(RuntimeWarning, match="corrupt|readable"):
            store = VerdictStore(path)
        assert len(store) == 0  # degrade to misses…
        assert (tmp_path / "store.db.corrupt").exists()  # …evidence kept
        key, digest, result = _solved()
        store.put(key, result, digest=digest)  # …and the store works
        assert store.get(key) is not None
        store.close()

    def test_unparseable_non_sqlite_file_quarantined(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_text('{"truncated": ', encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            store = VerdictStore(path)
        assert len(store) == 0
        assert (tmp_path / "store.db.corrupt").exists()
        store.close()

    def test_corrupt_store_never_blocks_service_startup(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_text("not a database at all", encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            with EngineService(method="fk-b", store=path) as service:
                assert service.solve(*matching_dual_pair(2)).is_dual


# ---------------------------------------------------------------------------
# Legacy cache.json migration
# ---------------------------------------------------------------------------

class TestLegacyImport:
    # Every vertex type of the lossless codec (TestCodec.VALUES).
    VERTEX_VALUES = [
        0,
        -7,
        10**30,
        True,
        False,
        "vertex",
        "",
        "with spaces / unicode ∅",
        None,
        2.5,
        (0, 1),
        ("fresh", 4),
        (0, ("nested", (1, 2))),
        frozenset({1, 2, 3}),
        frozenset({("a", 1), ("b", 2)}),
        (),
        frozenset(),
    ]

    def _legacy_cache(self, path: Path) -> dict[str, DualityResult]:
        cache = ResultCache()
        results = {}
        for n, value in enumerate(self.VERTEX_VALUES):
            result = DualityResult(
                verdict=Verdict.NOT_DUAL,
                certificate=Certificate(
                    kind=None,
                    witness=frozenset({value}),
                    detail=f"entry {n}",
                    path=(n,),
                ),
                stats=DecisionStats(),
                method="fk-b",
            )
            key = f"legacy-{n:03d}"
            cache.put(key, result)
            results[key] = result
        assert cache.save(path) == len(self.VERTEX_VALUES)
        return results

    def test_auto_import_round_trips_every_codec_vertex_type(self, tmp_path):
        path = tmp_path / "cache.json"
        results = self._legacy_cache(path)
        store = VerdictStore(path)  # legacy JSON at the store path
        assert store.imported == len(results)
        assert (tmp_path / "cache.json.legacy").exists()  # original kept
        for key, original in results.items():
            replayed = store.get(key)
            assert replayed.certificate == original.certificate
            assert replayed.certificate.witness == original.certificate.witness
            for a, b in zip(
                sorted(replayed.certificate.witness, key=repr),
                sorted(original.certificate.witness, key=repr),
            ):
                assert type(a) is type(b)  # the codec preserved types
        store.close()
        # The path is a real SQLite store now: reopening imports nothing.
        again = VerdictStore(path)
        assert again.imported == 0 and len(again) == len(results)
        again.close()

    def test_explicit_import_via_api_and_cli(self, tmp_path, capsys):
        from repro.cli import main

        legacy = tmp_path / "old-cache.json"
        results = self._legacy_cache(legacy)
        db = tmp_path / "store.db"
        status = main(["store", "import", str(db), str(legacy)])
        out = json.loads(capsys.readouterr().out)
        assert status == 0
        assert out["imported"] == len(results)
        assert out["entries"] == len(results)
        status = main(["store", "stats", str(db)])
        stats = json.loads(capsys.readouterr().out)
        assert status == 0 and stats["entries"] == len(results)


# ---------------------------------------------------------------------------
# Two processes, one store
# ---------------------------------------------------------------------------

class TestMultiProcessSharing:
    def test_writer_process_verdicts_visible_here(self, tmp_path):
        path = tmp_path / "store.db"
        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[2])
            from repro.hypergraph import instance_key, pair_digest
            from repro.hypergraph.generators import matching_dual_pair
            from repro.duality import decide_duality
            from repro.store import VerdictStore
            g, h = matching_dual_pair(3)
            result = decide_duality(g, h, method="fk-b")
            store = VerdictStore(sys.argv[1])
            store.put(
                instance_key(g, h, "fk-b"), result, digest=pair_digest(g, h)
            )
            store.close()
            print("done", flush=True)
            """
        )
        done = subprocess.run(
            [sys.executable, "-c", script, str(path), SRC],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert done.stdout.strip() == "done", done.stderr
        key, digest, expected = _solved()
        store = VerdictStore(path)
        replayed = store.get(key)
        assert replayed is not None
        assert replayed.certificate == expected.certificate
        assert store.get_structural(digest) is Verdict.DUAL
        store.close()

    def test_two_servers_share_one_store(self, tmp_path):
        """The ISSUE acceptance shape: a verdict computed through one
        server is a cache hit on a second server sharing the store."""
        from repro.net import DualityClient

        path = tmp_path / "store.db"
        g, h = matching_dual_pair(3)
        with DualityServer(store=path) as one:
            with DualityClient(*one.address) as client:
                first = client.solve(g, h)
                assert first["cached"] is False
            # Concurrently open second server, same store file.
            with DualityServer(store=path) as two:
                with DualityClient(*two.address) as client:
                    second = client.solve(g, h)
        assert second["cached"] is True
        assert second["origin"] == "cache"
        for field in ("verdict", "method", "kind", "witness", "path"):
            assert second[field] == first[field]


# ---------------------------------------------------------------------------
# Service and server in store mode
# ---------------------------------------------------------------------------

class TestServiceStoreMode:
    def test_verdicts_survive_service_sessions(self, tmp_path):
        path = tmp_path / "store.db"
        g, h = matching_dual_pair(3)
        with EngineService(method="fk-b", store=path) as service:
            first = service.solve(g, h)
            assert first.cached is False
            stats = service.stats()
            assert stats["store"]["entries"] == 1
            assert stats["timings_recorded"] == 1  # timings default in
        with EngineService(method="fk-b", store=path) as service:
            second = service.solve(g, h)
        assert second.cached is True and second.origin == "cache"
        assert second.result.certificate == first.result.certificate

    def test_structural_index_is_populated(self, tmp_path):
        path = tmp_path / "store.db"
        g, h = matching_dual_pair(3)
        with EngineService(method="fk-b", store=path) as service:
            service.solve(g, h)
        store = VerdictStore(path)
        assert store.get_structural(pair_digest(g, h)) is Verdict.DUAL
        assert store.timings_recorded() >= 1
        store.close()

    def test_store_and_cache_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            EngineService(
                store=tmp_path / "s.db", cache=tmp_path / "c.json"
            )
        with pytest.raises(ValueError, match="not both"):
            DualityServer(store=tmp_path / "s.db", cache=tmp_path / "c.json")

    def test_portfolio_refuses_a_store(self, tmp_path):
        with pytest.raises(ValueError, match="portfolio"):
            EngineService(method="portfolio", store=tmp_path / "s.db")

    def test_persist_is_a_noop_in_store_mode(self, tmp_path):
        with EngineService(method="fk-b", store=tmp_path / "s.db") as service:
            service.solve(*matching_dual_pair(2))
            assert service.cache.new_since_save == 0
            assert service.persist() == 0  # nothing for the old path to do


class TestClientSideStore:
    def test_client_write_back_then_local_answer(self, tmp_path, capsys):
        from repro.cli import main

        instance = _write_instance(
            tmp_path / "inst.hg", matching_dual_pair(3)
        )
        db = tmp_path / "client-store.db"
        with DualityServer() as server:
            address = "%s:%d" % server.address
            argv = [
                "client", address, str(instance),
                "--store", str(db), "--method", "fk-b",
            ]
            assert main(argv) == 0
            first = json.loads(capsys.readouterr().out.strip())
            assert first["origin"] == "computed"
            # Second run: answered from the local store, no round trip.
            assert main(argv) == 0
            second = json.loads(capsys.readouterr().out.strip())
        assert second["origin"] == "store-local"
        assert second["cached"] is True
        for field in ("key", "verdict", "method", "kind", "witness", "path"):
            assert second[field] == first[field]
