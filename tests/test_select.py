"""Learned engine selection: model, selector, cost planner, satellites.

Covers the ``repro.select`` package end to end:

* feature vectorization and the deterministic logistic fit;
* artifact serialization round trips (and version/format guards);
* ``method="auto"`` conformance — predicted, reduced-race, and
  cold-start paths all return some serial engine's own result;
* the embedded :class:`CostModel` plugged into the shard planner via
  ``cost_fn=`` stays bit-for-bit with serial solving;
* the cache refusals (``solve_many`` / :class:`EngineService`);
* the warm-pool portfolio race mode;
* the ``repro model fit|show|eval`` CLI and the ``repro store stats``
  per-engine timing counters.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.duality import decide_duality
from repro.hypergraph import (
    Hypergraph,
    mask_payload,
    transversal_hypergraph,
)
from repro.obs.timings import TimingLog, load_timings, structural_features
from repro.select import (
    MODEL_ENV,
    VECTOR_NAMES,
    ColdStartWarning,
    CostModel,
    EngineModel,
    ModelDataError,
    cross_validate,
    default_model,
    fit_cost_model,
    fit_engine_model,
    reset_default_model,
    set_default_model,
    shard_cost_fn,
    training_groups,
    vectorize,
)


@pytest.fixture(autouse=True)
def _clean_default_model(monkeypatch):
    """Each test starts cold: no env model, no memoised default."""
    monkeypatch.delenv(MODEL_ENV, raising=False)
    reset_default_model()
    yield
    reset_default_model()


def _pair(n: int = 3):
    g = Hypergraph([{j, j + 1} for j in range(1, n + 1)])
    return g, transversal_hypergraph(g)


def _features(g, h, **kwargs):
    return structural_features(mask_payload(g), mask_payload(h), **kwargs)


def _synthetic_rows(n_groups: int = 12):
    """Separable training rows: ``fk-b`` wins small, ``bm`` wins large."""
    rows = []
    for i in range(n_groups):
        g, h = _pair(2 + i)
        feats = _features(g, h)
        fast = "fk-b" if i < n_groups // 2 else "bm"
        slow = "bm" if fast == "fk-b" else "fk-b"
        rows.append({"engine": fast, "elapsed_s": 0.001, **feats})
        rows.append({"engine": slow, "elapsed_s": 0.05, **feats})
    return rows


@pytest.fixture(scope="module")
def trained():
    return fit_engine_model(_synthetic_rows())


# ---------------------------------------------------------------------------
# Features and fitting
# ---------------------------------------------------------------------------


def test_vectorize_shape_and_determinism():
    g, h = _pair(4)
    feats = _features(g, h)
    vec = vectorize(feats)
    assert len(vec) == len(VECTOR_NAMES)
    assert vec == vectorize(dict(feats))
    # Missing features default to zero rather than raising.
    assert len(vectorize({})) == len(VECTOR_NAMES)


def test_deep_features_are_opt_in():
    g, h = _pair(4)
    shallow = _features(g, h)
    deep = _features(g, h, deep=True)
    assert "bm_branches" not in shallow
    assert deep["bm_branches"] >= 0
    for name in ("bm_max_child_volume", "bm_mean_child_volume", "bm_depth_est"):
        assert name in deep
    # The shallow prefix is unchanged by the deep probe.
    assert {k: deep[k] for k in shallow} == shallow


def test_training_groups_label_winners():
    rows = _synthetic_rows(6)
    groups = training_groups(rows)
    assert len(groups) == 6
    assert all(len(g.timings) == 2 for g in groups)
    assert {g.winner for g in groups} == {"fk-b", "bm"}


def test_training_rows_exclude_meta_engines():
    rows = _synthetic_rows(6)
    g, h = _pair(3)
    rows.append({"engine": "portfolio", "elapsed_s": 0.9, **_features(g, h)})
    rows.append({"engine": "auto", "elapsed_s": 0.9, **_features(g, h)})
    assert all(
        engine not in ("portfolio", "auto")
        for group in training_groups(rows)
        for engine in group.timings
    )


def test_fit_is_separable_and_deterministic(trained):
    assert trained.trained
    assert trained.meta["train_accuracy"] == 1.0
    small = _features(*_pair(2))
    large = _features(*_pair(13))
    assert trained.predict(small)[0] == "fk-b"
    assert trained.predict(large)[0] == "bm"
    again = fit_engine_model(_synthetic_rows())
    assert again.to_json() == trained.to_json()


def test_fit_under_trained_raises():
    with pytest.raises(ModelDataError):
        fit_engine_model(_synthetic_rows(2))
    with pytest.raises(ModelDataError):
        fit_engine_model([])


def test_cross_validate_reports_regret():
    report = cross_validate(_synthetic_rows())
    assert report["evaluated"] > 0
    assert 0.0 <= report["accuracy"] <= 1.0
    assert report["mean_regret_s"] >= 0.0


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def test_artifact_round_trip(tmp_path, trained):
    path = tmp_path / "model.json"
    trained.save(path)
    loaded = EngineModel.load(path)
    assert loaded.to_json() == trained.to_json()
    feats = _features(*_pair(4))
    assert loaded.rank(feats) == trained.rank(feats)


def test_artifact_guards(trained):
    with pytest.raises(ValueError, match="not a"):
        EngineModel.from_json({"format": "something-else"})
    payload = trained.to_json()
    payload["version"] = 999
    with pytest.raises(ValueError, match="version"):
        EngineModel.from_json(payload)
    payload = trained.to_json()
    payload["vector_names"] = ["bogus"]
    with pytest.raises(ValueError, match="feature vector"):
        EngineModel.from_json(payload)


def test_cost_model_round_trips_inside_artifact(tmp_path, trained):
    assert trained.cost is not None
    path = tmp_path / "model.json"
    trained.save(path)
    loaded = EngineModel.load(path)
    feats = _features(*_pair(5))
    assert loaded.cost.predict_seconds(feats) == pytest.approx(
        trained.cost.predict_seconds(feats)
    )


# ---------------------------------------------------------------------------
# method="auto" paths
# ---------------------------------------------------------------------------


def test_auto_cold_start_degrades_to_portfolio():
    g, h = _pair(3)
    serial = decide_duality(g, h)
    with pytest.warns(ColdStartWarning):
        result = decide_duality(g, h, method="auto")
    auto = result.stats.extra["auto"]
    assert auto["mode"] == "cold-start"
    assert result.verdict == serial.verdict
    # The sequential full race timed every engine.
    assert all(t is not None for t in auto["timings_s"].values())


def test_auto_predicted_path_is_the_engines_serial_result(trained):
    g, h = _pair(2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any ColdStartWarning is a bug here
        result = decide_duality(g, h, method="auto", model=trained)
    auto = result.stats.extra["auto"]
    assert auto["mode"] == "predicted"
    assert auto["engines"] == [auto["engine"]]
    serial = decide_duality(g, h, method=auto["engine"])
    assert result.verdict == serial.verdict
    assert result.certificate == serial.certificate
    assert result.method == serial.method


def test_auto_low_confidence_runs_reduced_race(trained):
    g, h = _pair(3)
    result = decide_duality(
        g, h, method="auto", model=trained, confidence=1.5
    )
    auto = result.stats.extra["auto"]
    assert auto["mode"] == "reduced-race"
    assert len(auto["engines"]) == 2
    serial = decide_duality(g, h, method=auto["engine"])
    assert result.verdict == serial.verdict
    assert result.certificate == serial.certificate


def test_auto_records_role_tagged_timings(tmp_path, trained):
    log_path = tmp_path / "timings.jsonl"
    g, h = _pair(3)
    with TimingLog(log_path) as log:
        decide_duality(
            g, h, method="auto", model=trained, confidence=1.5, timings=log
        )
    rows = load_timings(log_path)
    assert rows and all(row["role"] == "auto" for row in rows)
    assert {row["engine"] for row in rows} <= set(trained.engines)
    assert all(row["winner"] in trained.engines for row in rows)


def test_auto_model_resolves_from_environment(tmp_path, monkeypatch, trained):
    path = tmp_path / "model.json"
    trained.save(path)
    monkeypatch.setenv(MODEL_ENV, str(path))
    reset_default_model()
    assert default_model() is not None
    g, h = _pair(2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = decide_duality(g, h, method="auto")
    assert result.stats.extra["auto"]["mode"] in ("predicted", "reduced-race")


def test_unreadable_env_model_degrades_to_cold_start(tmp_path, monkeypatch):
    monkeypatch.setenv(MODEL_ENV, str(tmp_path / "missing.json"))
    reset_default_model()
    with pytest.warns(ColdStartWarning):
        assert default_model() is None


def test_set_default_model_accepts_objects_and_paths(tmp_path, trained):
    set_default_model(trained)
    assert default_model() is trained
    path = tmp_path / "model.json"
    trained.save(path)
    set_default_model(path)
    assert default_model().to_json() == trained.to_json()
    set_default_model(None)
    assert default_model() is None


def test_auto_is_a_listed_method():
    from repro.duality.engine import available_methods

    assert "auto" in available_methods()
    with pytest.raises(ValueError, match="auto"):
        decide_duality(*_pair(2), method="autoo")


# ---------------------------------------------------------------------------
# Caching refusals
# ---------------------------------------------------------------------------


def test_solve_many_refuses_to_cache_auto(tmp_path):
    from repro.parallel import ResultCache, solve_many

    g, h = _pair(2)
    with pytest.raises(ValueError, match="auto"):
        solve_many([(g, h)], method="auto", cache=ResultCache())


def test_engine_service_refuses_auto_caching(tmp_path):
    from repro.parallel import ResultCache
    from repro.service import EngineService

    with pytest.raises(ValueError, match="auto"):
        EngineService(method="auto", store=tmp_path / "store.db")
    with pytest.raises(ValueError, match="auto"):
        EngineService(method="auto", cache=ResultCache())


def test_engine_service_auto_solves_and_records(tmp_path, trained):
    from repro.service import EngineService

    set_default_model(trained)
    g, h = _pair(3)
    log_path = tmp_path / "timings.jsonl"
    with TimingLog(log_path) as log, EngineService(
        method="auto", n_jobs=1, timings=log
    ) as service:
        response = service.submit((g, h)).result()
    assert response.is_dual == decide_duality(g, h).is_dual
    rows = load_timings(log_path)
    # One overall engine="auto" summary row plus role-tagged per-engine
    # rows for whichever engines the selector actually ran.
    summary = [row for row in rows if row["engine"] == "auto"]
    role_rows = [row for row in rows if row.get("role") == "auto"]
    assert len(summary) == 1
    assert role_rows
    assert all(row["engine"] != "auto" for row in role_rows)


# ---------------------------------------------------------------------------
# Cost-model shard planning
# ---------------------------------------------------------------------------


def test_cost_model_fit_and_positive_predictions():
    rows = _synthetic_rows()
    cost = fit_cost_model(rows)
    assert cost.predict_seconds(_features(*_pair(4))) >= 0.0
    clone = CostModel.from_json(cost.to_json())
    assert clone.predict_seconds(_features(*_pair(4))) == pytest.approx(
        cost.predict_seconds(_features(*_pair(4)))
    )
    with pytest.raises(ModelDataError):
        fit_cost_model([])


def test_learned_cost_fn_keeps_plans_bit_for_bit(trained):
    from repro.parallel import plan_bm, plan_logspace, solve_shards

    cost_fn = shard_cost_fn(trained.cost)
    for n in (5, 8):
        g, h = _pair(n)
        for engine, plan_fn in (("bm", plan_bm), ("logspace", plan_logspace)):
            serial = decide_duality(g, h, method=engine)
            plan = plan_fn(g, h, target_shards=4, cost_fn=cost_fn)
            merged = solve_shards(plan, 1)
            assert merged.verdict == serial.verdict, (engine, n)
            assert merged.certificate == serial.certificate, (engine, n)
            assert merged.stats.nodes == serial.stats.nodes, (engine, n)


def test_cost_fn_facade_validation(trained):
    g, h = _pair(3)
    cost_fn = shard_cost_fn(trained.cost)
    with pytest.raises(ValueError, match="cost_fn"):
        decide_duality(g, h, method="fk-b", n_jobs=2, cost_fn=cost_fn)
    with pytest.raises(ValueError, match="cost_fn"):
        decide_duality(g, h, method="bm", cost_fn=cost_fn)


def test_shard_cost_fn_min_cost_gate(trained):
    gated = shard_cost_fn(trained.cost, min_cost=0.25)
    assert gated.min_cost == 0.25
    assert shard_cost_fn(trained.cost).min_cost == 0.0


# ---------------------------------------------------------------------------
# Warm-pool portfolio race (satellite a)
# ---------------------------------------------------------------------------


def test_portfolio_pool_race_mode():
    from repro.service import EnginePool

    g, h = _pair(4)
    serial = decide_duality(g, h)
    from repro.parallel.portfolio import race_portfolio

    with EnginePool(2) as pool:
        result = race_portfolio(
            g, h, engines=("fk-b", "bm"), n_jobs=2, pool=pool
        )
        race = result.stats.extra["portfolio"]
        assert race["mode"] == "pool-race"
        assert result.verdict == serial.verdict
        # n_jobs=1 still forces the deterministic sequential fallback.
        sequential = race_portfolio(
            g, h, engines=("fk-b", "bm"), n_jobs=1, pool=pool
        )
        assert sequential.stats.extra["portfolio"]["mode"] == "sequential"
        assert sequential.verdict == serial.verdict


def test_portfolio_rejects_meta_engines():
    from repro.parallel.portfolio import race_portfolio

    g, h = _pair(2)
    for meta in ("portfolio", "auto"):
        with pytest.raises(ValueError, match="unknown portfolio engine"):
            race_portfolio(g, h, engines=(meta,))


def test_auto_race_fallback_reuses_pool(trained):
    from repro.service import EnginePool

    g, h = _pair(3)
    with EnginePool(2) as pool:
        result = decide_duality(
            g,
            h,
            method="auto",
            model=trained,
            confidence=1.5,
            n_jobs=2,
            pool=pool,
        )
    auto = result.stats.extra["auto"]
    assert auto["mode"] == "reduced-race"
    assert result.stats.extra["portfolio"]["mode"] == "pool-race"
    assert result.verdict == decide_duality(g, h).verdict


# ---------------------------------------------------------------------------
# Store stats satellite
# ---------------------------------------------------------------------------


def test_store_stats_report_timing_rows_per_engine(tmp_path):
    from repro.store import VerdictStore

    store = VerdictStore(tmp_path / "store.db")
    try:
        feats = _features(*_pair(3))
        store.record_timing("fk-b", 0.01, features=feats, dual=True)
        store.record_timing("fk-b", 0.02, features=feats, dual=True)
        store.record_timing("bm", 0.03, dual=True)
        stats = store.stats()
        assert stats["timings_by_engine"] == {"bm": 1, "fk-b": 2}
        assert stats["feature_coverage"] == round(2 / 3, 4)
    finally:
        store.close()


def test_store_stats_empty_feature_coverage(tmp_path):
    from repro.store import VerdictStore

    store = VerdictStore(tmp_path / "store.db")
    try:
        stats = store.stats()
        assert stats["timings_by_engine"] == {}
        assert stats["feature_coverage"] is None
    finally:
        store.close()


# ---------------------------------------------------------------------------
# CLI: repro model fit | show | eval, batch --timings corpus growth
# ---------------------------------------------------------------------------


@pytest.fixture
def timings_file(tmp_path):
    path = tmp_path / "timings.jsonl"
    with TimingLog(path) as log:
        for row in _synthetic_rows():
            engine = row.pop("engine")
            elapsed = row.pop("elapsed_s")
            log.record(engine, elapsed, features=row, dual=True)
    return path


def test_model_cli_fit_show_eval(tmp_path, timings_file, capsys):
    from repro.cli import main

    out_path = tmp_path / "model.json"
    assert (
        main(
            [
                "model",
                "fit",
                "--timings",
                str(timings_file),
                "--out",
                str(out_path),
            ]
        )
        == 0
    )
    summary = json.loads(capsys.readouterr().out)
    assert summary["engines"] == ["bm", "fk-b"]
    assert summary["cost_model"] is True

    assert main(["model", "show", str(out_path)]) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["engines"] == ["bm", "fk-b"]
    assert set(shown["top_weights"]) == {"bm", "fk-b"}

    assert main(["model", "eval", "--timings", str(timings_file)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["evaluated"] > 0

    loaded = EngineModel.load(out_path)
    assert loaded.trained


def test_model_cli_fit_without_rows_exits(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="no timing rows"):
        main(["model", "fit", "--out", str(tmp_path / "m.json")])


def test_model_cli_fit_from_store(tmp_path, capsys):
    from repro.cli import main
    from repro.store import VerdictStore

    store_path = tmp_path / "store.db"
    store = VerdictStore(store_path)
    try:
        for row in _synthetic_rows():
            engine = row.pop("engine")
            elapsed = row.pop("elapsed_s")
            store.record_timing(engine, elapsed, features=row, dual=True)
    finally:
        store.close()
    out_path = tmp_path / "model.json"
    assert (
        main(
            ["model", "fit", "--store", str(store_path), "--out", str(out_path)]
        )
        == 0
    )
    assert json.loads(capsys.readouterr().out)["engines"] == ["bm", "fk-b"]


def test_batch_portfolio_grows_training_corpus(tmp_path):
    """A sequential portfolio sweep records one row per racer —
    the documented way to bootstrap a training corpus."""
    from repro.hypergraph import io as hgio
    from repro.parallel import solve_many

    paths = []
    for i in range(3):
        g, h = _pair(3 + i)
        path = tmp_path / f"inst{i}.hg"
        hgio.dump_many((g, h), path)
        paths.append(path)
    log_path = tmp_path / "timings.jsonl"
    solve_many(paths, method="portfolio", timings=log_path)
    rows = load_timings(log_path)
    racers = [row for row in rows if row.get("role") == "portfolio"]
    # 4 racers per instance, plus the one overall portfolio row each.
    assert len(racers) == 12
    assert len(rows) == 15
    assert all("n_vertices" in row for row in racers)
    groups = training_groups(rows)
    assert all(len(group.timings) == 4 for group in groups)


def test_serve_cli_refuses_auto_with_store(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="cannot verdict-cache"):
        main(
            [
                "serve",
                "--auto",
                "--store",
                str(tmp_path / "s.db"),
                str(tmp_path / "missing.hg"),
            ]
        )
