"""Tests for the persistent engine service (:mod:`repro.service`).

Three contracts:

* **lifecycle** — the :class:`EnginePool` spawns workers once and keeps
  them warm across batches; drain leaves it usable, shutdown is
  idempotent, submits after shutdown fail loudly, and a worker dying
  mid-batch is recovered without losing or corrupting answers;
* **service semantics** — :class:`EngineService` answers in submission
  order with verdicts and certificates identical to serial
  ``decide_duality`` calls, and its cache sits in *front* of the pool
  (hits never reach a worker, and persist across sessions);
* **lossless persistence** — the tagged codec round-trips every vertex
  type the library constructs, tuples included.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.duality import decide_duality
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    disjoint_union_pair,
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    threshold_dual_pair,
)
from repro.parallel import (
    CodecError,
    ResultCache,
    decide_duality_parallel,
    decode_value,
    encode_value,
    solve_many,
)
from repro.service import EnginePool, EngineService, PoolClosedError, response_to_json


def _double(x):
    """Module-level (picklable) work function."""
    return 2 * x


def _die_unless_flagged(arg):
    """Kill the hosting worker once, then behave (module-level).

    ``arg`` is ``(flag_path, value)``.  The first worker to run this
    creates the flag and dies abruptly (``os._exit`` — no exception, no
    cleanup, exactly what a segfault or OOM kill looks like to the
    parent).  Retries see the flag and succeed.
    """
    flag, value = arg
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as handle:
            handle.write("died")
        os._exit(13)
    return 2 * value


# ---------------------------------------------------------------------------
# EnginePool lifecycle
# ---------------------------------------------------------------------------

class TestEnginePoolLifecycle:
    def test_in_process_map(self):
        with EnginePool(1) as pool:
            assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert pool.generations == 1

    def test_submit_then_drain_in_submission_order(self):
        with EnginePool(1) as pool:
            tickets = [pool.submit(_double, n) for n in (5, 6, 7)]
            results = pool.drain()
            assert [results[t] for t in tickets] == [10, 12, 14]

    def test_submit_after_drain_keeps_working(self):
        with EnginePool(1) as pool:
            pool.submit(_double, 1)
            assert list(pool.drain().values()) == [2]
            # drain leaves the pool warm — this must not raise.
            ticket = pool.submit(_double, 21)
            assert pool.drain()[ticket] == 42
            assert pool.generations == 1

    def test_double_shutdown_is_a_noop(self):
        pool = EnginePool(1).start()
        pool.shutdown()
        pool.shutdown()  # must not raise
        assert pool.closed

    def test_submit_after_shutdown_raises(self):
        pool = EnginePool(1).start()
        pool.shutdown()
        with pytest.raises(PoolClosedError, match="shut down"):
            pool.submit(_double, 1)
        with pytest.raises(PoolClosedError):
            pool.start()

    def test_start_is_idempotent(self):
        pool = EnginePool(2)
        try:
            pool.start()
            pool.start()
            assert pool.generations == 1
        finally:
            pool.shutdown()

    def test_workers_stay_warm_across_batches(self):
        with EnginePool(2) as pool:
            seen: set[int] = set()
            for batch in range(5):
                assert pool.map(_double, list(range(8))) == [
                    2 * n for n in range(8)
                ]
                seen |= pool.worker_pids()
            assert os.getpid() not in seen  # real subprocesses
            # One generation creates at most n_jobs worker processes,
            # ever.  A pool that respawned per batch would have minted
            # fresh pids each time (5 batches × 2 workers > 2).
            assert len(seen) <= pool.n_jobs
            assert pool.generations == 1

    def test_worker_death_mid_batch_recovers(self, tmp_path):
        flag = str(tmp_path / "died.flag")
        with EnginePool(2) as pool:
            results = pool.map(
                _die_unless_flagged, [(flag, n) for n in range(6)]
            )
            assert results == [2 * n for n in range(6)]
            assert pool.restarts >= 1
            assert pool.generations == pool.restarts + 1
        assert os.path.exists(flag)

    def test_worker_error_propagates_without_breaking_the_pool(self):
        with EnginePool(1) as pool:
            pool.submit(_double, 1)
            pool.submit(len, 3)  # TypeError: int has no len()
            with pytest.raises(TypeError):
                pool.drain()
            # The failed batch is fully cleared — no stale tickets to
            # re-raise or leak into later drains (regression: a task
            # exception used to poison every subsequent drain).
            assert pool.drain() == {}
            assert pool.map(_double, [4]) == [8]

    def test_failed_map_does_not_poison_later_batches(self):
        with EnginePool(1) as pool:
            with pytest.raises(TypeError):
                pool.map(len, [1, 2, 3])
            assert pool.drain() == {}
            ticket = pool.submit(_double, 5)
            assert pool.drain() == {ticket: 10}


# ---------------------------------------------------------------------------
# Pool reuse by the parallel subsystem
# ---------------------------------------------------------------------------

class TestPoolReuse:
    def test_solve_many_spawns_workers_once_across_batches(self):
        pairs_a = [matching_dual_pair(3), threshold_dual_pair(7, 4)]
        pairs_b = [hard_nondual_pair(3), matching_dual_pair(2)]
        with EnginePool(2) as pool:
            seen = set(pool.worker_pids())
            items_a = solve_many(pairs_a, method="fk-b", pool=pool)
            items_b = solve_many(pairs_b, method="fk-b", pool=pool)
            seen |= pool.worker_pids()
            assert pool.generations == 1  # spawned exactly once…
            assert len(seen) <= pool.n_jobs  # …no fresh processes per batch
        for (g, h), item in zip(pairs_a + pairs_b, items_a + items_b):
            reference = decide_duality(g, h, method="fk-b")
            assert item.result.verdict == reference.verdict
            assert item.result.certificate == reference.certificate

    def test_sharded_solving_through_persistent_pool(self):
        g, h = threshold_dual_pair(9, 5)
        with EnginePool(2) as pool:
            for method in ("fk-b", "bm", "logspace"):
                reference = decide_duality(g, h, method=method)
                sharded = decide_duality_parallel(g, h, method=method, pool=pool)
                assert sharded.verdict == reference.verdict, method
                assert sharded.certificate == reference.certificate, method
            assert pool.generations == 1


# ---------------------------------------------------------------------------
# EngineService
# ---------------------------------------------------------------------------

class TestEngineService:
    def _instances(self):
        return [
            matching_dual_pair(3),
            threshold_dual_pair(7, 4),
            hard_nondual_pair(3),
        ]

    def test_responses_in_submission_order_and_serial_identical(self):
        with EngineService(method="bm") as service:
            ids = [service.submit(pair) for pair in self._instances()]
            responses = service.drain()
        assert [r.request_id for r in responses] == ids
        for (g, h), response in zip(self._instances(), responses):
            reference = decide_duality(g, h, method="bm")
            assert response.result.verdict == reference.verdict
            assert response.result.certificate == reference.certificate

    def test_cache_sits_in_front_of_the_pool(self):
        cache = ResultCache()
        with EngineService(method="fk-b", cache=cache) as service:
            for pair in self._instances():
                service.submit(pair)
            service.drain()
            solved_after_first = service.pool.tasks_completed
            for pair in self._instances():
                service.submit(pair)
            second = service.drain()
        assert all(r.cached for r in second)
        # Hits never reached a worker.
        assert service.pool.tasks_completed == solved_after_first
        assert cache.hits == len(self._instances())

    def test_cache_hits_across_two_service_sessions(self, tmp_path):
        cache_path = tmp_path / "service-cache.json"
        with EngineService(method="fk-b", cache=cache_path) as first:
            for pair in self._instances():
                first.submit(pair)
            originals = first.drain()
        assert cache_path.exists()

        with EngineService(method="fk-b", cache=cache_path) as second:
            for pair in self._instances():
                second.submit(pair)
            replayed = second.drain()
            assert second.pool.tasks_completed == 0  # everything from cache
        for original, replay in zip(originals, replayed):
            assert replay.cached
            assert replay.result.verdict == original.result.verdict
            assert replay.result.certificate == original.result.certificate

    def test_solve_and_solve_file(self, tmp_path):
        g, h = matching_dual_pair(2)
        path = tmp_path / "m2.hg"
        hgio.dump_many([g, h], path)
        with EngineService() as service:
            assert service.solve(g, h).is_dual
            response = service.solve_file(path)
            assert response.is_dual and response.source == str(path)

    def test_solve_refuses_to_discard_queued_requests(self):
        with EngineService(method="bm") as service:
            queued = service.submit(matching_dual_pair(3))
            with pytest.raises(ValueError, match="already queued"):
                service.solve(*matching_dual_pair(2))
            # The queued request is still answerable afterwards.
            (response,) = service.drain()
            assert response.request_id == queued and response.is_dual

    def test_bad_path_fails_its_own_submit_not_the_drain(self, tmp_path):
        g, h = matching_dual_pair(2)
        good = tmp_path / "good.hg"
        hgio.dump_many([g, h], good)
        with EngineService(method="bm") as service:
            service.submit(good)
            with pytest.raises(FileNotFoundError):
                service.submit(tmp_path / "missing.hg")
            # The good request drains normally despite the bad submit.
            (response,) = service.drain()
            assert response.is_dual

    def test_submit_after_close_raises(self):
        service = EngineService()
        service.close()
        service.close()  # idempotent
        with pytest.raises(PoolClosedError, match="closed"):
            service.submit(matching_dual_pair(2))
        with pytest.raises(PoolClosedError):
            service.drain()

    def test_borrowed_pool_survives_service_close(self):
        with EnginePool(1) as pool:
            service = EngineService(pool=pool)
            service.submit(matching_dual_pair(2))
            service.drain()
            service.close()
            assert not pool.closed
            assert pool.map(_double, [1]) == [2]

    def test_stats_snapshot(self):
        with EngineService(method="bm", cache=ResultCache()) as service:
            service.submit(matching_dual_pair(2))
            service.drain()
            stats = service.stats()
        assert stats["requests"] == 1
        assert stats["pool_generations"] == 1
        assert stats["cache_misses"] == 1

    def test_response_to_json_is_json_serialisable(self):
        with EngineService(method="bm") as service:
            ok = service.solve(*matching_dual_pair(2))
            bad = service.solve(*hard_nondual_pair(3))
        for response in (ok, bad):
            line = json.dumps(response_to_json(response))
            decoded = json.loads(line)
            assert decoded["dual"] == response.is_dual
        assert json.loads(json.dumps(response_to_json(bad)))["witness"]


# ---------------------------------------------------------------------------
# The serve CLI
# ---------------------------------------------------------------------------

class TestServeCommand:
    @pytest.fixture
    def instance_files(self, tmp_path):
        files = []
        for name, pair in (
            ("dual-m3", matching_dual_pair(3)),
            ("broken", hard_nondual_pair(3)),
        ):
            path = tmp_path / f"{name}.hg"
            hgio.dump_many(pair, path)
            files.append(path)
        return files

    def test_serve_files_streams_json_verdicts(self, instance_files, capsys):
        status = main(["serve", *map(str, instance_files)])
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert status == 1  # one instance is not dual
        assert [line["dual"] for line in lines] == [True, False]
        assert lines[1]["witness"] is not None

    def test_serve_stdin_streams_and_caches(
        self, instance_files, tmp_path, capsys, monkeypatch
    ):
        import io

        cache = tmp_path / "cache.json"
        stdin_lines = f"{instance_files[0]}\n# comment\n{instance_files[0]}\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_lines))
        status = main(["serve", "--cache", str(cache), "--stats"])
        out = capsys.readouterr().out.strip().splitlines()
        assert status == 0
        verdicts = [json.loads(line) for line in out[:-1]]
        assert [v["cached"] for v in verdicts] == [False, True]
        stats = json.loads(out[-1])["stats"]
        assert stats["cache_hits"] == 1
        assert cache.exists()

    def test_serve_survives_a_bad_path_on_stdin(
        self, instance_files, capsys, monkeypatch
    ):
        import io

        stdin_lines = f"missing-file.hg\n{instance_files[0]}\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_lines))
        status = main(["serve"])
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert status == 1  # the bad path is reported as a failure…
        assert "error" in lines[0]
        assert lines[1]["dual"] is True  # …but the session kept serving

    def test_serve_survives_a_solver_side_error(
        self, instance_files, tmp_path, capsys, monkeypatch
    ):
        import io

        # Parses fine, but G is not simple — the engine raises at solve
        # time, well past submit's load.
        not_simple = tmp_path / "not-simple.hg"
        not_simple.write_text("0\n0 1\n==\n0\n", encoding="utf-8")
        stdin_lines = f"{not_simple}\n{instance_files[0]}\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_lines))
        status = main(["serve"])
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert status == 1
        assert "error" in lines[0] and "simple" in lines[0]["error"]
        assert lines[1]["dual"] is True  # the session kept serving

    def test_serve_batch_isolates_the_failing_file(self, instance_files, tmp_path, capsys):
        not_simple = tmp_path / "not-simple.hg"
        not_simple.write_text("0\n0 1\n==\n0\n", encoding="utf-8")
        status = main(
            ["serve", str(instance_files[0]), str(not_simple)]
        )
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert status == 1
        by_kind = {"error" in line: line for line in lines}
        assert by_kind[True]["source"] == str(not_simple)
        assert by_kind[False]["dual"] is True

    def test_serve_cache_across_cli_sessions(self, instance_files, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        main(["serve", str(instance_files[0]), "--cache", str(cache)])
        capsys.readouterr()
        main(["serve", str(instance_files[0]), "--cache", str(cache)])
        (line,) = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line)["cached"] is True

    def test_serve_stdin_exits_cleanly_on_ctrl_c(
        self, instance_files, tmp_path, capsys, monkeypatch
    ):
        """Ctrl-C mid-stream is a normal session end: no traceback, the
        verdicts answered so far stand, and the cache is still flushed."""

        class InterruptedStdin:
            def __init__(self, lines):
                self._lines = iter(lines)

            def __iter__(self):
                return self

            def __next__(self):
                line = next(self._lines)
                if line is None:
                    raise KeyboardInterrupt
                return line

        cache = tmp_path / "cache.json"
        monkeypatch.setattr(
            "sys.stdin", InterruptedStdin([f"{instance_files[0]}\n", None])
        )
        status = main(["serve", "--cache", str(cache), "--stats"])
        out = capsys.readouterr().out.strip().splitlines()
        assert status == 0
        assert json.loads(out[0])["dual"] is True
        assert json.loads(out[-1])["stats"]["requests"] == 1
        assert cache.exists()  # flushed despite the interrupt


# ---------------------------------------------------------------------------
# Lossless codec and cache persistence
# ---------------------------------------------------------------------------

class TestCodec:
    VALUES = [
        0,
        -7,
        10**30,
        True,
        False,
        "vertex",
        "",
        "with spaces / unicode ∅",
        None,
        2.5,
        (0, 1),
        ("fresh", 4),
        (0, ("nested", (1, 2))),
        frozenset({1, 2, 3}),
        frozenset({("a", 1), ("b", 2)}),
        (),
        frozenset(),
    ]

    def test_round_trip_preserves_value_and_type(self):
        for value in self.VALUES:
            decoded = decode_value(encode_value(value))
            assert decoded == value
            assert type(decoded) is type(value)

    def test_bool_does_not_collapse_to_int(self):
        assert decode_value(encode_value(True)) is True
        assert type(decode_value(encode_value(1))) is int

    def test_json_round_trip(self):
        for value in self.VALUES:
            wire = json.loads(json.dumps(encode_value(value)))
            assert decode_value(wire) == value

    def test_exotic_types_rejected(self):
        with pytest.raises(CodecError):
            encode_value(object())
        with pytest.raises(CodecError):
            decode_value(["?", 1])

    def test_cache_persists_tuple_labelled_witnesses(self, tmp_path):
        # disjoint_union_pair labels vertices (side, v) — the exact case
        # the old JSON persistence silently dropped.
        g, h = disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1))
        broken = perturb_drop_edge(h)
        cache = ResultCache()
        (original,) = solve_many([(g, broken)], method="bm", cache=cache)
        assert not original.is_dual
        assert any(isinstance(v, tuple) for v in original.result.witness)

        path = tmp_path / "cache.json"
        assert cache.save(path) == 1  # persisted, not dropped
        reloaded = ResultCache.load(path)
        (replayed,) = solve_many([(g, broken)], method="bm", cache=reloaded)
        assert replayed.cached
        assert replayed.result.certificate == original.result.certificate
        assert replayed.result.witness == original.result.witness
        assert all(
            type(a) is type(b)
            for a, b in zip(
                sorted(replayed.result.witness, key=repr),
                sorted(original.result.witness, key=repr),
            )
        )

    def test_pre_codec_cache_entries_become_misses(self, tmp_path):
        path = tmp_path / "old-cache.json"
        path.write_text(
            json.dumps(
                {
                    "deadbeef": {
                        "verdict": "not-dual",
                        "method": "bm",
                        "kind": "MISSING_TRANSVERSAL",
                        "witness": [0, 2],  # old, untagged format
                        "detail": "",
                        "path": None,
                    }
                }
            ),
            encoding="utf-8",
        )
        cache = ResultCache.load(path)
        assert len(cache) == 0  # dropped, not mis-decoded
