"""Tests for the concurrent engine scheduler (:mod:`repro.service`).

Four contracts:

* **lifecycle** — the :class:`EnginePool` spawns workers once and keeps
  them warm across batches; drain leaves it usable, shutdown is
  idempotent, submits after shutdown fail loudly, and a worker dying
  mid-flight retries **only the lost items** — completed futures keep
  their results and never re-run;
* **scheduling** — ``submit`` returns per-item futures/tickets that
  resolve out of submission order (a slow item never blocks a fast
  one), cache hits resolve at submit time without touching a worker,
  and identical in-flight instances share one computation;
* **service semantics** — :meth:`EngineService.drain` answers in
  submission order with verdicts and certificates identical to serial
  ``decide_duality`` calls, and its cache sits in *front* of the pool
  (hits never reach a worker, and persist across sessions);
* **lossless persistence** — the tagged codec round-trips every vertex
  type the library constructs, tuples included.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

import pytest

from repro.cli import main
from repro.duality import decide_duality
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    disjoint_union_pair,
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    threshold_dual_pair,
)
from repro.parallel import (
    CodecError,
    ResultCache,
    decide_duality_parallel,
    decode_value,
    encode_value,
    solve_many,
)
from repro.service import EnginePool, EngineService, PoolClosedError, response_to_json


def _double(x):
    """Module-level (picklable) work function."""
    return 2 * x


def _sleepy(arg):
    """Module-level work function: sleep ``duration``, return ``value``."""
    duration, value = arg
    time.sleep(duration)
    return value


def _record_run(arg):
    """Module-level work function that logs each execution to a file."""
    path, value = arg
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("ran\n")
    return 2 * value


def _die_unless_flagged(arg):
    """Kill the hosting worker once, then behave (module-level).

    ``arg`` is ``(flag_path, value)``.  The first worker to run this
    creates the flag and dies abruptly (``os._exit`` — no exception, no
    cleanup, exactly what a segfault or OOM kill looks like to the
    parent).  Retries see the flag and succeed.
    """
    flag, value = arg
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as handle:
            handle.write("died")
        os._exit(13)
    return 2 * value


# ---------------------------------------------------------------------------
# EnginePool lifecycle
# ---------------------------------------------------------------------------

class TestEnginePoolLifecycle:
    def test_in_process_map(self):
        with EnginePool(1) as pool:
            assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert pool.generations == 1

    def test_submit_then_drain_in_submission_order(self):
        with EnginePool(1) as pool:
            futures = [pool.submit(_double, n) for n in (5, 6, 7)]
            results = pool.drain()
            assert [results[f.ticket] for f in futures] == [10, 12, 14]

    def test_submit_after_drain_keeps_working(self):
        with EnginePool(1) as pool:
            pool.submit(_double, 1)
            assert list(pool.drain().values()) == [2]
            # drain leaves the pool warm — this must not raise.
            future = pool.submit(_double, 21)
            assert pool.drain()[future.ticket] == 42
            assert pool.generations == 1

    def test_double_shutdown_is_a_noop(self):
        pool = EnginePool(1).start()
        pool.shutdown()
        pool.shutdown()  # must not raise
        assert pool.closed

    def test_submit_after_shutdown_raises(self):
        pool = EnginePool(1).start()
        pool.shutdown()
        with pytest.raises(PoolClosedError, match="shut down"):
            pool.submit(_double, 1)
        with pytest.raises(PoolClosedError):
            pool.start()

    def test_start_is_idempotent(self):
        pool = EnginePool(2)
        try:
            pool.start()
            pool.start()
            assert pool.generations == 1
        finally:
            pool.shutdown()

    def test_workers_stay_warm_across_batches(self):
        with EnginePool(2) as pool:
            seen: set[int] = set()
            for batch in range(5):
                assert pool.map(_double, list(range(8))) == [
                    2 * n for n in range(8)
                ]
                seen |= pool.worker_pids()
            assert os.getpid() not in seen  # real subprocesses
            # One generation creates at most n_jobs worker processes,
            # ever.  A pool that respawned per batch would have minted
            # fresh pids each time (5 batches × 2 workers > 2).
            assert len(seen) <= pool.n_jobs
            assert pool.generations == 1

    def test_worker_death_mid_batch_recovers(self, tmp_path):
        flag = str(tmp_path / "died.flag")
        with EnginePool(2) as pool:
            results = pool.map(
                _die_unless_flagged, [(flag, n) for n in range(6)]
            )
            assert results == [2 * n for n in range(6)]
            assert pool.restarts >= 1
            assert pool.generations == pool.restarts + 1
        assert os.path.exists(flag)

    def test_worker_error_propagates_without_breaking_the_pool(self):
        with EnginePool(1) as pool:
            pool.submit(_double, 1)
            pool.submit(len, 3)  # TypeError: int has no len()
            with pytest.raises(TypeError):
                pool.drain()
            # The failed batch is fully cleared — no stale tickets to
            # re-raise or leak into later drains (regression: a task
            # exception used to poison every subsequent drain).
            assert pool.drain() == {}
            assert pool.map(_double, [4]) == [8]

    def test_failed_map_does_not_poison_later_batches(self):
        with EnginePool(1) as pool:
            with pytest.raises(TypeError):
                pool.map(len, [1, 2, 3])
            assert pool.drain() == {}
            future = pool.submit(_double, 5)
            assert pool.drain() == {future.ticket: 10}


# ---------------------------------------------------------------------------
# Per-item futures: the scheduler under everything
# ---------------------------------------------------------------------------

class TestPoolFutures:
    def test_in_process_submit_resolves_before_returning(self):
        with EnginePool(1) as pool:
            future = pool.submit(_double, 4)
            assert future.done()
            assert future.result() == 8
            assert future.exception() is None
            fired = []
            future.add_done_callback(fired.append)  # already done: fires now
            assert fired == [future]

    def test_fast_future_overtakes_a_slow_one(self):
        with EnginePool(2) as pool:
            slow = pool.submit(_sleepy, (2.0, "slow"), collect=False)
            fast = pool.submit(_sleepy, (0.0, "fast"), collect=False)
            assert fast.result(timeout=30) == "fast"
            # The fast item finished while the slow one is still in a
            # worker: no head-of-line blocking through the pool.
            assert not slow.done()
            assert slow.result(timeout=30) == "slow"

    def test_callbacks_fire_in_completion_order(self):
        order: list[str] = []
        lock = threading.Lock()

        def note(label):
            def callback(_future):
                with lock:
                    order.append(label)

            return callback

        with EnginePool(2) as pool:
            slow = pool.submit(_sleepy, (1.5, None), collect=False)
            fast = pool.submit(_sleepy, (0.0, None), collect=False)
            slow.add_done_callback(note("slow"))
            fast.add_done_callback(note("fast"))
            slow.wait(timeout=30)
            fast.wait(timeout=30)
        assert order == ["fast", "slow"]

    def test_future_error_is_isolated_to_its_item(self):
        with EnginePool(1) as pool:
            bad = pool.submit(len, 3, collect=False)  # TypeError
            good = pool.submit(_double, 5, collect=False)
            assert isinstance(bad.exception(), TypeError)
            with pytest.raises(TypeError):
                bad.result()
            assert good.result() == 10

    def test_shutdown_resolves_every_future(self):
        # More items than workers: some are running when shutdown hits,
        # some still queued.  Every future must settle — a value for
        # the ones the executor finished, PoolClosedError for the ones
        # it cancelled — so no waiter ever hangs on a dead pool.
        pool = EnginePool(2).start()
        futures = [
            pool.submit(_sleepy, (0.3, n), collect=False) for n in range(6)
        ]
        time.sleep(0.1)  # let the first items reach the workers
        pool.shutdown()
        for n, future in enumerate(futures):
            assert future.done()
            error = future.exception()
            if error is None:
                assert future.result() == n
            else:
                assert isinstance(error, PoolClosedError)
        assert any(f.exception() is None for f in futures)

    def test_worker_death_retries_only_the_lost_items(self, tmp_path):
        flag = str(tmp_path / "died.flag")
        survivor_runs = str(tmp_path / "survivor.runs")
        with EnginePool(2) as pool:
            survivor = pool.submit(
                _record_run, (survivor_runs, 21), collect=False
            )
            assert survivor.result(timeout=60) == 42  # done before the death
            killer = pool.submit(_die_unless_flagged, (flag, 1), collect=False)
            bystander = pool.submit(_double, 4, collect=False)
            assert killer.result(timeout=60) == 2  # retried transparently
            assert bystander.result(timeout=60) == 8
            assert pool.restarts >= 1
            assert killer.attempts >= 2
        # The already-completed item kept its result and never re-ran.
        with open(survivor_runs, encoding="utf-8") as handle:
            assert handle.read().count("ran") == 1
        assert survivor.result() == 42


# ---------------------------------------------------------------------------
# Pool reuse by the parallel subsystem
# ---------------------------------------------------------------------------

class TestPoolReuse:
    def test_solve_many_spawns_workers_once_across_batches(self):
        pairs_a = [matching_dual_pair(3), threshold_dual_pair(7, 4)]
        pairs_b = [hard_nondual_pair(3), matching_dual_pair(2)]
        with EnginePool(2) as pool:
            seen = set(pool.worker_pids())
            items_a = solve_many(pairs_a, method="fk-b", pool=pool)
            items_b = solve_many(pairs_b, method="fk-b", pool=pool)
            seen |= pool.worker_pids()
            assert pool.generations == 1  # spawned exactly once…
            assert len(seen) <= pool.n_jobs  # …no fresh processes per batch
        for (g, h), item in zip(pairs_a + pairs_b, items_a + items_b):
            reference = decide_duality(g, h, method="fk-b")
            assert item.result.verdict == reference.verdict
            assert item.result.certificate == reference.certificate

    def test_sharded_solving_through_persistent_pool(self):
        g, h = threshold_dual_pair(9, 5)
        with EnginePool(2) as pool:
            for method in ("fk-b", "bm", "logspace"):
                reference = decide_duality(g, h, method=method)
                sharded = decide_duality_parallel(g, h, method=method, pool=pool)
                assert sharded.verdict == reference.verdict, method
                assert sharded.certificate == reference.certificate, method
            assert pool.generations == 1


# ---------------------------------------------------------------------------
# EngineService
# ---------------------------------------------------------------------------

class TestEngineService:
    def _instances(self):
        return [
            matching_dual_pair(3),
            threshold_dual_pair(7, 4),
            hard_nondual_pair(3),
        ]

    def test_responses_in_submission_order_and_serial_identical(self):
        with EngineService(method="bm") as service:
            ids = [service.submit(pair) for pair in self._instances()]
            responses = service.drain()
        assert [r.request_id for r in responses] == ids
        for (g, h), response in zip(self._instances(), responses):
            reference = decide_duality(g, h, method="bm")
            assert response.result.verdict == reference.verdict
            assert response.result.certificate == reference.certificate

    def test_cache_sits_in_front_of_the_pool(self):
        cache = ResultCache()
        with EngineService(method="fk-b", cache=cache) as service:
            for pair in self._instances():
                service.submit(pair)
            service.drain()
            solved_after_first = service.pool.tasks_completed
            for pair in self._instances():
                service.submit(pair)
            second = service.drain()
        assert all(r.cached for r in second)
        # Hits never reached a worker.
        assert service.pool.tasks_completed == solved_after_first
        assert cache.hits == len(self._instances())

    def test_cache_hits_across_two_service_sessions(self, tmp_path):
        cache_path = tmp_path / "service-cache.json"
        with EngineService(method="fk-b", cache=cache_path) as first:
            for pair in self._instances():
                first.submit(pair)
            originals = first.drain()
        assert cache_path.exists()

        with EngineService(method="fk-b", cache=cache_path) as second:
            for pair in self._instances():
                second.submit(pair)
            replayed = second.drain()
            assert second.pool.tasks_completed == 0  # everything from cache
        for original, replay in zip(originals, replayed):
            assert replay.cached
            assert replay.result.verdict == original.result.verdict
            assert replay.result.certificate == original.result.certificate

    def test_solve_and_solve_file(self, tmp_path):
        g, h = matching_dual_pair(2)
        path = tmp_path / "m2.hg"
        hgio.dump_many([g, h], path)
        with EngineService() as service:
            assert service.solve(g, h).is_dual
            response = service.solve_file(path)
            assert response.is_dual and response.source == str(path)

    def test_solve_coexists_with_queued_requests(self):
        # solve() runs outside the drain batch (collect=False), so it
        # can answer immediately without discarding anyone's queued
        # requests — the old lock-step service had to refuse here.
        with EngineService(method="bm") as service:
            queued = service.submit(matching_dual_pair(3))
            assert service.solve(*matching_dual_pair(2)).is_dual
            # The queued request is still answerable afterwards…
            (response,) = service.drain()
            assert response.request_id == queued and response.is_dual
            # …and the inline solve never leaked into the drain batch.
            assert service.drain() == []

    def test_bad_path_fails_its_own_submit_not_the_drain(self, tmp_path):
        g, h = matching_dual_pair(2)
        good = tmp_path / "good.hg"
        hgio.dump_many([g, h], good)
        with EngineService(method="bm") as service:
            service.submit(good)
            with pytest.raises(FileNotFoundError):
                service.submit(tmp_path / "missing.hg")
            # The good request drains normally despite the bad submit.
            (response,) = service.drain()
            assert response.is_dual

    def test_submit_after_close_raises(self):
        service = EngineService()
        service.close()
        service.close()  # idempotent
        with pytest.raises(PoolClosedError, match="closed"):
            service.submit(matching_dual_pair(2))
        with pytest.raises(PoolClosedError):
            service.drain()

    def test_borrowed_pool_survives_service_close(self):
        with EnginePool(1) as pool:
            service = EngineService(pool=pool)
            service.submit(matching_dual_pair(2))
            service.drain()
            service.close()
            assert not pool.closed
            assert pool.map(_double, [1]) == [2]

    def test_stats_snapshot(self):
        with EngineService(method="bm", cache=ResultCache()) as service:
            service.submit(matching_dual_pair(2))
            service.drain()
            stats = service.stats()
        assert stats["requests"] == 1
        assert stats["pool_generations"] == 1
        assert stats["cache_misses"] == 1

    def test_response_to_json_is_json_serialisable(self):
        with EngineService(method="bm") as service:
            ok = service.solve(*matching_dual_pair(2))
            bad = service.solve(*hard_nondual_pair(3))
        for response in (ok, bad):
            line = json.dumps(response_to_json(response))
            decoded = json.loads(line)
            assert decoded["dual"] == response.is_dual
        assert json.loads(json.dumps(response_to_json(bad)))["witness"]


# ---------------------------------------------------------------------------
# Service tickets: the scheduler's request-level contract
# ---------------------------------------------------------------------------

class TestServiceTickets:
    SLOW = threshold_dual_pair(13, 7)  # ~0.5 s under fk-b
    FAST = [matching_dual_pair(3), threshold_dual_pair(7, 4), matching_dual_pair(2)]

    def test_ticket_is_its_request_id(self):
        with EngineService(method="bm") as service:
            first = service.submit(matching_dual_pair(2))
            second = service.submit(matching_dual_pair(3))
            assert isinstance(first, int)
            assert (first, second) == (0, 1)
            assert second.request_id == 1
            service.drain()

    def test_cache_hit_ticket_resolves_at_submit_without_a_worker(self):
        cache = ResultCache()
        with EngineService(method="fk-b", cache=cache) as service:
            service.solve(*matching_dual_pair(3))
            solved = service.pool.tasks_completed
            ticket = service.submit(matching_dual_pair(3), collect=False)
            # Resolved the moment submit returned — no drain, no worker.
            assert ticket.done()
            response = ticket.result()
            assert response.cached
            assert service.pool.tasks_completed == solved
            assert cache.hits == 1

    def test_identical_inflight_instances_share_one_computation(self):
        # n_jobs=2 so the first submit is still computing in a worker
        # when the duplicate arrives; the duplicate must join it, not
        # occupy the second worker.
        cache = ResultCache()
        with EngineService(method="fk-b", n_jobs=2, cache=cache) as service:
            first = service.submit(self.SLOW, collect=False)
            second = service.submit(self.SLOW, collect=False)
            a = first.result(timeout=120)
            b = second.result(timeout=120)
            assert service.pool.tasks_completed == 1
            assert not a.cached and b.cached
            assert a.result.verdict == b.result.verdict
            assert a.result.certificate == b.result.certificate
            # One solve, one recorded miss: the joined duplicate never
            # consulted the cache (solve_many's within-batch rule).
            assert (cache.misses, cache.hits) == (1, 0)

    def test_out_of_order_completion_submission_order_drain(self):
        """Seeded fast/slow mix: fast tickets resolve before a slow one
        submitted ahead of them, yet drain stays in submission order and
        bit-for-bit identical to serial decide_duality."""
        rng = random.Random(20260726)
        fasts = list(self.FAST)
        rng.shuffle(fasts)
        instances = [self.SLOW] + fasts
        completion: list[int] = []
        lock = threading.Lock()

        def note(ticket):
            with lock:
                completion.append(ticket.request_id)

        with EngineService(method="fk-b", n_jobs=2) as service:
            tickets = []
            for pair in instances:
                ticket = service.submit(pair)
                ticket.add_done_callback(note)
                tickets.append(ticket)
            responses = service.drain()
        # Submission-order determinism on the drain side…
        assert [r.request_id for r in responses] == [int(t) for t in tickets]
        for (g, h), response in zip(instances, responses):
            reference = decide_duality(g, h, method="fk-b")
            assert response.result.verdict == reference.verdict
            assert response.result.certificate == reference.certificate
        # …while completion genuinely happened out of order: every fast
        # instance overtook the slow one submitted before it.
        assert completion[-1] == tickets[0].request_id
        assert sorted(completion) == [int(t) for t in tickets]

    def test_ticket_after_service_close_errors(self):
        service = EngineService(method="fk-b", n_jobs=2)
        inflight = service.submit(self.SLOW, collect=False)
        service.close()  # owned pool: shutdown resolves stragglers
        assert inflight.done()
        error = inflight.exception()
        if error is not None:  # cancelled before a worker picked it up
            assert isinstance(error, PoolClosedError)
        with pytest.raises(PoolClosedError, match="closed"):
            service.submit(matching_dual_pair(2))

    def test_error_ticket_resolves_with_the_error(self, tmp_path):
        from repro.hypergraph import Hypergraph

        not_simple = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        with EngineService(method="fk-b") as service:
            bad = service.submit((not_simple, h), collect=False)
            error = bad.exception()
            assert error is not None and "simple" in str(error)
            with pytest.raises(type(error)):
                bad.result()
            # The scheduler (and its pool) survived the bad request.
            assert service.solve(*matching_dual_pair(2)).is_dual

    def test_drain_raises_first_error_but_computes_the_rest(self):
        from repro.hypergraph import Hypergraph

        not_simple = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        cache = ResultCache()
        with EngineService(method="fk-b", cache=cache) as service:
            service.submit(matching_dual_pair(3))
            service.submit((not_simple, h))
            service.submit(matching_dual_pair(2))
            with pytest.raises(Exception, match="simple"):
                service.drain()
            # The healthy requests were still answered (and cached).
            assert len(cache) == 2
            assert service.submit(matching_dual_pair(3), collect=False).result().cached


# ---------------------------------------------------------------------------
# The serve CLI
# ---------------------------------------------------------------------------

class TestServeCommand:
    @pytest.fixture
    def instance_files(self, tmp_path):
        files = []
        for name, pair in (
            ("dual-m3", matching_dual_pair(3)),
            ("broken", hard_nondual_pair(3)),
        ):
            path = tmp_path / f"{name}.hg"
            hgio.dump_many(pair, path)
            files.append(path)
        return files

    def test_serve_files_streams_json_verdicts(self, instance_files, capsys):
        status = main(["serve", *map(str, instance_files)])
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert status == 1  # one instance is not dual
        assert [line["dual"] for line in lines] == [True, False]
        assert lines[1]["witness"] is not None

    def test_serve_stdin_streams_and_caches(
        self, instance_files, tmp_path, capsys, monkeypatch
    ):
        import io

        cache = tmp_path / "cache.json"
        stdin_lines = f"{instance_files[0]}\n# comment\n{instance_files[0]}\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_lines))
        status = main(["serve", "--cache", str(cache), "--stats"])
        out = capsys.readouterr().out.strip().splitlines()
        assert status == 0
        verdicts = [json.loads(line) for line in out[:-1]]
        assert [v["cached"] for v in verdicts] == [False, True]
        stats = json.loads(out[-1])["stats"]
        assert stats["cache_hits"] == 1
        assert cache.exists()

    def test_serve_survives_a_bad_path_on_stdin(
        self, instance_files, capsys, monkeypatch
    ):
        import io

        stdin_lines = f"missing-file.hg\n{instance_files[0]}\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_lines))
        status = main(["serve"])
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert status == 1  # the bad path is reported as a failure…
        assert "error" in lines[0]
        assert lines[1]["dual"] is True  # …but the session kept serving

    def test_serve_survives_a_solver_side_error(
        self, instance_files, tmp_path, capsys, monkeypatch
    ):
        import io

        # Parses fine, but G is not simple — the engine raises at solve
        # time, well past submit's load.
        not_simple = tmp_path / "not-simple.hg"
        not_simple.write_text("0\n0 1\n==\n0\n", encoding="utf-8")
        stdin_lines = f"{not_simple}\n{instance_files[0]}\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_lines))
        status = main(["serve"])
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert status == 1
        assert "error" in lines[0] and "simple" in lines[0]["error"]
        assert lines[1]["dual"] is True  # the session kept serving

    def test_serve_batch_isolates_the_failing_file(self, instance_files, tmp_path, capsys):
        not_simple = tmp_path / "not-simple.hg"
        not_simple.write_text("0\n0 1\n==\n0\n", encoding="utf-8")
        status = main(
            ["serve", str(instance_files[0]), str(not_simple)]
        )
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert status == 1
        by_kind = {"error" in line: line for line in lines}
        assert by_kind[True]["source"] == str(not_simple)
        assert by_kind[False]["dual"] is True

    def test_serve_cache_across_cli_sessions(self, instance_files, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        main(["serve", str(instance_files[0]), "--cache", str(cache)])
        capsys.readouterr()
        main(["serve", str(instance_files[0]), "--cache", str(cache)])
        (line,) = capsys.readouterr().out.strip().splitlines()
        assert json.loads(line)["cached"] is True

    def test_serve_stdin_exits_cleanly_on_ctrl_c(
        self, instance_files, tmp_path, capsys, monkeypatch
    ):
        """Ctrl-C mid-stream is a normal session end: no traceback, the
        verdicts answered so far stand, and the cache is still flushed."""

        class InterruptedStdin:
            def __init__(self, lines):
                self._lines = iter(lines)

            def __iter__(self):
                return self

            def __next__(self):
                line = next(self._lines)
                if line is None:
                    raise KeyboardInterrupt
                return line

        cache = tmp_path / "cache.json"
        monkeypatch.setattr(
            "sys.stdin", InterruptedStdin([f"{instance_files[0]}\n", None])
        )
        status = main(["serve", "--cache", str(cache), "--stats"])
        out = capsys.readouterr().out.strip().splitlines()
        assert status == 0
        assert json.loads(out[0])["dual"] is True
        assert json.loads(out[-1])["stats"]["requests"] == 1
        assert cache.exists()  # flushed despite the interrupt


# ---------------------------------------------------------------------------
# Lossless codec and cache persistence
# ---------------------------------------------------------------------------

class TestCodec:
    VALUES = [
        0,
        -7,
        10**30,
        True,
        False,
        "vertex",
        "",
        "with spaces / unicode ∅",
        None,
        2.5,
        (0, 1),
        ("fresh", 4),
        (0, ("nested", (1, 2))),
        frozenset({1, 2, 3}),
        frozenset({("a", 1), ("b", 2)}),
        (),
        frozenset(),
    ]

    def test_round_trip_preserves_value_and_type(self):
        for value in self.VALUES:
            decoded = decode_value(encode_value(value))
            assert decoded == value
            assert type(decoded) is type(value)

    def test_bool_does_not_collapse_to_int(self):
        assert decode_value(encode_value(True)) is True
        assert type(decode_value(encode_value(1))) is int

    def test_json_round_trip(self):
        for value in self.VALUES:
            wire = json.loads(json.dumps(encode_value(value)))
            assert decode_value(wire) == value

    def test_exotic_types_rejected(self):
        with pytest.raises(CodecError):
            encode_value(object())
        with pytest.raises(CodecError):
            decode_value(["?", 1])

    def test_cache_persists_tuple_labelled_witnesses(self, tmp_path):
        # disjoint_union_pair labels vertices (side, v) — the exact case
        # the old JSON persistence silently dropped.
        g, h = disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1))
        broken = perturb_drop_edge(h)
        cache = ResultCache()
        (original,) = solve_many([(g, broken)], method="bm", cache=cache)
        assert not original.is_dual
        assert any(isinstance(v, tuple) for v in original.result.witness)

        path = tmp_path / "cache.json"
        assert cache.save(path) == 1  # persisted, not dropped
        reloaded = ResultCache.load(path)
        (replayed,) = solve_many([(g, broken)], method="bm", cache=reloaded)
        assert replayed.cached
        assert replayed.result.certificate == original.result.certificate
        assert replayed.result.witness == original.result.witness
        assert all(
            type(a) is type(b)
            for a, b in zip(
                sorted(replayed.result.witness, key=repr),
                sorted(original.result.witness, key=repr),
            )
        )

    def test_pre_codec_cache_entries_become_misses(self, tmp_path):
        path = tmp_path / "old-cache.json"
        path.write_text(
            json.dumps(
                {
                    "deadbeef": {
                        "verdict": "not-dual",
                        "method": "bm",
                        "kind": "MISSING_TRANSVERSAL",
                        "witness": [0, 2],  # old, untagged format
                        "detail": "",
                        "path": None,
                    }
                }
            ),
            encoding="utf-8",
        )
        cache = ResultCache.load(path)
        assert len(cache) == 0  # dropped, not mis-decoded


class TestLoopCallbacks:
    def test_add_loop_callback_runs_on_the_event_loop(self):
        """The asyncio bridge: however the ticket resolves (worker
        thread, submitter thread, cache hit at submit), the callback
        always lands on the loop thread — that is the contract the TCP
        server's delivery path is built on."""
        import asyncio

        with EngineService(method="fk-b", cache=ResultCache()) as service:

            async def drive() -> list[tuple[int, bool, bool]]:
                loop = asyncio.get_running_loop()
                loop_thread = threading.get_ident()
                landed: list[tuple[int, bool, bool]] = []
                done = asyncio.Event()
                # One computed verdict, then the same instance again —
                # the second resolves already-cached, at submit time,
                # in the submitting thread.
                for expected in (False, True):
                    ticket = await loop.run_in_executor(
                        None,
                        lambda: service.submit(
                            matching_dual_pair(3), collect=False
                        ),
                    )
                    done.clear()

                    def on_done(t, expected=expected) -> None:
                        landed.append(
                            (
                                threading.get_ident() == loop_thread,
                                t.result().cached is expected,
                                t.done(),
                            )
                        )
                        done.set()

                    ticket.add_loop_callback(loop, on_done)
                    await asyncio.wait_for(done.wait(), 60)
                return landed

            landed = asyncio.run(drive())
        assert landed == [(True, True, True), (True, True, True)]

    def test_add_loop_callback_swallows_a_closed_loop(self):
        """A verdict landing after its loop closed is dropped, not a
        crash in the completion thread (the verdict itself is safe in
        the cache)."""
        import asyncio

        loop = asyncio.new_event_loop()
        loop.close()
        fired: list[int] = []
        with EngineService(method="bm") as service:
            ticket = service.submit(matching_dual_pair(2), collect=False)
            ticket.exception()  # settle first, then attach
            ticket.add_loop_callback(loop, lambda t: fired.append(1))
        assert fired == []
