"""Cross-subsystem integration flows for the knowledge-representation stack.

Each test chains several of the new packages end to end, the way the
paper's Section 1 presents them: everything is the same ``Dual``
problem wearing different clothes, so artifacts must convert between
the domains losslessly.
"""

from __future__ import annotations

import pytest

from repro.dnf import MonotoneDNF, parse_dnf
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.dfs_enumeration import transversal_hypergraph_dfs
from repro.duality import decide_duality
from repro.duality.self_duality import (
    coterie_from_dual_pair,
    self_dualization,
)
from repro.abduction import (
    AbductionProblem,
    maximal_non_explanations,
    minimal_explanations,
    verify_explanation_completeness,
)
from repro.diagnosis import (
    CircuitDiagnosisProblem,
    full_adder,
    minimal_conflicts,
    minimal_diagnoses,
    verify_diagnosis_completeness,
)
from repro.envelopes import horn_envelope, models_of_envelope
from repro.learning import MembershipOracle, learn_monotone_function
from repro.logic import (
    HornTheory,
    decide_cnf_dnf_equivalence,
    intersection_closure,
)


class TestLearnThenDualize:
    """Oracle → learned borders → CNF/DNF → duality engines."""

    def test_learned_forms_cross_all_formulations(self):
        hidden = parse_dnf("a b | b c | c d")
        learned = learn_monotone_function(MembershipOracle.from_dnf(hidden))
        dnf, cnf = learned.dnf(), learned.cnf()
        # formula-level equivalence = Dual, on three engines
        for method in ("transversal", "bm", "logspace"):
            assert decide_cnf_dnf_equivalence(cnf, dnf, method=method).is_dual
        # hypergraph-level: MTP = tr(clause hypergraph)
        assert learned.minimal_true_points == transversal_hypergraph(
            cnf.hypergraph().with_vertices(dnf.variables)
        )

    def test_learned_pair_builds_nd_coterie(self):
        hidden = parse_dnf("a b | b c")
        learned = learn_monotone_function(MembershipOracle.from_dnf(hidden))
        g = learned.cnf().hypergraph().with_vertices(hidden.variables)
        h = learned.minimal_true_points
        coterie = coterie_from_dual_pair(g, h)
        assert coterie.is_nondominated()

    def test_relearning_learned_function_is_fixpoint(self):
        hidden = parse_dnf("a b | c")
        first = learn_monotone_function(MembershipOracle.from_dnf(hidden))
        second = learn_monotone_function(
            MembershipOracle.from_dnf(first.dnf())
        )
        assert second.minimal_true_points == first.minimal_true_points
        assert second.maximal_false_points == first.maximal_false_points


class TestDiagnosisAsLearning:
    """Diagnosis = border learning of the conflict predicate."""

    def test_conflicts_learned_equal_diagnosis_pipeline(self):
        problem = CircuitDiagnosisProblem.observe_fault(
            full_adder(), {"a": 1, "b": 1, "cin": 1}, {"o1": False}
        )
        if not problem.is_faulty_observation():
            pytest.skip("observation consistent for this input vector")
        conflicts = minimal_conflicts(problem)
        diagnoses = minimal_diagnoses(
            CircuitDiagnosisProblem.observe_fault(
                full_adder(), {"a": 1, "b": 1, "cin": 1}, {"o1": False}
            ),
            "hstree",
        )
        # three formulations of the same statement:
        assert diagnoses == transversal_hypergraph(conflicts).with_vertices(
            diagnoses.vertices
        )
        assert diagnoses == transversal_hypergraph_dfs(
            conflicts
        ).with_vertices(diagnoses.vertices)
        assert verify_diagnosis_completeness(
            conflicts, diagnoses, method="dfs-enum"
        ).is_dual


class TestAbductionEnvelopeRoundtrip:
    """Horn theory → models → envelope → same abduction answers."""

    def test_envelope_preserves_explanations(self):
        theory = HornTheory.from_tuples(
            [
                (("rain",), "wet"),
                (("sprinkler",), "wet"),
                (("wet",), "slippery"),
            ],
            atoms=["rain", "sprinkler", "wet", "slippery"],
        )
        # the envelope of a Horn theory's models is an equivalent theory
        models = theory.models()
        envelope = horn_envelope(models, atoms=theory.atoms)
        assert set(envelope.models()) == set(models)
        for factory_theory in (theory, envelope):
            problem = AbductionProblem(
                factory_theory,
                hypotheses={"rain", "sprinkler"},
                query="slippery",
            )
            expl = minimal_explanations_safe(problem)
            assert set(expl.edges) == {
                frozenset({"rain"}),
                frozenset({"sprinkler"}),
            }

    def test_explanation_borders_via_every_engine_family(self):
        theory = HornTheory.from_tuples(
            [(("a",), "q"), (("b", "c"), "q")], atoms="abcq"
        )
        problem = AbductionProblem(theory, hypotheses="abc", query="q")
        expl = minimal_explanations(problem)
        non = maximal_non_explanations(problem)
        for method in ("transversal", "bm", "logspace", "dfs-enum", "tractable"):
            assert verify_explanation_completeness(
                problem, expl, non, method=method
            ).is_dual


def minimal_explanations_safe(problem: AbductionProblem) -> Hypergraph:
    """Learner route when definite, brute force otherwise."""
    from repro.abduction import minimal_explanations_brute_force

    if problem.theory.is_definite():
        return minimal_explanations(problem)
    return minimal_explanations_brute_force(problem)


class TestSelfDualizationPipeline:
    """Dual pair → self-dual hypergraph → coterie → availability story."""

    def test_full_chain(self):
        from repro.coteries import availability

        g = Hypergraph([{"a", "b"}, {"b", "c"}])
        h = transversal_hypergraph(g)
        assert decide_duality(g, h, method="tractable").is_dual
        reduced = self_dualization(g, h)
        # self-dual on every engine
        for method in ("transversal", "bm", "dfs-enum"):
            assert decide_duality(reduced, reduced, method=method).is_dual
        coterie = coterie_from_dual_pair(g, h)
        value = availability(coterie, 0.9)
        assert 0.0 < value <= 1.0

    def test_envelope_of_selfdual_models(self):
        # the model set of a monotone self-dual function is generally
        # NOT intersection-closed; its envelope strictly grows
        g = Hypergraph([{"a", "b"}, {"b", "c"}, {"a", "c"}])  # majority-3
        dnf = MonotoneDNF.from_hypergraph(g)
        from repro._util import powerset

        models = [p for p in powerset(g.vertices) if dnf.evaluate(p)]
        closed = intersection_closure(models)
        assert set(models) < closed
        assert models_of_envelope(models, atoms=g.vertices) == closed
