"""The paper's statements, one test each — a claims index.

Each test carries the statement it validates in its docstring and
exercises the library's corresponding machinery on representative
instances.  This module is deliberately redundant with the deeper
suites: it is the quick "is the reproduction still faithful?" check and
a reading guide from paper to code.
"""

from __future__ import annotations

import math

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
)


def _ordered(g, h):
    return (h, g) if len(h) > len(g) else (g, h)


class TestSection1:
    def test_dnf_duality_equals_hypergraph_duality(self):
        """§1: two irredundant monotone DNFs are dual iff their
        hypergraphs are dual (the trivial two-way reduction)."""
        from repro.dnf import MonotoneDNF
        from repro.duality import decide_dnf_duality, decide_duality

        g, h = matching_dual_pair(2)
        f1 = MonotoneDNF.from_hypergraph(g)
        f2 = MonotoneDNF.from_hypergraph(h)
        assert decide_dnf_duality(f1, f2).is_dual == decide_duality(g, h).is_dual

    def test_proposition_1_1(self):
        """Prop. 1.1: MaxFreq–MinInfreq-Identification reduces to Dual —
        'no additional itemset iff G = tr(Hᶜ)' ([26])."""
        from repro.hypergraph import complement_family
        from repro.itemsets import borders, decide_identification
        from repro.itemsets.datasets import planted_borders

        relation, z, _ = planted_borders(n_items=6, z=2, seed=31)
        is_plus, is_minus = borders(relation, z)
        # The [26] equation itself:
        assert transversal_hypergraph(complement_family(is_plus)) == is_minus
        # And the decision through a Dual engine:
        assert decide_identification(relation, z, is_minus, is_plus).complete

    def test_proposition_1_2(self):
        """Prop. 1.2: the additional-key problem is equivalent to Dual;
        minimal keys = tr of a hypergraph computable from R."""
        from repro.keys import (
            RelationalInstance,
            decide_additional_key,
            difference_hypergraph,
            minimal_keys,
        )

        instance = RelationalInstance(
            [
                {"A": 1, "B": 1, "C": 2},
                {"A": 1, "B": 2, "C": 1},
                {"A": 2, "B": 1, "C": 1},
            ]
        )
        keys = minimal_keys(instance)
        assert keys == transversal_hypergraph(difference_hypergraph(instance))
        assert not decide_additional_key(instance, keys).exists

    def test_proposition_1_3(self):
        """Prop. 1.3: a coterie is non-dominated iff tr(H) = H."""
        from repro.coteries import grid_coterie, majority_coterie

        nd = majority_coterie(3).hypergraph()
        assert transversal_hypergraph(nd) == nd
        dominated = grid_coterie(2, 2).hypergraph()
        assert transversal_hypergraph(dominated) != dominated


class TestSection2:
    def test_proposition_2_1_item_1(self):
        """Prop. 2.1(1): H = tr(G) iff all leaves of T(G,H) are done."""
        from repro.duality.boros_makino import tree_for, build_tree
        from repro.duality.conditions import prepare_instance

        g, h = _ordered(*matching_dual_pair(3))
        assert tree_for(g, h).all_done()
        g2, h2 = matching_dual_pair(3)
        broken = perturb_drop_edge(h2)
        entry = prepare_instance(g2, broken)
        gg, hh = _ordered(entry.g, entry.h)
        assert not build_tree(gg, hh).all_done()

    def test_proposition_2_1_item_2(self):
        """Prop. 2.1(2): depth of T(G,H) ≤ log |H|."""
        from repro.duality.boros_makino import tree_for

        g, h = _ordered(*matching_dual_pair(4))
        assert tree_for(g, h).depth() <= math.log2(len(h))

    def test_proposition_2_1_item_3(self):
        """Prop. 2.1(3): every node has at most |V|·|G| children."""
        from repro.duality.boros_makino import tree_for

        g, h = _ordered(*matching_dual_pair(4))
        assert tree_for(g, h).max_branching() <= len(g.vertices) * len(g)

    def test_proposition_2_1_item_4(self):
        """Prop. 2.1(4): fail-leaf t(α) is a new transversal of G wrt H."""
        from repro.duality.boros_makino import build_tree
        from repro.duality.conditions import prepare_instance
        from repro.hypergraph.transversal import is_new_transversal

        g, h = hard_nondual_pair(3)
        entry = prepare_instance(g, h)
        gg, hh = _ordered(entry.g, entry.h)
        tree = build_tree(gg, hh)
        assert tree.fail_leaves()
        for leaf in tree.fail_leaves():
            assert is_new_transversal(leaf.attrs.witness, gg, hh)


class TestSection3:
    def test_lemma_3_1(self):
        """Lemma 3.1: [[FDSPACE[log n]_pol]]^log ⊆ FDSPACE[log² n] —
        the pipeline computes f^ρ(I) without storing intermediates, with
        peak bits linear in the number of stages."""
        from repro.machine import FunctionTransducer, self_composition

        def rot(text):
            return text[1:] + text[:1] if text else text

        text = "abcdefgh"
        peaks = []
        for rho in (2, 4):
            pipeline = self_composition(FunctionTransducer(rot), rho)
            assert pipeline.compute_recomputed(text) == pipeline.compute_direct(text)
            peaks.append(pipeline.meter.peak_bits)
        assert peaks[0] < peaks[1] <= 2.6 * peaks[0]

    def test_qlog_membership_enforced(self):
        """§3: ρ ∈ Q_log means ρ(I) = O(log |I|) — violations raise."""
        import pytest

        from repro.machine.qlog import QlogFunction

        linear = QlogFunction("bad", lambda t: len(t), bound_factor=1.0)
        with pytest.raises(ValueError):
            linear("x" * 10_000)


class TestSection4:
    def test_lemma_4_1(self):
        """Lemma 4.1: next(V, attr(α), i) yields the i-th child or
        impossible, in logspace-style elementary operations."""
        from repro.duality.logspace import initial_attrs, next_attrs

        g, h = _ordered(*matching_dual_pair(3))
        root = initial_attrs(g, h)
        first = next_attrs(g, h, root, 1)
        assert first is not None and first.label == (1,)
        assert next_attrs(g, h, root, 10 ** 9) is None

    def test_lemma_4_2(self):
        """Lemma 4.2: pathnode(I, π) resolves labels and flags wrongpath."""
        from repro.duality.boros_makino import tree_for
        from repro.duality.logspace import pathnode

        g, h = _ordered(*matching_dual_pair(3))
        tree = tree_for(g, h)
        for node in tree.nodes():
            assert pathnode(g, h, node.attrs.label) == node.attrs
        assert pathnode(g, h, (99999,)) is None

    def test_theorem_4_1(self):
        """Thm 4.1: decompose outputs T(G,H) within the metered
        O(log² n) register budget."""
        from repro.duality.boros_makino import tree_for
        from repro.duality.logspace import (
            decompose,
            instance_size,
            model_space_bits,
            pathnode_metered,
        )

        g, h = _ordered(*matching_dual_pair(3))
        tree = tree_for(g, h)
        out = decompose(g, h)
        assert [a.label for a in out["vertices"]] == sorted(tree.labels())
        deepest = max((n.attrs for n in tree.nodes()), key=lambda a: a.depth)
        _, meter = pathnode_metered(g, h, deepest.label)
        n = instance_size(g, h)
        assert meter.peak_bits <= model_space_bits(g, h) + 64
        assert meter.peak_bits <= 60 * math.log2(n) ** 2 + 200

    def test_corollary_4_1(self):
        """Cor. 4.1: Dual decidable — and a new transversal computable —
        in quadratic logspace."""
        from repro.duality.logspace import (
            decide_logspace,
            find_new_transversal_logspace,
        )
        from repro.hypergraph.transversal import is_new_transversal

        g, h = matching_dual_pair(3)
        assert decide_logspace(g, h).is_dual
        broken = perturb_drop_edge(h)
        witness = find_new_transversal_logspace(g, broken)
        assert is_new_transversal(
            witness,
            g.with_vertices(g.vertices),
            broken.with_vertices(g.vertices),
        )

    def test_post_corollary_minimalisation(self):
        """§4 (after Cor. 4.1): the witness need not be minimal; the
        linear-space greedy pass extracts a missing minimal transversal."""
        from repro.duality.logspace import find_new_transversal_logspace
        from repro.duality.witness import extract_missing_minimal_transversal

        g, h = matching_dual_pair(3)
        broken = perturb_drop_edge(h)
        witness = find_new_transversal_logspace(g, broken)
        minimal = extract_missing_minimal_transversal(g, broken, witness)
        assert minimal in set(transversal_hypergraph(g).edges)
        assert minimal not in set(broken.edges)


class TestSection5:
    def test_lemma_5_1_and_theorem_5_1(self):
        """Lemma 5.1 + Thm 5.1: non-duality certified by guessing an
        O(log² n)-bit path descriptor and checking it via pathnode."""
        from repro.duality.guess_and_check import (
            certificate_for,
            check_certificate,
        )
        from repro.duality.logspace import descriptor_bits, instance_size

        g, h = _ordered(*hard_nondual_pair(3))
        pi = certificate_for(g, h)
        assert pi is not None and check_certificate(g, h, pi)
        n = instance_size(g, h)
        assert descriptor_bits(g, h) <= 4 * math.log2(n) ** 2 + 16

    def test_theorem_5_2(self):
        """Thm 5.2: GC(log²n, [[LOGSPACE_pol]]^log) ⊆ DSPACE[log²n] ∩ β₂P
        — encoded and re-derivable in the Figure 1 lattice."""
        from repro.complexity import default_lattice

        lattice = default_lattice()
        assert lattice.includes("GC_LOG2_ITLOGSPACE", "DSPACE_LOG2")
        assert lattice.includes("GC_LOG2_ITLOGSPACE", "BETA2P")


class TestKnownResults:
    def test_fredman_khachiyan_bound_shape(self):
        """§1 known results: FK solves Dual in n^{4χ(n)+O(1)} with
        χ(n)^χ(n) = n; χ grows like log n / log log n."""
        from repro.complexity import chi

        for n in (10.0, 1e6):
            x = chi(n)
            assert abs(x ** x - n) / n < 1e-6
        assert chi(1e9) < math.log2(1e9)

    def test_tractable_cases_of_section_6(self):
        """§6: Dual is tractable for acyclic hypergraphs — the library
        classifies acyclicity exactly (GYO)."""
        from repro.hypergraph.generators import path_graph_edges
        from repro.hypergraph.structure import is_alpha_acyclic

        assert is_alpha_acyclic(path_graph_edges(5))
        assert is_alpha_acyclic(matching_dual_pair(3)[0])
