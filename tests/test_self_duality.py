"""Tests for :mod:`repro.duality.self_duality` — the Dual → Self-Dual bridge."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError, VertexError
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    matching_dual_pair,
    perturb_drop_edge,
    threshold_dual_pair,
)
from repro.duality import decide_duality
from repro.duality.self_duality import (
    coterie_from_dual_pair,
    decide_duality_via_self_duality,
    is_self_dual_hypergraph,
    self_dualization,
)


class TestSelfDualCheck:
    def test_majority_is_self_dual(self):
        from repro.hypergraph.generators import threshold

        assert is_self_dual_hypergraph(threshold(5))  # majorities of odd n

    def test_matching_is_not_self_dual(self):
        g, _h = matching_dual_pair(2)
        assert not is_self_dual_hypergraph(g)

    @pytest.mark.parametrize("method", ["transversal", "bm", "logspace"])
    def test_engine_choice(self, method):
        from repro.hypergraph.generators import threshold

        assert is_self_dual_hypergraph(threshold(3), method=method)


class TestSelfDualization:
    def test_shape(self):
        g, h = matching_dual_pair(2)
        reduced = self_dualization(g, h)
        assert len(reduced) == 1 + len(g) + len(h)
        assert frozenset({"__x__", "__y__"}) in set(reduced.edges)
        assert len(reduced.vertices) == len(g.vertices | h.vertices) + 2

    def test_reduction_theorem_positive(self):
        for maker in (lambda: matching_dual_pair(2),
                      lambda: matching_dual_pair(3),
                      lambda: threshold_dual_pair(5, 3)):
            g, h = maker()
            reduced = self_dualization(g, h)
            assert transversal_hypergraph(reduced) == reduced

    def test_reduction_theorem_negative(self):
        g, h = matching_dual_pair(3)
        broken = perturb_drop_edge(h, index=1)
        reduced = self_dualization(g, broken)
        assert transversal_hypergraph(reduced) != reduced

    def test_fresh_vertex_collision_rejected(self):
        g = Hypergraph([{"__x__", "b"}])
        with pytest.raises(VertexError):
            self_dualization(g, transversal_hypergraph(g))

    def test_constant_inputs_rejected(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(InvalidInstanceError):
            self_dualization(Hypergraph.empty("ab"), h)
        with pytest.raises(InvalidInstanceError):
            self_dualization(g, Hypergraph.trivial_true("ab"))

    def test_custom_fresh_labels(self):
        g, h = matching_dual_pair(2)
        reduced = self_dualization(g, h, x="p", y="q")
        assert frozenset({"p", "q"}) in set(reduced.edges)

    @given(
        st.lists(
            st.frozensets(
                st.integers(min_value=0, max_value=4), min_size=1, max_size=3
            ),
            min_size=1,
            max_size=4,
        ),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_reduction_theorem_random(self, edges, perturb):
        g = Hypergraph(edges, vertices=range(5)).minimized()
        if g.is_trivial_true() or g.is_trivial_false():
            return
        h = transversal_hypergraph(g)
        if perturb and len(h) > 1:
            h = Hypergraph(list(h.edges)[:-1], vertices=h.vertices)
        expected = decide_duality(g, h, method="transversal").is_dual
        reduced = self_dualization(g, h)
        assert (transversal_hypergraph(reduced) == reduced) == expected


class TestDecideViaReduction:
    @pytest.mark.parametrize("method", ["transversal", "bm", "fk-b", "logspace"])
    def test_agrees_with_direct_engines(self, method):
        g, h = matching_dual_pair(3)
        assert decide_duality_via_self_duality(g, h, method=method).is_dual
        broken = perturb_drop_edge(h, index=0)
        refuted = decide_duality_via_self_duality(g, broken, method=method)
        assert not refuted.is_dual
        assert refuted.stats.extra["reduced"] is True


class TestCoterieBridge:
    def test_dual_pair_yields_nd_coterie(self):
        g, h = matching_dual_pair(2)
        coterie = coterie_from_dual_pair(g, h)
        assert coterie.is_nondominated()
        assert len(coterie) == 1 + len(g) + len(h)

    def test_non_dual_pair_rejected(self):
        g, h = matching_dual_pair(2)
        broken = perturb_drop_edge(h, index=0)
        with pytest.raises(InvalidInstanceError):
            coterie_from_dual_pair(g, broken)

    def test_threshold_pair_coterie(self):
        g, h = threshold_dual_pair(5, 3)
        coterie = coterie_from_dual_pair(g, h)
        assert coterie.is_nondominated()
