"""Tests for the observability layer (:mod:`repro.obs`).

Four contracts:

* **tracing primitives** — spans round-trip their dict form, the sink
  is a bounded ring buffer that counts what it drops, ``span()`` is the
  shared null singleton while tracing is off (zero-cost-disabled), and
  the renderers (tree, Chrome trace events) are total on partial
  traces;
* **metrics** — counters/gauges/histograms expose valid Prometheus
  text, the histogram's percentile edge cases (empty window, single
  sample, wraparound) are defined rather than accidental, and
  ``snapshot_ms`` keeps the legacy latency-window shape;
* **trace propagation** — a client-minted trace id survives the wire,
  the service scheduler, and the process boundary into the worker, and
  comes back as one correctly-nested tree per request even when
  pipelined responses complete out of order;
* **accounting** — responses carry their ``origin`` (computed / cache /
  dedup) with dedup joiners reporting the primary's real elapsed, the
  async server tallies requests and errors per op, and the timing log
  records one structurally-featured JSONL row per computed solve.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.cli import main
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    threshold_dual_pair,
)
from repro.net import DualityClient, DualityServer
from repro.obs import (
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    SpanContext,
    TimingLog,
    TraceSink,
    disable_tracing,
    dump_chrome,
    enable_tracing,
    format_tree,
    load_timings,
    new_span_id,
    new_trace_id,
    parse_exposition,
    record_span,
    span,
    structural_features,
    to_chrome,
)
from repro.hypergraph import mask_payload
from repro.parallel import ResultCache, solve_many
from repro.service import EngineService


def _write_instance(path, pair) -> str:
    hgio.dump_many(list(pair), path)
    return str(path)


# ---------------------------------------------------------------------------
# Tracing primitives
# ---------------------------------------------------------------------------

class TestSpan:
    def test_ids_are_distinct_and_well_formed(self):
        trace_ids = {new_trace_id() for _ in range(64)}
        span_ids = {new_span_id() for _ in range(64)}
        assert len(trace_ids) == 64 and len(span_ids) == 64
        assert all(len(t) == 16 for t in trace_ids)
        assert all(len(s) == 8 for s in span_ids)

    def test_dict_round_trip(self):
        item = Span("t" * 16, "phase", parent_id="p" * 8, tags={"k": 1})
        item.finish()
        clone = Span.from_dict(item.to_dict())
        assert clone.to_dict() == item.to_dict()
        assert clone.duration_s == pytest.approx(item.duration_s)

    def test_sink_is_a_ring_buffer_that_counts_drops(self):
        sink = TraceSink(maxlen=4)
        for n in range(10):
            root = Span("t" * 16, f"s{n}")
            root.finish()
            sink.record(root)
        assert len(sink) == 4
        assert sink.dropped == 6
        assert [item.name for item in sink.spans()] == ["s6", "s7", "s8", "s9"]

    def test_sink_filters_by_trace_id_and_accepts_dicts(self):
        sink = TraceSink()
        mine, other = new_trace_id(), new_trace_id()
        sink.record(Span(mine, "a").finish())
        sink.extend([Span(other, "b").finish().to_dict()])
        assert [item.name for item in sink.spans(mine)] == ["a"]
        assert sorted(sink.trace_ids()) == sorted([mine, other])

    def test_span_is_null_singleton_while_disabled(self):
        disable_tracing()
        assert span("anything") is NULL_SPAN
        with span("still-nothing") as live:
            live.set_tag("ignored", 1)  # must not raise
        assert span("and-again") is span("and-again")  # the one shared object

    def test_global_sink_records_and_nests_ambient_spans(self):
        sink = enable_tracing()
        try:
            with span("outer", phase="x"):
                with span("inner"):
                    pass
        finally:
            disable_tracing()
        by_name = {item.name: item for item in sink.spans()}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["inner"].trace_id == by_name["outer"].trace_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].tags == {"phase": "x"}

    def test_record_span_attaches_to_the_given_context(self):
        sink = TraceSink()
        ctx = SpanContext(new_trace_id(), "ff00ff00", sink)
        recorded = record_span(ctx, "queue-wait", 10.0, 10.5, waited=True)
        assert recorded.parent_id == "ff00ff00"
        assert recorded.duration_s == pytest.approx(0.5)
        assert sink.spans(ctx.trace_id)[0].tags == {"waited": True}

    def test_format_tree_renders_orphans_as_roots(self):
        trace = new_trace_id()
        child = Span(trace, "child", parent_id="00000000").finish()
        text = format_tree([child])
        assert "child" in text and trace in text
        assert format_tree([]) == "(no spans recorded)"

    def test_chrome_export_shape(self, tmp_path):
        root = Span(new_trace_id(), "root").finish()
        leaf = Span(root.trace_id, "leaf", parent_id=root.span_id).finish()
        doc = to_chrome([root, leaf])
        assert {event["ph"] for event in doc["traceEvents"]} == {"X"}
        for event in doc["traceEvents"]:
            assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)
        out = tmp_path / "trace.json"
        dump_chrome([root, leaf], out)
        assert json.loads(out.read_text())["traceEvents"] == doc["traceEvents"]


# ---------------------------------------------------------------------------
# Metrics: counters, gauges, histograms, exposition
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_empty_window_is_defined(self):
        hist = Histogram("h_seconds", "h")
        assert hist.percentile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p99"] is None and snap["mean"] is None
        assert hist.snapshot_ms()["p50_ms"] is None
        # No quantile samples on an empty window, but _sum/_count scrape.
        suffixes = [suffix for suffix, _l, _v in hist.samples()]
        assert suffixes == ["_sum", "_count"]

    def test_single_sample_is_every_percentile(self):
        hist = Histogram("h_seconds", "h")
        hist.observe(0.25)
        for q in (0.5, 0.9, 0.99):
            assert hist.percentile(q) == pytest.approx(0.25)
        snap = hist.snapshot()
        assert snap["count"] == 1 and snap["mean"] == pytest.approx(0.25)

    def test_wraparound_window_keeps_recent_cumulative_totals(self):
        hist = Histogram("h_seconds", "h", window=4)
        for value in range(100):  # 0..99; only 96..99 survive the window
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["count"] == 100  # cumulative over the metric's life
        assert snap["mean"] == pytest.approx((96 + 97 + 98 + 99) / 4)
        assert hist.percentile(0.5) in (97.0, 98.0)
        assert hist.percentile(0.99) == 99.0

    def test_snapshot_ms_keeps_the_legacy_latency_shape(self):
        hist = Histogram("h_seconds", "h")
        for value in (0.010, 0.020, 0.030):
            hist.observe(value)
        snap = hist.snapshot_ms()
        assert {"count", "p50_ms", "p99_ms", "mean_ms"} <= set(snap)
        assert snap["p50_ms"] == pytest.approx(20.0)
        assert snap["mean_ms"] == pytest.approx(20.0)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("h_seconds", "h", window=0)

    def test_observe_is_thread_safe(self):
        hist = Histogram("h_seconds", "h", window=64)
        threads = [
            threading.Thread(
                target=lambda: [hist.observe(0.001) for _ in range(500)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.snapshot()["count"] == 2000


class TestMetricsRegistry:
    def test_counter_rejects_negative_and_tracks_labels(self):
        counter = Counter("ops_total", "ops", ("op",))
        counter.inc(op="solve")
        counter.inc(2, op="ping")
        with pytest.raises(ValueError):
            counter.inc(-1, op="solve")
        assert counter.value(op="solve") == 1
        assert counter.total() == 3
        assert counter.as_dict() == {"ping": 2, "solve": 1}

    def test_gauge_callback_errors_scrape_as_nan(self):
        def boom():
            raise RuntimeError("scrape-time failure")

        gauge = Gauge("depth", "d", fn=boom)
        ((_suffix, _labels, value),) = list(gauge.samples())
        assert math.isnan(value)

    def test_registry_create_or_get_and_type_mismatch(self):
        registry = MetricsRegistry()
        counter = registry.counter("a_total", "a")
        assert registry.counter("a_total", "a") is counter
        with pytest.raises(ValueError):
            registry.gauge("a_total", "now a gauge?")
        assert registry.get("a_total") is counter
        assert len(registry) == 1

    def test_exposition_round_trips_through_the_parser(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("op",)).inc(3, op="solve")
        registry.gauge("open_conns", "open").set(2)
        hist = registry.histogram("lat_seconds", "latency")
        hist.observe(0.5)
        parsed = parse_exposition(registry.expose())
        assert parsed["req_total"]['{op="solve"}'] == 3
        assert parsed["open_conns"][""] == 2
        assert parsed["lat_seconds_count"][""] == 1
        assert parsed["lat_seconds"]['{quantile="0.5"}'] == pytest.approx(0.5)

    def test_exposition_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("weird_total", "w", ("path",)).inc(
            path='a"b\\c\nnewline'
        )
        parsed = parse_exposition(registry.expose())
        (label_string,) = parsed["weird_total"]
        assert '\\"' in label_string and "\\n" in label_string

    def test_parser_rejects_malformed_exposition(self):
        for bad in ("just words\n", "name_only\n", "x{unclosed 1\n"):
            with pytest.raises(ValueError):
                parse_exposition(bad)

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c").inc()
        registry.histogram("h_seconds", "h").observe(1.0)
        json.dumps(registry.snapshot())  # must not raise


# ---------------------------------------------------------------------------
# Response origin accounting (computed / cache / dedup)
# ---------------------------------------------------------------------------

class TestOrigins:
    def test_cache_hit_origin_and_counts(self):
        pair = matching_dual_pair(3)
        with EngineService(method="fk-b", cache=ResultCache()) as service:
            first = service.submit(pair).result()
            second = service.submit(pair).result()
            stats = service.stats()
        assert (first.origin, second.origin) == ("computed", "cache")
        assert (first.cached, second.cached) == (False, True)
        assert stats["by_origin"] == {"computed": 1, "cache": 1, "dedup": 0}

    def test_dedup_joiner_reports_the_primary_elapsed(self):
        # A slow instance at n_jobs=2: the duplicates arrive while the
        # first submit is still computing, so they join it in flight
        # instead of hitting the cache afterwards.
        pair = threshold_dual_pair(13, 7)  # ~0.5 s under fk-b
        with EngineService(method="fk-b", n_jobs=2, cache=ResultCache()) as service:
            tickets = [service.submit(pair, collect=False) for _ in range(3)]
            responses = [ticket.result() for ticket in tickets]
            stats = service.stats()
        origins = sorted(response.origin for response in responses)
        assert origins == ["computed", "dedup", "dedup"]
        primary = next(r for r in responses if r.origin == "computed")
        assert primary.elapsed_s > 0.0
        for response in responses:
            # The fix under test: joiners report the primary's real
            # solve time, not the 0.0 they used to.
            assert response.elapsed_s == pytest.approx(primary.elapsed_s)
            assert response.is_dual == primary.is_dual
        assert stats["by_origin"]["dedup"] == 2

    def test_origin_travels_the_wire(self):
        pair = matching_dual_pair(2)
        with DualityServer(method="fk-b", cache=ResultCache()) as server:
            with DualityClient(*server.address) as client:
                first = client.solve(*pair)
                second = client.solve(*pair)
                stats = client.stats()
        assert first["origin"] == "computed"
        assert second["origin"] == "cache" and second["cached"] is True
        assert stats["responses_by_origin"] == {
            "computed": 1,
            "cache": 1,
            "dedup": 0,
        }


# ---------------------------------------------------------------------------
# Trace propagation: client edge → server phases → worker process
# ---------------------------------------------------------------------------

class TestTracePropagation:
    def test_service_trace_reaches_the_worker_process(self):
        sink = TraceSink()
        trace_id = new_trace_id()
        ctx = SpanContext(trace_id, None, sink)
        with EngineService(method="fk-b", n_jobs=2) as service:
            response = service.submit(
                threshold_dual_pair(6, 3), trace=ctx
            ).result()
        assert response.is_dual
        spans = {item.name: item for item in sink.spans(trace_id)}
        assert {"cache-lookup", "queue-wait", "worker-solve"} <= set(spans)
        # The worker span was recorded in another process and
        # piggybacked home on the result.
        import os

        assert spans["worker-solve"].pid != os.getpid()
        assert spans["engine:fk-b"].parent_id == spans["worker-solve"].span_id

    def test_client_minted_trace_id_spans_the_whole_tree(self):
        pair = threshold_dual_pair(6, 3)
        with DualityServer(method="fk-b", n_jobs=2) as server:
            with DualityClient(*server.address, trace=True) as client:
                response = client.solve(*pair)
        assert response["dual"] is True
        spans = client.trace_sink.spans()
        assert len({item.trace_id for item in spans}) == 1
        by_name = {item.name: item for item in spans}
        for phase in (
            "client-request",
            "server",
            "parse",
            "cache-lookup",
            "queue-wait",
            "worker-solve",
            "serialize",
        ):
            assert phase in by_name, f"missing span {phase!r}"
        # One properly-nested tree: server under the client edge, every
        # service phase under the server span, the engine in the worker.
        edge = by_name["client-request"]
        assert by_name["server"].parent_id == edge.span_id
        for phase in ("parse", "cache-lookup", "queue-wait", "worker-solve"):
            assert by_name[phase].parent_id == by_name["server"].span_id
        assert by_name["engine:fk-b"].parent_id == by_name["worker-solve"].span_id
        # And it exports as valid Chrome trace-event JSON.
        doc = to_chrome(spans)
        assert len(doc["traceEvents"]) == len(spans)

    def test_pipelined_out_of_order_traces_stay_separate(self):
        # Mixed instance sizes at n_jobs=2 → completion order differs
        # from send order; every response must still carry exactly its
        # own request's spans, nested under its own client edge.
        instances = [
            threshold_dual_pair(7, 4),
            matching_dual_pair(2),
            hard_nondual_pair(3),
            matching_dual_pair(3),
        ]
        with DualityServer(method="fk-b", n_jobs=2) as server:
            with DualityClient(*server.address, trace=True) as client:
                responses = client.solve_many(instances)
        assert [r["ok"] for r in responses] == [True] * len(instances)
        spans = client.trace_sink.spans()
        trace_ids = {item.trace_id for item in spans}
        assert trace_ids == {r["trace"]["id"] for r in responses}
        assert len(trace_ids) == len(instances)
        for trace_id in trace_ids:
            members = client.trace_sink.spans(trace_id)
            by_name = {item.name: item for item in members}
            assert {"client-request", "server", "worker-solve"} <= set(by_name)
            assert by_name["server"].parent_id == by_name["client-request"].span_id

    def test_untraced_requests_carry_no_trace_payload(self):
        pair = matching_dual_pair(2)
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as client:
                response = client.solve(*pair)
        assert "trace" not in response

    def test_tracing_does_not_perturb_verdicts(self):
        instances = [
            matching_dual_pair(3),
            hard_nondual_pair(3),
            threshold_dual_pair(6, 3),
        ]
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as plain_client:
                plain = plain_client.solve_many(instances)
            with DualityClient(*server.address, trace=True) as traced_client:
                traced = traced_client.solve_many(instances)
        for before, after in zip(plain, traced):
            assert before["verdict"] == after["verdict"]
            assert before["witness"] == after["witness"]


# ---------------------------------------------------------------------------
# Server-side metrics & per-op accounting on the wire
# ---------------------------------------------------------------------------

class TestServerMetrics:
    def test_metrics_op_returns_valid_exposition(self):
        pair = matching_dual_pair(2)
        with DualityServer(method="fk-b", cache=ResultCache()) as server:
            with DualityClient(*server.address) as client:
                client.solve(*pair)
                client.solve(*pair)  # cache hit
                exposition = client.metrics()
        parsed = parse_exposition(exposition)
        assert parsed["requests_total"]['{op="solve"}'] == 2
        assert parsed["solve_latency_seconds_count"][""] == 2
        assert parsed["cache_hits_total"][""] == 1
        assert parsed["cache_misses_total"][""] == 1
        assert parsed["pool_workers"][""] >= 1

    def test_stats_tallies_requests_and_errors_per_op(self):
        good = matching_dual_pair(2)
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as client:
                client.solve(*good)
                client.ping()
                from repro.net import RequestError

                with pytest.raises(RequestError):
                    client.solve(*good, method="no-such-engine")
                stats = client.stats()
        assert stats["requests_by_op"]["solve"] == 1
        assert stats["requests_by_op"]["ping"] == 1
        assert stats["requests_by_op"]["stats"] == 1
        assert stats["errors_by_op"] == {"solve": 1}
        # The plain totals stay consistent with the per-op tallies.
        assert stats["requests_served"] == sum(stats["requests_by_op"].values())
        assert stats["errors"] == sum(stats["errors_by_op"].values())

    def test_slow_request_log_is_structured_json(self, capsys):
        pair = matching_dual_pair(2)
        with DualityServer(method="fk-b", slow_ms=0.0) as server:
            with DualityClient(*server.address) as client:
                client.solve(*pair)
        err = capsys.readouterr().err
        lines = [json.loads(line) for line in err.splitlines() if line.strip()]
        slow = [line for line in lines if line.get("event") == "slow_request"]
        assert slow, f"no slow_request line in stderr: {err!r}"
        assert slow[0]["elapsed_ms"] >= 0
        assert "worker-solve" in slow[0]["spans_ms"]


# ---------------------------------------------------------------------------
# Per-engine timing capture
# ---------------------------------------------------------------------------

class TestTimings:
    def test_structural_features_are_cheap_scans(self):
        g, h = threshold_dual_pair(6, 3)
        features = structural_features(mask_payload(g), mask_payload(h))
        assert features["n_vertices"] == 6
        assert features["g_edges"] == len(g) and features["h_edges"] == len(h)
        assert features["g_max_edge"] == max(len(e) for e in g.edges)
        assert features["h_max_degree"] >= 1
        assert features["volume"] == len(g) * len(h)

    def test_timing_log_records_and_loads(self, tmp_path):
        path = tmp_path / "timings.jsonl"
        with TimingLog(path) as log:
            log.record("fk-b", 0.5, features={"n_vertices": 4}, dual=True)
            log.record("bm", 0.25, shard=2, trace_id="ab" * 8)
            assert log.records_written == 2
        rows = load_timings(path)
        assert [row["engine"] for row in rows] == ["fk-b", "bm"]
        assert rows[0]["n_vertices"] == 4 and rows[0]["dual"] is True
        assert rows[1]["shard"] == 2 and rows[1]["trace_id"] == "ab" * 8

    def test_load_timings_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "timings.jsonl"
        path.write_text(
            '{"engine": "fk-b", "elapsed_s": 1.0}\n'
            "not json at all\n"
            '{"engine": "bm", "elapsed_s": 2.0}\n',
            encoding="utf-8",
        )
        rows = load_timings(path)
        assert [row["engine"] for row in rows] == ["fk-b", "bm"]

    def test_solve_many_writes_one_row_per_computed_instance(self, tmp_path):
        path = tmp_path / "timings.jsonl"
        instances = [matching_dual_pair(2), threshold_dual_pair(6, 3)]
        items = solve_many(instances, method="fk-b", timings=path)
        assert all(item.is_dual for item in items)
        rows = load_timings(path)
        assert len(rows) == 2
        for row in rows:
            assert row["engine"] == "fk-b"
            assert row["elapsed_s"] > 0
            assert row["n_vertices"] > 0 and row["volume"] > 0

    def test_service_timing_rows_include_portfolio_engines(self, tmp_path):
        path = tmp_path / "timings.jsonl"
        with EngineService(method="portfolio", n_jobs=1, timings=path) as service:
            service.submit(matching_dual_pair(2)).result()
        rows = load_timings(path)
        assert any(row["engine"] == "portfolio" for row in rows)
        portfolio_rows = [row for row in rows if row.get("role") == "portfolio"]
        assert portfolio_rows, "per-engine portfolio timings missing"
        assert any(row.get("winner") for row in portfolio_rows)

    def test_cache_hits_are_not_recorded_as_solves(self, tmp_path):
        path = tmp_path / "timings.jsonl"
        pair = matching_dual_pair(3)
        with EngineService(
            method="fk-b", cache=ResultCache(), timings=path
        ) as service:
            service.submit(pair).result()
            service.submit(pair).result()  # cache hit: no new row
            assert service.stats()["timings_recorded"] == 1
        assert len(load_timings(path)) == 1


# ---------------------------------------------------------------------------
# The trace CLI
# ---------------------------------------------------------------------------

class TestTraceCli:
    def test_trace_command_prints_tree_and_exports_chrome(
        self, tmp_path, capsys
    ):
        instance = _write_instance(
            tmp_path / "m3.hg", matching_dual_pair(3)
        )
        out = tmp_path / "trace.json"
        status = main(
            ["trace", instance, "--repeat", "2", "--trace-out", str(out)]
        )
        captured = capsys.readouterr().out
        assert status == 0
        assert "origin=computed" in captured and "origin=cache" in captured
        assert "worker-solve" in captured and "cache-lookup" in captured
        doc = json.loads(out.read_text())
        assert doc["traceEvents"], "empty Chrome export"

    def test_client_metrics_flag_scrapes_without_stdin(self, tmp_path, capsys):
        with DualityServer(method="fk-b") as server:
            host, port = server.address
            status = main(["client", f"{host}:{port}", "--metrics"])
        captured = capsys.readouterr().out
        assert status == 0
        parsed = parse_exposition(captured)
        assert "requests_total" in parsed
