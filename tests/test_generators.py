"""Tests for the workload generators (duality status must be as documented)."""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    cycle_graph_edges,
    degenerate_pairs,
    disjoint_union_pair,
    graph_cover_pair,
    hard_nondual_pair,
    matching,
    matching_dual,
    matching_dual_pair,
    path_graph_edges,
    perturb_add_foreign_edge,
    perturb_drop_edge,
    perturb_enlarge_edge,
    random_dual_pair,
    random_simple,
    random_uniform,
    self_dual_majority,
    simple_union_workload,
    standard_dual_suite,
    threshold,
    threshold_dual,
    threshold_dual_pair,
)


class TestMatching:
    def test_structure(self):
        m = matching(3)
        assert len(m) == 3
        assert all(len(e) == 2 for e in m.edges)
        assert m.vertices == set(range(6))

    def test_dual_has_exponential_size(self):
        for k in range(5):
            assert len(matching_dual(k)) == 2 ** k

    def test_pair_is_dual(self):
        for k in range(5):
            g, h = matching_dual_pair(k)
            assert transversal_hypergraph(g) == h

    def test_matching_zero(self):
        g, h = matching_dual_pair(0)
        assert g.is_trivial_false()
        assert h.is_trivial_true()

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            matching(-1)


class TestThreshold:
    def test_counts(self):
        from math import comb

        assert len(threshold(5, 2)) == comb(5, 2)

    def test_default_k_is_majority(self):
        th = threshold(5)
        assert all(len(e) == 3 for e in th.edges)

    def test_dual_pair(self):
        for n in range(1, 7):
            for k in range(1, n + 1):
                g, h = threshold_dual_pair(n, k)
                assert set(transversal_hypergraph(g).edges) == set(h.edges)

    def test_self_dual_majority(self):
        for n in (1, 3, 5):
            m = self_dual_majority(n)
            assert transversal_hypergraph(m) == m

    def test_self_dual_majority_requires_odd(self):
        with pytest.raises(ValueError):
            self_dual_majority(4)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            threshold(0)
        with pytest.raises(ValueError):
            threshold(3, 5)
        with pytest.raises(ValueError):
            threshold_dual(3, 0)


class TestGraphFamilies:
    def test_path_structure(self):
        p = path_graph_edges(4)
        assert len(p) == 3

    def test_cycle_structure(self):
        c = cycle_graph_edges(4)
        assert len(c) == 4

    def test_cover_pair_is_dual(self):
        g, h = graph_cover_pair(path_graph_edges(5))
        assert transversal_hypergraph(g) == h

    def test_cover_pair_rejects_non_graphs(self):
        with pytest.raises(ValueError):
            graph_cover_pair(Hypergraph([{1, 2, 3}]))

    def test_small_sizes_rejected(self):
        with pytest.raises(ValueError):
            path_graph_edges(1)
        with pytest.raises(ValueError):
            cycle_graph_edges(2)


class TestRandomFamilies:
    def test_uniform_is_simple_and_seeded(self):
        a = random_uniform(8, 3, 5, seed=7)
        b = random_uniform(8, 3, 5, seed=7)
        assert a == b
        assert a.is_simple()

    def test_uniform_size_bound(self):
        with pytest.raises(ValueError):
            random_uniform(3, 5, 2)

    def test_random_simple_is_simple(self):
        for seed in range(5):
            assert random_simple(8, 6, seed=seed).is_simple()

    def test_random_dual_pair_is_dual(self):
        g, h = random_dual_pair(6, 4, seed=3)
        assert transversal_hypergraph(g) == h


class TestPerturbations:
    def test_drop_edge_breaks_duality(self):
        g, h = matching_dual_pair(3)
        broken = perturb_drop_edge(h)
        assert transversal_hypergraph(g) != broken

    def test_drop_edge_requires_edges(self):
        with pytest.raises(ValueError):
            perturb_drop_edge(Hypergraph.empty())

    def test_enlarge_edge_breaks_minimality(self):
        g, h = matching_dual_pair(2)
        broken = perturb_enlarge_edge(h)
        assert transversal_hypergraph(g) != broken

    def test_enlarge_edge_requires_edges(self):
        with pytest.raises(ValueError):
            perturb_enlarge_edge(Hypergraph.empty())

    def test_add_foreign_edge(self):
        g, h = matching_dual_pair(2)
        bigger = perturb_add_foreign_edge(h, g)
        assert len(bigger) == len(h) + 1 or len(bigger) == len(h)

    def test_hard_nondual_pair(self):
        g, h = hard_nondual_pair(3)
        assert transversal_hypergraph(g) != h


class TestCompositeWorkloads:
    def test_disjoint_union_pair_is_dual(self):
        pair = disjoint_union_pair(matching_dual_pair(2), threshold_dual_pair(3, 2))
        g, h = pair
        assert set(transversal_hypergraph(g).edges) == set(h.edges)

    def test_simple_union_workload_is_dual(self):
        g, h = simple_union_workload(2, 3)
        assert set(transversal_hypergraph(g).edges) == set(h.edges)

    def test_standard_suite_all_dual(self):
        for name, g, h in standard_dual_suite(max_matching=4, max_threshold=5):
            assert set(transversal_hypergraph(g).edges) == set(h.edges), name

    def test_degenerate_pairs_statuses(self):
        for name, g, h, expected in degenerate_pairs():
            actual = transversal_hypergraph(g.minimized()) == h.minimized()
            assert actual == expected, name


class TestAcyclicChain:
    def test_shape_and_acyclicity(self):
        from repro.hypergraph.generators import acyclic_chain
        from repro.hypergraph.structure import is_alpha_acyclic

        for k in (1, 2, 4):
            g = acyclic_chain(k)
            assert len(g) == k
            assert is_alpha_acyclic(g)
            assert len(g.vertices) == 2 * k + 1

    def test_prefix_namespacing(self):
        from repro.hypergraph.generators import acyclic_chain

        left = acyclic_chain(2, prefix="L.")
        right = acyclic_chain(2, prefix="R.")
        assert not (left.vertices & right.vertices)

    def test_rejects_nonpositive(self):
        from repro.hypergraph.generators import acyclic_chain

        with pytest.raises(ValueError):
            acyclic_chain(0)

    def test_dual_pair(self):
        from repro.hypergraph import transversal_hypergraph
        from repro.hypergraph.generators import acyclic_dual_pair

        g, h = acyclic_dual_pair(3)
        assert h == transversal_hypergraph(g)
