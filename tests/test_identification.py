"""Tests for Proposition 1.1: identification via Dual, and the enumerator."""

from __future__ import annotations

import pytest

from repro.errors import InconsistentBorderError
from repro.hypergraph import Hypergraph
from repro.itemsets import (
    BooleanRelation,
    additional_itemsets_exist,
    borders,
    decide_identification,
    enumerate_borders,
    seed_maximal_frequent,
    validate_claimed_borders,
)
from repro.itemsets.datasets import (
    contrast_pair,
    dense_random,
    market_basket,
    planted_borders,
    single_pattern,
)

METHODS = ("bm", "fk-a", "fk-b", "logspace", "guess-check", "transversal")


@pytest.fixture
def planted():
    rel, z, expected = planted_borders(n_items=6, z=2, seed=7)
    is_plus, is_minus = borders(rel, z)
    return rel, z, is_plus, is_minus


class TestCompleteBorders:
    @pytest.mark.parametrize("method", METHODS)
    def test_complete_is_recognised(self, planted, method):
        rel, z, is_plus, is_minus = planted
        outcome = decide_identification(rel, z, is_minus, is_plus, method=method)
        assert outcome.complete
        assert outcome.new_maximal_frequent is None
        assert outcome.new_minimal_infrequent is None

    def test_boundary_threshold_case(self):
        rel, _ = single_pattern(n_items=4, z=1)
        z = len(rel)
        outcome = decide_identification(
            rel,
            z,
            Hypergraph([frozenset()], vertices=rel.items),
            Hypergraph.empty(rel.items),
        )
        assert outcome.complete


class TestIncompleteBorders:
    @pytest.mark.parametrize("method", METHODS)
    def test_missing_frequent_set_found(self, planted, method):
        rel, z, is_plus, is_minus = planted
        partial = Hypergraph(list(is_plus.edges)[:-1], vertices=rel.items)
        outcome = decide_identification(rel, z, is_minus, partial, method=method)
        assert not outcome.complete
        new_set = outcome.new_maximal_frequent or outcome.new_minimal_infrequent
        assert new_set is not None
        if outcome.new_maximal_frequent is not None:
            assert outcome.new_maximal_frequent in set(is_plus.edges)
            assert outcome.new_maximal_frequent not in set(partial.edges)
        else:
            assert outcome.new_minimal_infrequent in set(is_minus.edges)

    @pytest.mark.parametrize("method", METHODS)
    def test_missing_infrequent_set_found(self, planted, method):
        rel, z, is_plus, is_minus = planted
        if len(is_minus) == 0:
            pytest.skip("no infrequent border to remove")
        partial = Hypergraph(list(is_minus.edges)[:-1], vertices=rel.items)
        outcome = decide_identification(rel, z, partial, is_plus, method=method)
        assert not outcome.complete
        if outcome.new_minimal_infrequent is not None:
            assert outcome.new_minimal_infrequent in set(is_minus.edges)
            assert outcome.new_minimal_infrequent not in set(partial.edges)
        else:
            assert outcome.new_maximal_frequent in set(is_plus.edges)

    def test_empty_claims(self, planted):
        rel, z, is_plus, is_minus = planted
        outcome = decide_identification(
            rel,
            z,
            Hypergraph.empty(rel.items),
            Hypergraph.empty(rel.items),
        )
        assert not outcome.complete

    def test_boolean_view(self, planted):
        rel, z, is_plus, is_minus = planted
        assert not additional_itemsets_exist(rel, z, is_minus, is_plus)
        partial = Hypergraph(list(is_plus.edges)[:-1], vertices=rel.items)
        assert additional_itemsets_exist(rel, z, is_minus, partial)


class TestValidation:
    def test_infrequent_claimed_as_frequent(self, planted):
        rel, z, is_plus, is_minus = planted
        bogus = Hypergraph([rel.items], vertices=rel.items)
        if (frozenset(rel.items),) == tuple(is_plus.edges):
            pytest.skip("full set genuinely frequent here")
        with pytest.raises(InconsistentBorderError):
            validate_claimed_borders(rel, z, is_minus, bogus)

    def test_non_maximal_claim(self, planted):
        rel, z, is_plus, is_minus = planted
        biggest = max(is_plus.edges, key=len)
        if not biggest:
            pytest.skip("maximal frequent set is empty")
        shrunk = Hypergraph([set(list(biggest)[:-1])], vertices=rel.items)
        with pytest.raises(InconsistentBorderError):
            validate_claimed_borders(rel, z, Hypergraph.empty(rel.items), shrunk)

    def test_unknown_items_rejected(self, planted):
        rel, z, is_plus, is_minus = planted
        alien = Hypergraph([{"zz"}], vertices=set(rel.items) | {"zz"})
        with pytest.raises(InconsistentBorderError):
            validate_claimed_borders(rel, z, alien, is_plus)


class TestEnumeration:
    @pytest.mark.parametrize(
        "maker, z",
        [
            (lambda: market_basket(n_items=7, n_rows=25, seed=11), 5),
            (lambda: dense_random(n_items=6, n_rows=18, density=0.5, seed=3), 4),
            (lambda: contrast_pair(n_items=7, seed=4)[0], 2),
        ],
    )
    def test_enumerates_exact_borders(self, maker, z):
        rel = maker()
        expected = borders(rel, z)
        is_plus, is_minus, trace = enumerate_borders(rel, z, method="bm")
        assert (is_plus, is_minus) == expected
        # The trace adds exactly the non-seed border sets.
        assert trace.additions() == len(is_plus) + len(is_minus) - 1

    def test_seed(self):
        rel = market_basket(n_items=6, n_rows=20, seed=13)
        seed = seed_maximal_frequent(rel, 4)
        from repro.itemsets import is_frequent

        assert seed is not None
        assert is_frequent(rel, seed, 4)

    def test_seed_none_when_everything_infrequent(self):
        rel, _ = single_pattern(n_items=3, z=1)
        assert seed_maximal_frequent(rel, len(rel)) is None

    def test_degenerate_enumeration(self):
        rel, _ = single_pattern(n_items=3, z=1)
        is_plus, is_minus, trace = enumerate_borders(rel, len(rel))
        assert is_plus.is_trivial_false()
        assert set(is_minus.edges) == {frozenset()}
        assert trace.additions() == 0

    def test_iteration_guard(self):
        rel = market_basket(n_items=6, n_rows=20, seed=17)
        with pytest.raises(RuntimeError):
            enumerate_borders(rel, 4, max_iterations=1)

    @pytest.mark.parametrize("method", ("fk-b", "logspace"))
    def test_engine_choice_does_not_change_result(self, method):
        rel = market_basket(n_items=6, n_rows=20, seed=19)
        z = 4
        reference = enumerate_borders(rel, z, method="bm")[:2]
        assert enumerate_borders(rel, z, method=method)[:2] == reference
