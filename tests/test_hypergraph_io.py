"""Tests for the ``.hg`` text format."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import ParseError
from repro.hypergraph import Hypergraph
from repro.hypergraph import io as hgio

from tests.conftest import hypergraphs


class TestLoads:
    def test_basic(self):
        hg = hgio.loads("1 2\n3\n")
        assert set(hg.edges) == {frozenset({1, 2}), frozenset({3})}

    def test_comments_and_blanks(self):
        hg = hgio.loads("# heading\n\n1 2\n  # inline\n3\n")
        assert len(hg) == 2

    def test_empty_edge_token(self):
        hg = hgio.loads("-\n")
        assert hg.is_trivial_true()

    def test_universe_directive(self):
        hg = hgio.loads("% vertices: 1 2 3\n1 2\n")
        assert hg.vertices == {1, 2, 3}

    def test_string_tokens(self):
        hg = hgio.loads("alice bob\n")
        assert set(hg.edges) == {frozenset({"alice", "bob"})}

    def test_unknown_directive_rejected(self):
        with pytest.raises(ParseError):
            hgio.loads("% foo: bar\n")

    def test_edges_outside_universe_rejected(self):
        with pytest.raises(ParseError):
            hgio.loads("% vertices: 1\n1 2\n")

    def test_empty_text_gives_empty_hypergraph(self):
        assert hgio.loads("").is_trivial_false()


class TestRoundTrip:
    def test_dump_load_file(self, tmp_path):
        hg = Hypergraph([{1, 2}, {3}], vertices={1, 2, 3, 4})
        path = tmp_path / "g.hg"
        hgio.dump(hg, path)
        assert hgio.load(path) == hg

    def test_many(self, tmp_path):
        hgs = [Hypergraph([{1}]), Hypergraph([{2, 3}])]
        path = tmp_path / "many.hg"
        hgio.dump_many(hgs, path)
        assert hgio.load_many(path) == hgs

    @given(hypergraphs())
    def test_text_roundtrip_preserves_everything(self, hg):
        assert hgio.loads(hgio.dumps(hg)) == hg

    def test_without_universe_loses_isolated_vertices(self):
        hg = Hypergraph([{1}], vertices={1, 2})
        back = hgio.loads(hgio.dumps(hg, include_universe=False))
        assert back.vertices == {1}
