"""Tests for :mod:`repro.abduction` — Horn abduction via borders and Dual."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError, VertexError
from repro.hypergraph import Hypergraph
from repro.logic import HornClause, HornTheory
from repro.abduction import (
    AbductionProblem,
    is_explanation,
    maximal_non_explanations,
    minimal_explanations,
    minimal_explanations_brute_force,
    necessary_hypotheses,
    relevant_hypotheses,
    verify_explanation_completeness,
)
from repro.abduction.explanations import maximal_non_explanations_brute_force


def weather_problem() -> AbductionProblem:
    """rain→wet, sprinkler→wet, wet∧cold→ice, cold; explain ice."""
    theory = HornTheory.from_tuples(
        [
            (("rain",), "wet"),
            (("sprinkler",), "wet"),
            (("wet", "cold"), "ice"),
            ((), "cold"),
        ],
        atoms=["rain", "sprinkler", "wet", "cold", "ice"],
    )
    return AbductionProblem(
        theory, hypotheses={"rain", "sprinkler", "cold"}, query="ice"
    )


def chain_problem() -> AbductionProblem:
    """a→b→c→d; explain d from hypotheses {a, b, c}."""
    theory = HornTheory.from_tuples(
        [(("a",), "b"), (("b",), "c"), (("c",), "d")], atoms="abcd"
    )
    return AbductionProblem(theory, hypotheses="abc", query="d")


class TestAbductionProblem:
    def test_explains(self):
        problem = weather_problem()
        assert problem.explains({"rain"})
        assert problem.explains({"sprinkler", "cold"})
        assert not problem.explains(set())
        assert not problem.explains({"cold"})

    def test_is_explanation_alias(self):
        assert is_explanation(weather_problem(), {"rain"})

    def test_rejects_non_hypothesis_atoms(self):
        problem = weather_problem()
        with pytest.raises(VertexError):
            problem.explains({"wet"})

    def test_rejects_unknown_query(self):
        theory = HornTheory.from_tuples([((), "a")], atoms="ab")
        with pytest.raises(VertexError):
            AbductionProblem(theory, hypotheses={"b"}, query="zzz")

    def test_rejects_unknown_hypotheses(self):
        theory = HornTheory.from_tuples([((), "a")], atoms="ab")
        with pytest.raises(VertexError):
            AbductionProblem(theory, hypotheses={"q"}, query="a")

    def test_oracle_requires_definite_theory(self):
        theory = HornTheory.from_tuples(
            [(("a",), "q"), (("a", "b"), None)], atoms="abq"
        )
        problem = AbductionProblem(theory, hypotheses="ab", query="q")
        with pytest.raises(InvalidInstanceError):
            problem.oracle()

    def test_consistency_side_condition(self):
        # explaining via an inconsistent extension does not count
        theory = HornTheory.from_tuples(
            [(("a",), "q"), (("b",), None)], atoms="abq"
        )
        problem = AbductionProblem(theory, hypotheses="ab", query="q")
        assert problem.explains({"a"})
        assert not problem.explains({"b"})


class TestMinimalExplanations:
    def test_weather(self):
        problem = weather_problem()
        expl = minimal_explanations(problem)
        assert set(expl.edges) == {
            frozenset({"rain"}),
            frozenset({"sprinkler"}),
        }

    def test_chain_minimal_is_last_link(self):
        expl = minimal_explanations(chain_problem())
        # any single hypothesis suffices; minimal ones are all singletons
        assert set(expl.edges) == {
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"c"}),
        }

    def test_learner_agrees_with_brute_force(self):
        for factory in (weather_problem, chain_problem):
            assert minimal_explanations(factory()) == (
                minimal_explanations_brute_force(factory())
            )
            assert maximal_non_explanations(factory()) == (
                maximal_non_explanations_brute_force(factory())
            )

    def test_unexplainable_query(self):
        theory = HornTheory.from_tuples(
            [(("a",), "b")], atoms="abq"
        )
        problem = AbductionProblem(theory, hypotheses="ab", query="q")
        assert len(minimal_explanations(problem)) == 0
        non = maximal_non_explanations(problem)
        assert non.edges == (frozenset({"a", "b"}),)

    def test_trivially_true_query(self):
        theory = HornTheory.from_tuples([((), "q")], atoms="aq")
        problem = AbductionProblem(theory, hypotheses="a", query="q")
        expl = minimal_explanations(problem)
        assert expl.edges == (frozenset(),)  # the empty explanation

    def test_necessary_and_relevant(self):
        problem = weather_problem()
        expl = minimal_explanations(problem)
        assert necessary_hypotheses(expl) == frozenset()
        assert relevant_hypotheses(expl) == frozenset({"rain", "sprinkler"})
        single = Hypergraph([{"a", "b"}, {"a", "c"}])
        assert necessary_hypotheses(single) == frozenset({"a"})
        assert relevant_hypotheses(single) == frozenset("abc")
        assert necessary_hypotheses(Hypergraph.empty("ab")) == frozenset()
        assert relevant_hypotheses(Hypergraph.empty("ab")) == frozenset()

    @given(
        st.lists(
            st.tuples(
                st.frozensets(
                    st.sampled_from("abcde"), max_size=2
                ),
                st.sampled_from("abcdeq"),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_learner_route_matches_brute_force_on_random_theories(
        self, clause_specs
    ):
        theory = HornTheory.from_tuples(clause_specs, atoms="abcdeq")
        problem = AbductionProblem(theory, hypotheses="abc", query="q")
        assert minimal_explanations(problem) == (
            minimal_explanations_brute_force(problem)
        )


class TestCompletenessDual:
    @pytest.mark.parametrize("method", ["transversal", "bm", "fk-b", "logspace"])
    def test_complete_borders_verify(self, method):
        problem = weather_problem()
        expl = minimal_explanations(problem)
        non = maximal_non_explanations(problem)
        result = verify_explanation_completeness(
            problem, expl, non, method=method
        )
        assert result.is_dual

    def test_incomplete_borders_are_refuted(self):
        problem = chain_problem()
        expl = minimal_explanations(problem)
        non = maximal_non_explanations(problem)
        partial = Hypergraph(
            list(expl.edges)[:-1], vertices=problem.hypotheses
        )
        result = verify_explanation_completeness(problem, partial, non)
        assert not result.is_dual

    def test_validation_rejects_non_explanation(self):
        problem = weather_problem()
        non = maximal_non_explanations(problem)
        bogus = Hypergraph([{"cold"}], vertices=problem.hypotheses)
        with pytest.raises(InvalidInstanceError):
            verify_explanation_completeness(problem, bogus, non)

    def test_validation_rejects_non_minimal_explanation(self):
        problem = weather_problem()
        non = maximal_non_explanations(problem)
        fat = Hypergraph([{"rain", "cold"}], vertices=problem.hypotheses)
        with pytest.raises(InvalidInstanceError):
            verify_explanation_completeness(problem, fat, non)

    def test_validation_rejects_wrong_non_explanation(self):
        problem = weather_problem()
        expl = minimal_explanations(problem)
        bogus = Hypergraph([{"rain"}], vertices=problem.hypotheses)
        with pytest.raises(InvalidInstanceError):
            verify_explanation_completeness(problem, expl, bogus)

    def test_validation_rejects_non_maximal_non_explanation(self):
        problem = chain_problem()
        expl = minimal_explanations(problem)
        # ∅ does not explain, but is not maximal (the true maximal is ∅ here?
        # chain: any singleton explains, so the unique maximal non-explanation
        # is ∅ — use a different problem where ∅ is non-maximal):
        weather = weather_problem()
        w_expl = minimal_explanations(weather)
        non_maximal = Hypergraph([frozenset()], vertices=weather.hypotheses)
        with pytest.raises(InvalidInstanceError):
            verify_explanation_completeness(weather, w_expl, non_maximal)
        # and for the chain problem, the genuine border does verify
        non = maximal_non_explanations(problem)
        assert verify_explanation_completeness(problem, expl, non).is_dual
