"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

def edges_strategy(max_vertices: int = 6, max_edges: int = 5):
    """Random small families of edges over integer vertices."""
    vertex = st.integers(min_value=0, max_value=max_vertices - 1)
    edge = st.frozensets(vertex, min_size=0, max_size=max_vertices)
    return st.lists(edge, min_size=0, max_size=max_edges)


@st.composite
def hypergraphs(draw, max_vertices: int = 6, max_edges: int = 5):
    """Arbitrary (possibly non-simple) small hypergraphs."""
    edges = draw(edges_strategy(max_vertices, max_edges))
    return Hypergraph(edges, vertices=range(max_vertices))


@st.composite
def simple_hypergraphs(draw, max_vertices: int = 6, max_edges: int = 5):
    """Arbitrary *simple* small hypergraphs (minimised families)."""
    hg = draw(hypergraphs(max_vertices, max_edges))
    return hg.minimized()


@st.composite
def nonempty_simple_hypergraphs(draw, max_vertices: int = 6, max_edges: int = 5):
    """Simple hypergraphs with at least one nonempty edge and no empty edge."""
    vertex = st.integers(min_value=0, max_value=max_vertices - 1)
    edge = st.frozensets(vertex, min_size=1, max_size=max_vertices)
    edges = draw(st.lists(edge, min_size=1, max_size=max_edges))
    return Hypergraph(edges, vertices=range(max_vertices)).minimized()


# ---------------------------------------------------------------------------
# Common fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def triangle() -> Hypergraph:
    """The triangle graph K3 — self-dual as a 2-uniform hypergraph."""
    return Hypergraph([{0, 1}, {1, 2}, {0, 2}], vertices=range(3))


@pytest.fixture
def majority3() -> Hypergraph:
    """The 2-out-of-3 majority hypergraph (self-dual)."""
    return Hypergraph([{0, 1}, {1, 2}, {0, 2}], vertices=range(3))


@pytest.fixture
def m2_pair():
    """The dual pair (M_2, tr(M_2))."""
    from repro.hypergraph.generators import matching_dual_pair

    return matching_dual_pair(2)
