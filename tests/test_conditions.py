"""Tests for duality entry conditions (Section 2's instance assumptions)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import NotSimpleError
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import matching_dual_pair, perturb_enlarge_edge
from repro.duality.conditions import (
    check_degenerate,
    cross_intersection_holds,
    fredman_khachiyan_weight,
    first_non_minimal_transversal_edge,
    prepare_instance,
    same_relevant_variables,
    subset_of_transversals,
)
from repro.duality.result import FailureKind

from tests.conftest import nonempty_simple_hypergraphs


class TestSubsetOfTransversals:
    def test_full_dual_passes(self):
        g, h = matching_dual_pair(2)
        assert subset_of_transversals(h, g)
        assert subset_of_transversals(g, h)

    def test_partial_dual_passes(self):
        g, h = matching_dual_pair(2)
        partial = Hypergraph(list(h.edges)[:2], vertices=h.vertices)
        assert subset_of_transversals(partial, g)

    def test_non_transversal_edge_detected(self):
        g = Hypergraph([{0, 1}, {2, 3}], vertices=range(4))
        bad = Hypergraph([{0}], vertices=range(4))
        assert first_non_minimal_transversal_edge(bad, g) == frozenset({0})

    def test_non_minimal_edge_detected(self):
        g = Hypergraph([{0, 1}, {2, 3}], vertices=range(4))
        bad = Hypergraph([{0, 1, 2}], vertices=range(4))
        assert first_non_minimal_transversal_edge(bad, g) == frozenset({0, 1, 2})

    @given(nonempty_simple_hypergraphs())
    @settings(max_examples=40)
    def test_exact_dual_always_passes(self, hg):
        tr = transversal_hypergraph(hg)
        assert subset_of_transversals(tr, hg)


class TestQuickConditions:
    def test_cross_intersection(self):
        g = Hypergraph([{0, 1}])
        assert cross_intersection_holds(g, Hypergraph([{0}, {1}]))
        assert not cross_intersection_holds(
            g, Hypergraph([{2}], vertices={0, 1, 2})
        )

    def test_fk_weight_of_dual_pair_at_least_one(self):
        for k in range(1, 5):
            g, h = matching_dual_pair(k)
            assert fredman_khachiyan_weight(g, h) >= 1.0

    def test_fk_weight_small_for_sparse_pair(self):
        g = Hypergraph([{0, 1, 2, 3, 4}])
        h = Hypergraph([{0, 1, 2, 3, 4}])
        assert fredman_khachiyan_weight(g, h) < 1.0

    def test_same_relevant_variables(self):
        g, h = matching_dual_pair(2)
        assert same_relevant_variables(g, h)
        assert not same_relevant_variables(g, Hypergraph([{0, 99}], vertices=g.vertices | {99}))


class TestDegenerate:
    def test_constants(self):
        empty = Hypergraph.empty()
        true = Hypergraph.trivial_true()
        assert check_degenerate(empty, true) is True
        assert check_degenerate(true, empty) is True
        assert check_degenerate(empty, empty) is False
        assert check_degenerate(true, true) is False

    def test_constant_vs_proper(self):
        proper = Hypergraph([{0}])
        assert check_degenerate(Hypergraph.empty(), proper) is False
        assert check_degenerate(proper, Hypergraph.empty()) is False

    def test_proper_pair_is_none(self):
        g, h = matching_dual_pair(1)
        assert check_degenerate(g, h) is None


class TestPrepareInstance:
    def test_valid_instance_passes_and_aligns_universe(self):
        g, h = matching_dual_pair(2)
        entry = prepare_instance(g, h)
        assert entry.ok
        assert entry.g.vertices == entry.h.vertices

    def test_not_simple_raises(self):
        with pytest.raises(NotSimpleError):
            prepare_instance(Hypergraph([{0}, {0, 1}]), Hypergraph([{0}]))

    def test_extra_edge_detected(self):
        g, h = matching_dual_pair(2)
        bad = perturb_enlarge_edge(h)
        entry = prepare_instance(g, bad)
        assert not entry.ok
        assert entry.failure is FailureKind.EXTRA_EDGE
        assert entry.witness in set(bad.edges)

    def test_bad_g_side_detected(self):
        g, h = matching_dual_pair(2)
        bad_g = Hypergraph(tuple(g.edges) + (frozenset({0, 2}),), vertices=g.vertices)
        entry = prepare_instance(bad_g, h)
        assert not entry.ok
        assert entry.failure is FailureKind.EXTRA_EDGE

    def test_constant_mismatch(self):
        entry = prepare_instance(Hypergraph.empty(), Hypergraph.empty())
        assert not entry.ok
        assert entry.failure is FailureKind.CONSTANT_MISMATCH

    def test_partial_dual_still_ok(self):
        # G ⊆ tr(H) and H ⊆ tr(G) hold for strict subsets of the dual —
        # the decomposition (not the entry check) must detect those.
        g, h = matching_dual_pair(2)
        partial = Hypergraph(list(h.edges)[:-1], vertices=h.vertices)
        entry = prepare_instance(g, partial)
        assert entry.ok
