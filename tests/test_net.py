"""Tests for the TCP front end (:mod:`repro.net`).

The contracts:

* **correctness over the wire** — N concurrent clients against one
  server get verdicts bit-for-bit identical to serial
  ``decide_duality`` (witnesses through the lossless codec included);
* **fault isolation** — a client disconnecting mid-request, a client
  abandoning its response, and a malformed or oversized request line
  each cost at most their own connection, never the server or the
  other clients;
* **crash-safe persistence** — the cache file on disk is always a
  loadable generation: saves are atomic (``kill -9`` mid-save leaves
  the previous generation), a corrupt file degrades to an empty cache
  with a warning, and a service session that dies after ``drain`` has
  already persisted every verdict it computed.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.duality import decide_duality
from repro.hypergraph import Hypergraph
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    disjoint_union_pair,
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    threshold_dual_pair,
)
from repro.net import (
    AsyncDualityClient,
    AsyncDualityServer,
    DualityClient,
    DualityServer,
    LineTooLong,
    ProtocolError,
    RequestError,
    decode_hypergraph,
    encode_hypergraph,
    parse_address,
)
from repro.net.protocol import parse_request
from repro.parallel import ResultCache, solve_many
from repro.parallel.batch import load_instance
from repro.parallel.codec import decode_vertex_set
from repro.service import EngineService

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"


def _corpus_paths() -> list[Path]:
    return sorted(CORPUS_DIR.glob("*.hg"))


def _instances():
    return [
        matching_dual_pair(3),
        threshold_dual_pair(7, 4),
        hard_nondual_pair(3),
        (
            lambda pair: (pair[0], perturb_drop_edge(pair[1]))
        )(disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1))),
    ]


def _reference_fields(g, h, method="fk-b") -> dict:
    """The wire-comparable projection of a serial decide_duality call."""
    result = decide_duality(g, h, method=method)
    cert = result.certificate
    return {
        "verdict": result.verdict.value,
        "kind": cert.kind.name if cert.kind is not None else None,
        "witness": cert.witness,
        "path": list(cert.path) if cert.path is not None else None,
    }


def _response_fields(response: dict) -> dict:
    return {
        "verdict": response["verdict"],
        "kind": response["kind"],
        "witness": decode_vertex_set(response["witness"]),
        "path": response["path"],
    }


# ---------------------------------------------------------------------------
# Protocol building blocks
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_hypergraph_round_trip_is_lossless(self):
        pairs = _instances()
        for g, h in pairs:
            for hg in (g, h):
                wire = json.loads(json.dumps(encode_hypergraph(hg)))
                back = decode_hypergraph(wire)
                assert back == hg
                assert back.vertices == hg.vertices  # isolated ones too

    def test_tuple_labels_survive_with_exact_types(self):
        g, _h = disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1))
        back = decode_hypergraph(encode_hypergraph(g))
        assert back == g
        assert all(
            any(type(v) is tuple for v in edge) for edge in back.edges
        )

    def test_parse_request_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_request(b"this is not json")
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request(b"[1, 2, 3]")
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request(b'{"op": "explode"}')

    def test_decode_hypergraph_rejects_malformed_payloads(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_hypergraph([1, 2])
        with pytest.raises(ProtocolError, match="malformed hypergraph"):
            decode_hypergraph({"edges": [["?", 0]]})

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7171") == ("127.0.0.1", 7171)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        for bad in ("nohost", "host:", "host:port", ""):
            with pytest.raises(ValueError, match="HOST:PORT"):
                parse_address(bad)


# ---------------------------------------------------------------------------
# The server: correctness over the wire
# ---------------------------------------------------------------------------

class TestServerCorrectness:
    def test_solve_matches_serial_bit_for_bit(self):
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as client:
                for g, h in _instances():
                    response = client.solve(g, h)
                    assert _response_fields(response) == _reference_fields(g, h)

    def test_concurrent_clients_get_serial_identical_verdicts(self):
        instances = _instances()
        references = [_reference_fields(g, h) for g, h in instances]
        errors: list[BaseException] = []

        with DualityServer(method="fk-b", cache=ResultCache()) as server:
            host, port = server.address

            def one_client(order: int) -> None:
                try:
                    with DualityClient(host, port) as client:
                        # Each client hits the instances in a different
                        # rotation so requests interleave on the server.
                        indices = [
                            (order + k) % len(instances)
                            for k in range(len(instances))
                        ]
                        for index in indices:
                            g, h = instances[index]
                            response = client.solve(g, h)
                            assert (
                                _response_fields(response) == references[index]
                            ), f"client {order}, instance {index}"
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [
                threading.Thread(target=one_client, args=(order,))
                for order in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stats = server.stats()

        assert not errors, errors
        assert stats["connections_accepted"] == 4
        assert stats["requests_served"] == 4 * len(_instances())
        # The shared cache answered the repeats: at most one miss per
        # distinct instance ever reached the shared pool.
        assert stats["cache_misses"] == len(_instances())

    def test_solve_many_pipelines_in_order(self):
        instances = _instances()
        with DualityServer(method="bm") as server:
            with DualityClient(*server.address) as client:
                responses = client.solve_many(instances)
        for (g, h), response in zip(instances, responses):
            assert response["ok"]
            assert _response_fields(response) == _reference_fields(g, h, "bm")

    def test_per_request_method_override(self):
        g, h = matching_dual_pair(3)
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as client:
                default = client.solve(g, h)
                overridden = client.solve(g, h, method="bm")
                stats = client.stats()
        assert default["method"] == decide_duality(g, h, method="fk-b").method
        assert overridden["method"] == decide_duality(g, h, method="bm").method
        assert sorted(stats["methods_served"]) == ["bm", "fk-b"]

    def test_portfolio_method_is_served_uncached(self, tmp_path):
        # A portfolio winner is timing-dependent, so the server must
        # serve it past the shared cache, not through it.
        g, h = matching_dual_pair(3)
        with DualityServer(cache=tmp_path / "cache.json") as server:
            with DualityClient(*server.address) as client:
                first = client.solve(g, h, method="portfolio")
                second = client.solve(g, h, method="portfolio")
        assert first["dual"] is True and second["dual"] is True
        assert first["cached"] is False and second["cached"] is False

    def test_server_side_path_and_client_side_path(self, tmp_path):
        g, h = matching_dual_pair(2)
        path = tmp_path / "m2.hg"
        hgio.dump_many([g, h], path)
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                inline = client.solve_path(path)  # read here, shipped inline
                server_side = client.solve_server_path(path)
        assert inline["dual"] is True
        assert server_side["dual"] is True
        assert server_side["source"] == str(path)

    def test_ping_and_shutdown_request(self):
        server = DualityServer().start()
        with DualityClient(*server.address) as client:
            assert client.ping()
            reply = client.shutdown_server()
            assert reply["shutting_down"]
        server.wait()
        assert server._stopped.is_set()
        server.shutdown()  # idempotent after the fact

    def test_server_lifecycle_edges(self):
        server = DualityServer()
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        server.shutdown()  # never started: still releases the pool
        assert server.pool.closed
        with pytest.raises(RuntimeError, match="shut down"):
            server.start()

    def test_start_is_idempotent(self):
        with DualityServer() as server:
            address = server.address
            assert server.start().address == address

    def test_client_after_close_refuses(self):
        with DualityServer() as server:
            client = DualityClient(*server.address)
            client.close()
            client.close()  # idempotent
            assert client.closed
            with pytest.raises(RuntimeError, match="closed"):
                client.ping()


# ---------------------------------------------------------------------------
# The server: fault isolation
# ---------------------------------------------------------------------------

class TestServerFaultIsolation:
    def test_solver_error_is_a_request_error_not_a_teardown(self):
        not_simple = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                with pytest.raises(RequestError, match="simple"):
                    client.solve(not_simple, h)
                with pytest.raises(RequestError, match="unknown duality method"):
                    client.solve(*matching_dual_pair(2), method="quantum")
                with pytest.raises(RequestError):
                    client.solve_server_path("no/such/file.hg")
                # The same connection still answers real work.
                assert client.solve(*matching_dual_pair(2))["dual"] is True

    def test_solve_many_reports_errors_inline(self):
        not_simple = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        good = matching_dual_pair(2)
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                responses = client.solve_many([good, (not_simple, h), good])
        assert [r["ok"] for r in responses] == [True, False, True]
        assert "simple" in responses[1]["error"]["message"]

    def test_mid_request_disconnect_leaves_server_serving(self):
        g, h = matching_dual_pair(3)
        with DualityServer() as server:
            host, port = server.address
            # A client that dies mid-request: half a JSON line, no
            # terminator, then a hard close.
            raw = socket.create_connection((host, port))
            raw.sendall(b'{"op": "solve", "g": {"edges": [')
            raw.close()
            # A client that sends a full request and vanishes before
            # reading its answer.
            raw = socket.create_connection((host, port))
            raw.sendall(b'{"op": "ping"}\n')
            raw.close()
            time.sleep(0.3)  # let the handlers observe both corpses
            with DualityClient(host, port) as client:
                assert client.solve(g, h)["dual"] is True

    def test_malformed_line_answers_error_and_keeps_serving(self):
        g, h = matching_dual_pair(3)
        with DualityServer() as server:
            host, port = server.address
            with DualityClient(host, port) as victim, DualityClient(
                host, port
            ) as bystander:
                victim._sock.sendall(b"definitely not json\n")
                line = victim._reader.readline()
                error = json.loads(line)
                assert error["ok"] is False
                assert error["error"]["type"] == "ProtocolError"
                # Framing stayed line-aligned: the same connection
                # recovers, and other clients never noticed.
                assert victim.ping()
                assert bystander.solve(g, h)["dual"] is True

    def test_oversized_line_is_refused_and_the_connection_closed(self):
        with DualityServer(max_line_bytes=256) as server:
            host, port = server.address
            raw = socket.create_connection((host, port))
            raw.sendall(b"x" * 1024)  # no newline, over the ceiling
            wire = raw.makefile("rb")
            error = json.loads(wire.readline())
            assert error["ok"] is False
            assert error["error"]["type"] == "LineTooLong"
            # The server hangs up (no resync point past a truncation)…
            assert wire.readline() == b""
            raw.close()
            # …but keeps serving fresh connections.
            with DualityClient(host, port) as client:
                assert client.ping()

    def test_line_reader_length_ceiling(self):
        left, right = socket.socketpair()
        try:
            from repro.net.protocol import LineReader

            reader = LineReader(right, max_line_bytes=64)
            left.sendall(b"a" * 128)
            with pytest.raises(LineTooLong):
                reader.readline()
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------------
# The concurrent scheduler on the wire
# ---------------------------------------------------------------------------

SLOW_PAIR = threshold_dual_pair(13, 7)  # ~0.5 s under fk-b
FAST_PAIRS = [
    matching_dual_pair(3),
    threshold_dual_pair(7, 4),
    matching_dual_pair(2),
]


class TestConcurrentScheduling:
    def test_fast_clients_finish_before_a_slow_instance(self):
        """Acceptance: 4 clients, one of them on a deliberately slow
        instance — the other clients' fast requests complete before it
        (no head-of-line blocking), and every verdict stays bit-for-bit
        identical to serial decide_duality."""
        slow_reference = _reference_fields(*SLOW_PAIR)
        fast_references = [_reference_fields(g, h) for g, h in FAST_PAIRS]
        finished: dict[str, float] = {}
        responses: dict[str, dict] = {}
        errors: list[BaseException] = []

        with DualityServer(method="fk-b", n_jobs=2) as server:
            host, port = server.address

            def slow_client() -> None:
                try:
                    with DualityClient(host, port, timeout=120) as client:
                        responses["slow"] = client.solve(*SLOW_PAIR)
                        finished["slow"] = time.monotonic()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            def fast_client(index: int) -> None:
                try:
                    with DualityClient(host, port, timeout=120) as client:
                        g, h = FAST_PAIRS[index]
                        responses[f"fast-{index}"] = client.solve(g, h)
                        finished[f"fast-{index}"] = time.monotonic()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            slow = threading.Thread(target=slow_client)
            slow.start()
            # Only release the fast clients once the slow request is
            # provably inside the scheduler — the stats op answering
            # *while a solve is in flight* is itself the lock-free
            # property the old server did not have.
            with DualityClient(host, port) as probe:
                deadline = time.monotonic() + 30
                while probe.stats()["requests_inflight"] < 1:
                    assert time.monotonic() < deadline, "slow solve never started"
                    time.sleep(0.01)
            fast_threads = [
                threading.Thread(target=fast_client, args=(index,))
                for index in range(len(FAST_PAIRS))
            ]
            for thread in fast_threads:
                thread.start()
            for thread in fast_threads:
                thread.join(timeout=120)
            slow.join(timeout=120)

        assert not errors, errors
        for index, reference in enumerate(fast_references):
            assert _response_fields(responses[f"fast-{index}"]) == reference
            assert finished[f"fast-{index}"] < finished["slow"], (
                f"fast client {index} was head-of-line blocked"
            )
        assert _response_fields(responses["slow"]) == slow_reference

    def test_one_connection_answers_out_of_order(self):
        """A fast request pipelined *behind* a slow one on the same
        connection is answered first — out-of-order on the wire, with
        the echoed id as the correlation key."""
        with DualityServer(method="fk-b", n_jobs=2) as server:
            host, port = server.address
            raw = socket.create_connection((host, port), timeout=120)
            try:
                for request_id, (g, h) in ((100, SLOW_PAIR), (200, FAST_PAIRS[0])):
                    raw.sendall(
                        json.dumps(
                            {
                                "id": request_id,
                                "op": "solve",
                                "g": encode_hypergraph(g),
                                "h": encode_hypergraph(h),
                            }
                        ).encode("utf-8")
                        + b"\n"
                    )
                wire = raw.makefile("rb")
                first = json.loads(wire.readline())
                second = json.loads(wire.readline())
            finally:
                raw.close()
        assert [first["id"], second["id"]] == [200, 100]
        assert first["ok"] and second["ok"]
        assert _response_fields(first) == _reference_fields(*FAST_PAIRS[0])
        assert _response_fields(second) == _reference_fields(*SLOW_PAIR)

    def test_solve_many_reorders_arrivals_into_input_order(self):
        instances = [SLOW_PAIR, *FAST_PAIRS]
        with DualityServer(method="fk-b", n_jobs=2) as server:
            with DualityClient(*server.address, timeout=120) as client:
                responses = client.solve_many(instances)
        assert [r["ok"] for r in responses] == [True] * len(instances)
        for (g, h), response in zip(instances, responses):
            assert _response_fields(response) == _reference_fields(g, h)


# ---------------------------------------------------------------------------
# Bounded result cache (LRU)
# ---------------------------------------------------------------------------

class TestResultCacheLRU:
    @pytest.fixture(scope="class")
    def result(self):
        (item,) = solve_many([matching_dual_pair(3)], method="fk-b")
        return item.result

    def test_unbounded_by_default(self, result):
        cache = ResultCache()
        for n in range(100):
            cache.put(f"key-{n}", result)
        assert len(cache) == 100 and cache.evictions == 0

    def test_put_evicts_least_recently_used(self, result):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c", "d"):
            cache.put(key, result)
        assert len(cache) == 3
        assert "a" not in cache and "d" in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self, result):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, result)
        assert cache.get("a") is result  # "a" is now the most recent…
        cache.put("d", result)
        assert "a" in cache and "b" not in cache  # …so "b" was evicted

    def test_put_refreshes_recency(self, result):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, result)
        cache.put("a", result)  # overwrite refreshes, not duplicates
        assert len(cache) == 3
        cache.put("d", result)
        assert "a" in cache and "b" not in cache

    def test_save_load_preserve_recency_order(self, result, tmp_path):
        path = tmp_path / "lru.json"
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, result)
        cache.get("a")  # order on disk: b, c, a (least recent first)
        assert cache.save(path) == 3
        reloaded = ResultCache.load(path, max_entries=3)
        reloaded.put("d", result)  # evicts "b", exactly as the original would
        assert "b" not in reloaded
        assert all(key in reloaded for key in ("a", "c", "d"))

    def test_load_over_cap_keeps_most_recent(self, result, tmp_path):
        path = tmp_path / "big.json"
        cache = ResultCache()
        for n in range(6):
            cache.put(f"key-{n}", result)
        cache.save(path)
        trimmed = ResultCache.load(path, max_entries=2)
        assert len(trimmed) == 2
        assert "key-4" in trimmed and "key-5" in trimmed

    def test_rejects_nonsensical_cap(self):
        with pytest.raises(ValueError, match="positive"):
            ResultCache(max_entries=0)


# ---------------------------------------------------------------------------
# Crash-safe persistence
# ---------------------------------------------------------------------------

class TestCrashSafePersistence:
    def test_cache_persists_across_server_generations(self, tmp_path):
        cache_path = tmp_path / "net-cache.json"
        g, h = matching_dual_pair(3)
        with DualityServer(cache=cache_path) as server:
            with DualityClient(*server.address) as client:
                assert client.solve(g, h)["cached"] is False
                # Autosave already flushed — before shutdown.
                assert cache_path.exists()
        with DualityServer(cache=cache_path) as server:
            with DualityClient(*server.address) as client:
                assert client.solve(g, h)["cached"] is True

    def test_kill_dash_nine_mid_save_leaves_a_loadable_cache(self, tmp_path):
        """SIGKILL a process that is atomically re-saving a large cache
        in a tight loop; whatever instant it died at, the file on disk
        must parse as a complete (previous or current) generation."""
        cache_path = tmp_path / "cache.json"
        seed_path = tmp_path / "seed.json"

        cache = ResultCache()
        (item,) = solve_many([matching_dual_pair(3)], method="fk-b", cache=cache)
        entries = ResultCache._entry_to_json(item.result)
        # A deliberately large file so a non-atomic writer would very
        # likely be caught mid-write by the kill below.
        seed = {f"key-{i:06d}": entries for i in range(4000)}
        seed_path.write_text(json.dumps(seed), encoding="utf-8")

        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[3])
            from repro.parallel.batch import ResultCache
            cache = ResultCache.load(sys.argv[1])
            assert len(cache) > 0
            print("ready", flush=True)
            while True:
                cache.save(sys.argv[2])
            """
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(seed_path), str(cache_path), src],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "ready"
            deadline = time.monotonic() + 30
            while not cache_path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.05)  # land the kill inside some save cycle
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.wait()

        reloaded = ResultCache.load(cache_path)  # must not raise
        assert len(reloaded) == 4000
        # A SIGKILL inside the write window can strand at most the one
        # in-progress temp sibling (cleanup code never runs on -9);
        # what it must never do is leave cache.json itself truncated.
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert len(leftovers) <= 1

    def test_corrupt_cache_file_degrades_to_misses_with_a_warning(
        self, tmp_path
    ):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text('{"truncated": ', encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            cache = ResultCache.load(cache_path)
        assert len(cache) == 0

        cache_path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="JSON object"):
            cache = ResultCache.load(cache_path)
        assert len(cache) == 0

        # A damaged cache must never block service startup.
        with pytest.warns(RuntimeWarning):
            with EngineService(method="fk-b", cache=cache_path) as service:
                assert service.solve(*matching_dual_pair(2)).is_dual
        # …and the session repaired the file on disk.
        reloaded = ResultCache.load(cache_path)
        assert len(reloaded) == 1

    def test_failed_save_keeps_entries_marked_unsaved(self, tmp_path):
        """A save that dies (disk full, unwritable dir) must not retire
        the dirty count — the shutdown flush has to retry the write."""
        cache = ResultCache()
        solve_many([matching_dual_pair(2)], method="fk-b", cache=cache)
        assert cache.new_since_save == 1
        with pytest.raises(FileNotFoundError):
            cache.save(tmp_path / "no" / "such" / "dir" / "cache.json")
        assert cache.new_since_save == 1  # still dirty
        good = tmp_path / "cache.json"
        assert cache.save(good) == 1
        assert cache.new_since_save == 0
        assert len(ResultCache.load(good)) == 1

    def test_non_dict_cache_entry_is_skipped_not_fatal(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text('{"key": "not an entry"}', encoding="utf-8")
        assert len(ResultCache.load(cache_path)) == 0

    def test_session_killed_after_drain_loses_nothing(self, tmp_path):
        """Regression: verdicts used to persist only in close(), so a
        crashed session lost everything it computed."""
        cache_path = tmp_path / "cache.json"
        service = EngineService(method="fk-b", cache=cache_path)
        service.submit(matching_dual_pair(3))
        service.submit(hard_nondual_pair(3))
        originals = service.drain()
        # The session "crashes" here: no close(), no atexit, nothing.
        del service

        with EngineService(method="fk-b", cache=cache_path) as second:
            second.submit(matching_dual_pair(3))
            second.submit(hard_nondual_pair(3))
            replayed = second.drain()
            assert second.pool.tasks_completed == 0  # all hits
        for original, replay in zip(originals, replayed):
            assert replay.cached
            assert replay.result.verdict == original.result.verdict
            assert replay.result.certificate == original.result.certificate

    def test_autosave_false_restores_save_on_close_only(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        with EngineService(
            method="fk-b", cache=cache_path, autosave=False
        ) as service:
            service.submit(matching_dual_pair(2))
            service.drain()
            assert not cache_path.exists()
        assert cache_path.exists()

    def test_save_skips_when_nothing_new(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        with EngineService(method="fk-b", cache=cache_path) as service:
            service.solve(*matching_dual_pair(2))
            first_stat = cache_path.stat().st_mtime_ns
            service.solve(*matching_dual_pair(2))  # a pure cache hit
            assert cache_path.stat().st_mtime_ns == first_stat


# ---------------------------------------------------------------------------
# The CLI: serve --listen and client, end to end over the golden corpus
# ---------------------------------------------------------------------------

class TestNetCli:
    @pytest.fixture
    def running_server(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--cache",
                str(tmp_path / "cli-cache.json"),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        banner = json.loads(server.stdout.readline())
        address = f"127.0.0.1:{banner['listening']['port']}"
        yield server, address, env
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=15)

    def test_client_cli_against_corpus_matches_serial(self, running_server):
        server, address, env = running_server
        paths = _corpus_paths()[:4]
        out = subprocess.run(
            [sys.executable, "-m", "repro", "client", address, *map(str, paths)],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        lines = [json.loads(line) for line in out.stdout.strip().splitlines()]
        assert len(lines) == len(paths)
        for path, line in zip(paths, lines):
            g, h = load_instance(path)
            assert _response_fields(line) == _reference_fields(g, h)
            assert line["source"] == str(path)
        expected = 0 if all(line["dual"] for line in lines) else 1
        assert out.returncode == expected

    def test_client_cli_exits_nonzero_on_error_responses(
        self, running_server, tmp_path
    ):
        """A server-side {"ok": false} error response must fail the
        client's exit status, not just print a line (regression: a batch
        with one bad instance used to look like success to scripts)."""
        server, address, env = running_server
        good = tmp_path / "good.hg"
        hgio.dump_many(matching_dual_pair(3), good)
        # Parses fine, but G is not simple: the *server* rejects it.
        bad = tmp_path / "not-simple.hg"
        bad.write_text("0\n0 1\n==\n0\n", encoding="utf-8")
        out = subprocess.run(
            [sys.executable, "-m", "repro", "client", address, str(good), str(bad)],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        lines = [json.loads(line) for line in out.stdout.strip().splitlines()]
        assert out.returncode != 0
        by_source = {line["source"]: line for line in lines}
        assert by_source[str(good)]["dual"] is True
        assert "simple" in by_source[str(bad)]["error"]
        # A file the client cannot read fails the run the same way.
        out = subprocess.run(
            [
                sys.executable, "-m", "repro", "client", address,
                str(good), str(tmp_path / "missing.hg"),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        assert out.returncode != 0

    def test_client_shutdown_stops_the_server_gracefully(self, running_server):
        server, address, env = running_server
        out = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "client",
                address,
                str(_corpus_paths()[0]),
                "--shutdown",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        assert out.returncode in (0, 1)
        assert server.wait(timeout=30) == 0

    def test_sigint_shuts_the_server_down_cleanly(self, running_server):
        server, _address, _env = running_server
        server.send_signal(signal.SIGINT)
        assert server.wait(timeout=30) == 0

    def test_listen_rejects_instance_arguments(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="repro client"):
            main(["serve", "--listen", "127.0.0.1:0", "whatever.hg"])


# ---------------------------------------------------------------------------
# The event-loop server: auth, backpressure, the async client
# ---------------------------------------------------------------------------

def _recv_lines(sock: socket.socket, count: int, timeout: float = 120.0):
    """Read exactly ``count`` newline-terminated JSON objects raw."""
    sock.settimeout(timeout)
    buffer = b""
    lines = []
    while len(lines) < count:
        while b"\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise AssertionError(
                    f"EOF after {len(lines)} of {count} lines"
                )
            buffer += chunk
        line, _, buffer = buffer.partition(b"\n")
        lines.append(json.loads(line))
    return lines


def _recv_eof(sock: socket.socket, timeout: float = 30.0) -> None:
    sock.settimeout(timeout)
    leftovers = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            assert not leftovers.strip(), leftovers
            return
        leftovers += chunk


class TestAuth:
    TOKEN = "swordfish-7"

    def test_first_frame_must_authenticate_on_the_raw_wire(self):
        with DualityServer(auth_token=self.TOKEN) as server:
            # Any first frame that is not a valid auth op — here a
            # perfectly well-formed ping — gets one clean error line
            # and a disconnect, and never reaches the scheduler.
            raw = socket.create_connection(server.address, timeout=30)
            try:
                raw.sendall(b'{"id": 1, "op": "ping"}\n')
                (line,) = _recv_lines(raw, 1)
                assert line == {
                    "id": 1,
                    "ok": False,
                    "error": {
                        "type": "AuthError",
                        "message": line["error"]["message"],
                    },
                }
                _recv_eof(raw)
            finally:
                raw.close()
            # A wrong token: same treatment.
            raw = socket.create_connection(server.address, timeout=30)
            try:
                raw.sendall(b'{"id": 2, "op": "auth", "token": "nope"}\n')
                (line,) = _recv_lines(raw, 1)
                assert line["ok"] is False
                assert line["error"]["type"] == "AuthError"
                _recv_eof(raw)
            finally:
                raw.close()
            # The right token opens the session; everything works after.
            raw = socket.create_connection(server.address, timeout=30)
            try:
                raw.sendall(
                    json.dumps(
                        {"id": 3, "op": "auth", "token": self.TOKEN}
                    ).encode()
                    + b"\n"
                )
                (line,) = _recv_lines(raw, 1)
                assert line == {"id": 3, "ok": True, "authenticated": True}
                raw.sendall(b'{"id": 4, "op": "ping"}\n')
                (line,) = _recv_lines(raw, 1)
                assert line["pong"] is True
            finally:
                raw.close()

    def test_clients_authenticate_and_solve(self, tmp_path):
        g, h = matching_dual_pair(3)
        reference = _reference_fields(g, h)
        with DualityServer(auth_token=self.TOKEN) as server:
            host, port = server.address
            with DualityClient(
                host, port, timeout=60, auth_token=self.TOKEN
            ) as client:
                assert _response_fields(client.solve(g, h)) == reference
            with pytest.raises(RequestError, match="AuthError"):
                DualityClient(host, port, timeout=60, auth_token="wrong")

            async def drive() -> dict:
                async with AsyncDualityClient(
                    host, port, timeout=60, auth_token=self.TOKEN
                ) as client:
                    return await client.solve(g, h)

            assert _response_fields(asyncio.run(drive())) == reference

            async def rejected() -> None:
                async with AsyncDualityClient(
                    host, port, timeout=60, auth_token="wrong"
                ):
                    pass

            with pytest.raises(RequestError, match="AuthError"):
                asyncio.run(rejected())
            # Auth failures count as errors, not served requests, and
            # the server keeps serving.
            assert server.stats()["errors"] >= 2
            assert server.stats()["auth_required"] is True

    def test_tokenless_server_ignores_auth(self):
        with DualityServer() as server:
            host, port = server.address
            with DualityClient(
                host, port, timeout=60, auth_token="anything"
            ) as client:
                assert client.ping() is True
            assert server.stats()["auth_required"] is False


class TestBackpressure:
    def test_slow_reader_cannot_exceed_the_inflight_cap(self):
        """A client that firehoses requests and never reads holds at
        most ``max_inflight`` solves in the server — observed on the
        raw wire via a second connection's stats polling — and still
        gets every verdict once it starts reading."""
        # Distinct instances so in-flight dedup cannot collapse them.
        pairs = [
            threshold_dual_pair(12, 6),
            threshold_dual_pair(12, 7),
            threshold_dual_pair(11, 6),
            threshold_dual_pair(11, 5),
            threshold_dual_pair(10, 5),
        ]
        references = [_reference_fields(g, h) for g, h in pairs]
        with DualityServer(method="fk-b", max_inflight=2) as server:
            host, port = server.address
            raw = socket.create_connection((host, port), timeout=120)
            try:
                for index, (g, h) in enumerate(pairs):
                    raw.sendall(
                        json.dumps(
                            {
                                "id": index,
                                "op": "solve",
                                "g": encode_hypergraph(g),
                                "h": encode_hypergraph(h),
                            }
                        ).encode("utf-8")
                        + b"\n"
                    )
                # ... and do NOT read: the responses (and the unread
                # requests) must not pile up server-side beyond the cap.
                max_per_connection = 0
                with DualityClient(host, port, timeout=60) as probe:
                    deadline = time.monotonic() + 120
                    while True:
                        stats = probe.stats()
                        per_conn = stats["inflight_per_connection"]
                        if per_conn:
                            max_per_connection = max(
                                max_per_connection, *per_conn.values()
                            )
                        if stats["requests_served"] >= len(pairs):
                            break
                        assert time.monotonic() < deadline
                        time.sleep(0.005)
                assert max_per_connection <= 2, (
                    f"inflight cap breached: {max_per_connection}"
                )
                # The cap was actually reached (the pipeline was deep
                # enough to need pausing), not just never approached.
                assert max_per_connection == 2
                # Reading now yields every verdict, out of order or
                # not, matched by id and bit-for-bit serial.
                responses = _recv_lines(raw, len(pairs))
                by_id = {response["id"]: response for response in responses}
                for index, reference in enumerate(references):
                    assert _response_fields(by_id[index]) == reference
            finally:
                raw.close()
            assert server.stats()["max_inflight"] == 2


class TestAsyncClient:
    def test_round_trips_match_serial(self):
        instances = _instances()
        references = [_reference_fields(g, h) for g, h in instances]

        async def drive(host: str, port: int) -> None:
            async with AsyncDualityClient(host, port, timeout=120) as client:
                assert await client.ping() is True
                for (g, h), reference in zip(instances, references):
                    assert _response_fields(await client.solve(g, h)) == reference
                stats = await client.stats()
                assert stats["connections_open"] == 1
                assert stats["requests_served"] >= len(instances)

        with DualityServer(method="fk-b") as server:
            host, port = server.address
            asyncio.run(drive(host, port))

    def test_solve_many_streams_past_any_window(self):
        """A 40-request batch — deeper than the sync client's window
        and the default per-connection cap is irrelevant to it — comes
        back in input order, every verdict bit-for-bit serial."""
        base = _instances()
        instances = [base[index % len(base)] for index in range(40)]
        references = [_reference_fields(g, h) for g, h in instances]

        async def drive(host: str, port: int) -> list[dict]:
            async with AsyncDualityClient(host, port, timeout=120) as client:
                return await client.solve_many(instances)

        with DualityServer(method="fk-b", max_inflight=4) as server:
            host, port = server.address
            responses = asyncio.run(drive(host, port))
        assert len(responses) == len(instances)
        for response, reference in zip(responses, references):
            assert response["ok"] is True
            assert _response_fields(response) == reference

    def test_solve_many_reports_errors_inline(self):
        good = matching_dual_pair(3)
        not_simple = Hypergraph([{0}, {0, 1}], vertices=range(2))
        instances = [good, (not_simple, not_simple), good]

        async def drive(host: str, port: int) -> list[dict]:
            async with AsyncDualityClient(host, port, timeout=120) as client:
                return await client.solve_many(instances)

        with DualityServer(method="fk-b") as server:
            responses = asyncio.run(drive(*server.address))
        assert responses[0]["ok"] is True and responses[2]["ok"] is True
        assert responses[1]["ok"] is False
        assert "simple" in responses[1]["error"]["message"]


class _OneAnswerServer(threading.Thread):
    """A fake server that answers the first request, then cuts the
    connection — the deterministic stand-in for a server dying (or
    shutting down) mid-pipeline."""

    def __init__(self, expected_requests: int) -> None:
        super().__init__(daemon=True)
        self._expected = expected_requests
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()[:2]

    def run(self) -> None:
        conn, _peer = self._listener.accept()
        with conn:
            # Drain the whole pipeline first (an abrupt close with
            # unread bytes would RST and could destroy the one answer
            # in flight — this test needs the deterministic half).
            buffer = b""
            while buffer.count(b"\n") < self._expected:
                chunk = conn.recv(65536)
                if not chunk:
                    return
                buffer += chunk
            first, _, _rest = buffer.partition(b"\n")
            request = json.loads(first)
            conn.sendall(
                json.dumps(
                    {"id": request.get("id"), "ok": True, "pong": True}
                ).encode()
                + b"\n"
            )
            # Clean close with the rest of the pipeline unanswered.
        self._listener.close()


class TestDisconnectMidPipeline:
    def test_sync_solve_many_returns_promptly_with_inline_errors(self):
        fake = _OneAnswerServer(expected_requests=3)
        fake.start()
        host, port = fake.address
        pairs = [matching_dual_pair(2)] * 3
        client = DualityClient(host, port, timeout=120)
        started = time.monotonic()
        responses = client.solve_many(pairs)
        elapsed = time.monotonic() - started
        # Promptly — on the disconnect, not after the 120 s timeout.
        assert elapsed < 30
        assert len(responses) == 3
        assert responses[0]["ok"] is True
        for response in responses[1:]:
            assert response["ok"] is False
            assert response["error"]["type"] == "ConnectionError"
        assert client.closed

    def test_async_solve_many_returns_promptly_with_inline_errors(self):
        fake = _OneAnswerServer(expected_requests=3)
        fake.start()
        host, port = fake.address
        pairs = [matching_dual_pair(2)] * 3

        async def drive() -> tuple[list[dict], bool]:
            client = AsyncDualityClient(host, port, timeout=120)
            await client.connect()
            responses = await client.solve_many(pairs)
            return responses, client.closed

        started = time.monotonic()
        responses, closed = asyncio.run(drive())
        elapsed = time.monotonic() - started
        assert elapsed < 30
        assert responses[0]["ok"] is True
        for response in responses[1:]:
            assert response["ok"] is False
            assert response["error"]["type"] == "ConnectionError"
        assert closed


class _FlakyProxy(threading.Thread):
    """A TCP proxy that kills its first connection after relaying
    ``cut_after`` response lines, then relays later connections
    transparently — a deterministic flaky network in front of a real
    server."""

    def __init__(self, upstream: tuple, cut_after: int = 1) -> None:
        super().__init__(daemon=True)
        self._upstream = upstream
        self._cut_after = cut_after
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()[:2]
        self.connections = 0

    def run(self) -> None:
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            cut = self._cut_after if self.connections == 1 else None
            threading.Thread(
                target=self._relay, args=(conn, cut), daemon=True
            ).start()

    def _relay(self, conn: socket.socket, cut: int | None) -> None:
        try:
            up = socket.create_connection(self._upstream)
        except OSError:
            conn.close()
            return

        def pump_up() -> None:
            try:
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    up.sendall(chunk)
            except OSError:
                pass
            try:
                up.shutdown(socket.SHUT_WR)
            except OSError:
                pass

        threading.Thread(target=pump_up, daemon=True).start()
        sent_lines = 0
        try:
            while True:
                chunk = up.recv(65536)
                if not chunk:
                    break
                newlines = chunk.count(b"\n")
                if cut is not None and sent_lines + newlines >= cut:
                    # Forward up to (and including) the cut-th newline,
                    # then kill both ends mid-pipeline.
                    stop = -1
                    for _ in range(cut - sent_lines):
                        stop = chunk.find(b"\n", stop + 1)
                    conn.sendall(chunk[: stop + 1])
                    break
                sent_lines += newlines
                conn.sendall(chunk)
        except OSError:
            pass
        finally:
            # shutdown, not just close: the pump threads still hold the
            # file descriptions open (blocked in recv), so a bare close
            # would never send the FIN this test's cut depends on.
            for sock in (conn, up):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()

    def close(self) -> None:
        self._listener.close()


class TestReconnectMidPipeline:
    """``solve_many(..., reconnect=N)`` rides over a dropped connection:
    already-arrived answers are kept, outstanding requests are resent on
    a fresh connection, and the batch completes bit-for-bit.  (With the
    default ``reconnect=0`` the drop stays terminal — the contract
    :class:`TestDisconnectMidPipeline` pins.)"""

    def test_sync_solve_many_reconnects_and_completes(self):
        pairs = _instances()
        with DualityServer(method="fk-b") as server:
            proxy = _FlakyProxy(server.address, cut_after=1)
            proxy.start()
            host, port = proxy.address
            try:
                with DualityClient(host, port, timeout=60) as client:
                    responses = client.solve_many(pairs, reconnect=2)
            finally:
                proxy.close()
            assert proxy.connections >= 2  # the retry really reconnected
            assert len(responses) == len(pairs)
            for (g, h), response in zip(pairs, responses):
                assert response["ok"] is True, response
                assert _response_fields(response) == _reference_fields(g, h)

    def test_async_solve_many_reconnects_and_completes(self):
        pairs = _instances()
        with DualityServer(method="fk-b") as server:
            proxy = _FlakyProxy(server.address, cut_after=1)
            proxy.start()
            host, port = proxy.address

            async def drive() -> list[dict]:
                client = AsyncDualityClient(host, port, timeout=60)
                await client.connect()
                try:
                    return await client.solve_many(pairs, reconnect=2)
                finally:
                    await client.close()

            try:
                responses = asyncio.run(drive())
            finally:
                proxy.close()
            assert proxy.connections >= 2
            assert len(responses) == len(pairs)
            for (g, h), response in zip(pairs, responses):
                assert response["ok"] is True, response
                assert _response_fields(response) == _reference_fields(g, h)


class TestStatsCounters:
    def test_stats_reports_backpressure_cache_and_latency(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        g, h = matching_dual_pair(3)
        with DualityServer(
            cache=cache_path, cache_max_entries=1, autosave_every=1
        ) as server:
            host, port = server.address
            with DualityClient(host, port, timeout=60) as client:
                client.solve(g, h)
                client.solve(g, h)  # a cache hit
                client.solve(*threshold_dual_pair(7, 4))  # evicts (cap 1)
                stats = client.stats()
            assert stats["max_inflight"] == server.max_inflight
            assert stats["connections_open"] == 1
            assert stats["inflight_per_connection"] == {}
            assert stats["requests_inflight"] == 0
            assert stats["cache_hits"] == 1
            assert stats["cache_misses"] == 2
            assert stats["cache_evictions"] == 1
            latency = stats["latency"]
            # Only computed verdicts are timed (2 misses; the hit is
            # answered at submit and never reaches the pool).
            assert latency["count"] == 3
            assert latency["p50_ms"] is not None
            assert latency["p99_ms"] >= latency["p50_ms"] > 0.0


# ---------------------------------------------------------------------------
# Connection-count stress (opt in: pytest -m stress)
# ---------------------------------------------------------------------------

def _raise_fd_limit(needed: int) -> bool:
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= needed:
        return True
    try:
        resource.setrlimit(
            resource.RLIMIT_NOFILE, (min(needed, hard), hard)
        )
    except (ValueError, OSError):
        return False
    return resource.getrlimit(resource.RLIMIT_NOFILE)[0] >= needed


@pytest.mark.stress
class TestConnectionScale:
    CONNECTIONS = 1000
    WAVE = 200

    def test_1k_connections_ping_and_solve(self):
        """One event loop holds 1000 live connections: every one of
        them pings, every one of them gets a verdict, and the server
        reports them all open at once."""
        # ~2 fds per connection server-side + 1 client-side, plus slack.
        if not _raise_fd_limit(4 * self.CONNECTIONS + 256):
            pytest.skip("cannot raise RLIMIT_NOFILE high enough")
        g, h = matching_dual_pair(2)
        reference = _reference_fields(g, h)

        async def drive(host: str, port: int) -> dict:
            clients: list[AsyncDualityClient] = []
            try:
                while len(clients) < self.CONNECTIONS:
                    wave = [
                        AsyncDualityClient(host, port, timeout=120)
                        for _ in range(
                            min(self.WAVE, self.CONNECTIONS - len(clients))
                        )
                    ]
                    await asyncio.gather(*(c.connect() for c in wave))
                    clients.extend(wave)
                pongs = await asyncio.gather(*(c.ping() for c in clients))
                assert all(pongs)
                stats = await clients[0].stats()
                assert stats["connections_open"] == self.CONNECTIONS
                responses = await asyncio.gather(
                    *(c.solve(g, h) for c in clients)
                )
                for response in responses:
                    assert _response_fields(response) == reference
                return await clients[0].stats()
            finally:
                for start in range(0, len(clients), self.WAVE):
                    await asyncio.gather(
                        *(
                            c.close()
                            for c in clients[start : start + self.WAVE]
                        )
                    )

        with DualityServer(method="fk-b", cache=ResultCache()) as server:
            host, port = server.address
            stats = asyncio.run(drive(host, port))
        assert stats["connections_accepted"] == self.CONNECTIONS
        # 1000 identical instances, one computation: the cache and the
        # in-flight dedup absorbed the rest.
        assert stats["cache_misses"] == 1
        assert stats["requests_served"] >= 2 * self.CONNECTIONS
