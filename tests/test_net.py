"""Tests for the TCP front end (:mod:`repro.net`).

The contracts:

* **correctness over the wire** — N concurrent clients against one
  server get verdicts bit-for-bit identical to serial
  ``decide_duality`` (witnesses through the lossless codec included);
* **fault isolation** — a client disconnecting mid-request, a client
  abandoning its response, and a malformed or oversized request line
  each cost at most their own connection, never the server or the
  other clients;
* **crash-safe persistence** — the cache file on disk is always a
  loadable generation: saves are atomic (``kill -9`` mid-save leaves
  the previous generation), a corrupt file degrades to an empty cache
  with a warning, and a service session that dies after ``drain`` has
  already persisted every verdict it computed.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.duality import decide_duality
from repro.hypergraph import Hypergraph
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    disjoint_union_pair,
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    threshold_dual_pair,
)
from repro.net import (
    DualityClient,
    DualityServer,
    LineTooLong,
    ProtocolError,
    RequestError,
    decode_hypergraph,
    encode_hypergraph,
    parse_address,
)
from repro.net.protocol import parse_request
from repro.parallel import ResultCache, solve_many
from repro.parallel.batch import load_instance
from repro.parallel.codec import decode_vertex_set
from repro.service import EngineService

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"


def _corpus_paths() -> list[Path]:
    return sorted(CORPUS_DIR.glob("*.hg"))


def _instances():
    return [
        matching_dual_pair(3),
        threshold_dual_pair(7, 4),
        hard_nondual_pair(3),
        (
            lambda pair: (pair[0], perturb_drop_edge(pair[1]))
        )(disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1))),
    ]


def _reference_fields(g, h, method="fk-b") -> dict:
    """The wire-comparable projection of a serial decide_duality call."""
    result = decide_duality(g, h, method=method)
    cert = result.certificate
    return {
        "verdict": result.verdict.value,
        "kind": cert.kind.name if cert.kind is not None else None,
        "witness": cert.witness,
        "path": list(cert.path) if cert.path is not None else None,
    }


def _response_fields(response: dict) -> dict:
    return {
        "verdict": response["verdict"],
        "kind": response["kind"],
        "witness": decode_vertex_set(response["witness"]),
        "path": response["path"],
    }


# ---------------------------------------------------------------------------
# Protocol building blocks
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_hypergraph_round_trip_is_lossless(self):
        pairs = _instances()
        for g, h in pairs:
            for hg in (g, h):
                wire = json.loads(json.dumps(encode_hypergraph(hg)))
                back = decode_hypergraph(wire)
                assert back == hg
                assert back.vertices == hg.vertices  # isolated ones too

    def test_tuple_labels_survive_with_exact_types(self):
        g, _h = disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1))
        back = decode_hypergraph(encode_hypergraph(g))
        assert back == g
        assert all(
            any(type(v) is tuple for v in edge) for edge in back.edges
        )

    def test_parse_request_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_request(b"this is not json")
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request(b"[1, 2, 3]")
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request(b'{"op": "explode"}')

    def test_decode_hypergraph_rejects_malformed_payloads(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_hypergraph([1, 2])
        with pytest.raises(ProtocolError, match="malformed hypergraph"):
            decode_hypergraph({"edges": [["?", 0]]})

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7171") == ("127.0.0.1", 7171)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        for bad in ("nohost", "host:", "host:port", ""):
            with pytest.raises(ValueError, match="HOST:PORT"):
                parse_address(bad)


# ---------------------------------------------------------------------------
# The server: correctness over the wire
# ---------------------------------------------------------------------------

class TestServerCorrectness:
    def test_solve_matches_serial_bit_for_bit(self):
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as client:
                for g, h in _instances():
                    response = client.solve(g, h)
                    assert _response_fields(response) == _reference_fields(g, h)

    def test_concurrent_clients_get_serial_identical_verdicts(self):
        instances = _instances()
        references = [_reference_fields(g, h) for g, h in instances]
        errors: list[BaseException] = []

        with DualityServer(method="fk-b", cache=ResultCache()) as server:
            host, port = server.address

            def one_client(order: int) -> None:
                try:
                    with DualityClient(host, port) as client:
                        # Each client hits the instances in a different
                        # rotation so requests interleave on the server.
                        indices = [
                            (order + k) % len(instances)
                            for k in range(len(instances))
                        ]
                        for index in indices:
                            g, h = instances[index]
                            response = client.solve(g, h)
                            assert (
                                _response_fields(response) == references[index]
                            ), f"client {order}, instance {index}"
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [
                threading.Thread(target=one_client, args=(order,))
                for order in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stats = server.stats()

        assert not errors, errors
        assert stats["connections_accepted"] == 4
        assert stats["requests_served"] == 4 * len(_instances())
        # The shared cache answered the repeats: at most one miss per
        # distinct instance ever reached the shared pool.
        assert stats["cache_misses"] == len(_instances())

    def test_solve_many_pipelines_in_order(self):
        instances = _instances()
        with DualityServer(method="bm") as server:
            with DualityClient(*server.address) as client:
                responses = client.solve_many(instances)
        for (g, h), response in zip(instances, responses):
            assert response["ok"]
            assert _response_fields(response) == _reference_fields(g, h, "bm")

    def test_per_request_method_override(self):
        g, h = matching_dual_pair(3)
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as client:
                default = client.solve(g, h)
                overridden = client.solve(g, h, method="bm")
                stats = client.stats()
        assert default["method"] == decide_duality(g, h, method="fk-b").method
        assert overridden["method"] == decide_duality(g, h, method="bm").method
        assert sorted(stats["methods_served"]) == ["bm", "fk-b"]

    def test_portfolio_method_is_served_uncached(self, tmp_path):
        # A portfolio winner is timing-dependent, so the server must
        # serve it past the shared cache, not through it.
        g, h = matching_dual_pair(3)
        with DualityServer(cache=tmp_path / "cache.json") as server:
            with DualityClient(*server.address) as client:
                first = client.solve(g, h, method="portfolio")
                second = client.solve(g, h, method="portfolio")
        assert first["dual"] is True and second["dual"] is True
        assert first["cached"] is False and second["cached"] is False

    def test_server_side_path_and_client_side_path(self, tmp_path):
        g, h = matching_dual_pair(2)
        path = tmp_path / "m2.hg"
        hgio.dump_many([g, h], path)
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                inline = client.solve_path(path)  # read here, shipped inline
                server_side = client.solve_server_path(path)
        assert inline["dual"] is True
        assert server_side["dual"] is True
        assert server_side["source"] == str(path)

    def test_ping_and_shutdown_request(self):
        server = DualityServer().start()
        with DualityClient(*server.address) as client:
            assert client.ping()
            reply = client.shutdown_server()
            assert reply["shutting_down"]
        server.wait()
        assert server._stopped.is_set()
        server.shutdown()  # idempotent after the fact

    def test_server_lifecycle_edges(self):
        server = DualityServer()
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        server.shutdown()  # never started: still releases the pool
        assert server.pool.closed
        with pytest.raises(RuntimeError, match="shut down"):
            server.start()

    def test_start_is_idempotent(self):
        with DualityServer() as server:
            address = server.address
            assert server.start().address == address

    def test_client_after_close_refuses(self):
        with DualityServer() as server:
            client = DualityClient(*server.address)
            client.close()
            client.close()  # idempotent
            assert client.closed
            with pytest.raises(RuntimeError, match="closed"):
                client.ping()


# ---------------------------------------------------------------------------
# The server: fault isolation
# ---------------------------------------------------------------------------

class TestServerFaultIsolation:
    def test_solver_error_is_a_request_error_not_a_teardown(self):
        not_simple = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                with pytest.raises(RequestError, match="simple"):
                    client.solve(not_simple, h)
                with pytest.raises(RequestError, match="unknown duality method"):
                    client.solve(*matching_dual_pair(2), method="quantum")
                with pytest.raises(RequestError):
                    client.solve_server_path("no/such/file.hg")
                # The same connection still answers real work.
                assert client.solve(*matching_dual_pair(2))["dual"] is True

    def test_solve_many_reports_errors_inline(self):
        not_simple = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        good = matching_dual_pair(2)
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                responses = client.solve_many([good, (not_simple, h), good])
        assert [r["ok"] for r in responses] == [True, False, True]
        assert "simple" in responses[1]["error"]["message"]

    def test_mid_request_disconnect_leaves_server_serving(self):
        g, h = matching_dual_pair(3)
        with DualityServer() as server:
            host, port = server.address
            # A client that dies mid-request: half a JSON line, no
            # terminator, then a hard close.
            raw = socket.create_connection((host, port))
            raw.sendall(b'{"op": "solve", "g": {"edges": [')
            raw.close()
            # A client that sends a full request and vanishes before
            # reading its answer.
            raw = socket.create_connection((host, port))
            raw.sendall(b'{"op": "ping"}\n')
            raw.close()
            time.sleep(0.3)  # let the handlers observe both corpses
            with DualityClient(host, port) as client:
                assert client.solve(g, h)["dual"] is True

    def test_malformed_line_answers_error_and_keeps_serving(self):
        g, h = matching_dual_pair(3)
        with DualityServer() as server:
            host, port = server.address
            with DualityClient(host, port) as victim, DualityClient(
                host, port
            ) as bystander:
                victim._sock.sendall(b"definitely not json\n")
                line = victim._reader.readline()
                error = json.loads(line)
                assert error["ok"] is False
                assert error["error"]["type"] == "ProtocolError"
                # Framing stayed line-aligned: the same connection
                # recovers, and other clients never noticed.
                assert victim.ping()
                assert bystander.solve(g, h)["dual"] is True

    def test_oversized_line_is_refused_and_the_connection_closed(self):
        with DualityServer(max_line_bytes=256) as server:
            host, port = server.address
            raw = socket.create_connection((host, port))
            raw.sendall(b"x" * 1024)  # no newline, over the ceiling
            wire = raw.makefile("rb")
            error = json.loads(wire.readline())
            assert error["ok"] is False
            assert error["error"]["type"] == "LineTooLong"
            # The server hangs up (no resync point past a truncation)…
            assert wire.readline() == b""
            raw.close()
            # …but keeps serving fresh connections.
            with DualityClient(host, port) as client:
                assert client.ping()

    def test_line_reader_length_ceiling(self):
        left, right = socket.socketpair()
        try:
            from repro.net.protocol import LineReader

            reader = LineReader(right, max_line_bytes=64)
            left.sendall(b"a" * 128)
            with pytest.raises(LineTooLong):
                reader.readline()
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------------
# The concurrent scheduler on the wire
# ---------------------------------------------------------------------------

SLOW_PAIR = threshold_dual_pair(13, 7)  # ~0.5 s under fk-b
FAST_PAIRS = [
    matching_dual_pair(3),
    threshold_dual_pair(7, 4),
    matching_dual_pair(2),
]


class TestConcurrentScheduling:
    def test_fast_clients_finish_before_a_slow_instance(self):
        """Acceptance: 4 clients, one of them on a deliberately slow
        instance — the other clients' fast requests complete before it
        (no head-of-line blocking), and every verdict stays bit-for-bit
        identical to serial decide_duality."""
        slow_reference = _reference_fields(*SLOW_PAIR)
        fast_references = [_reference_fields(g, h) for g, h in FAST_PAIRS]
        finished: dict[str, float] = {}
        responses: dict[str, dict] = {}
        errors: list[BaseException] = []

        with DualityServer(method="fk-b", n_jobs=2) as server:
            host, port = server.address

            def slow_client() -> None:
                try:
                    with DualityClient(host, port, timeout=120) as client:
                        responses["slow"] = client.solve(*SLOW_PAIR)
                        finished["slow"] = time.monotonic()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            def fast_client(index: int) -> None:
                try:
                    with DualityClient(host, port, timeout=120) as client:
                        g, h = FAST_PAIRS[index]
                        responses[f"fast-{index}"] = client.solve(g, h)
                        finished[f"fast-{index}"] = time.monotonic()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            slow = threading.Thread(target=slow_client)
            slow.start()
            # Only release the fast clients once the slow request is
            # provably inside the scheduler — the stats op answering
            # *while a solve is in flight* is itself the lock-free
            # property the old server did not have.
            with DualityClient(host, port) as probe:
                deadline = time.monotonic() + 30
                while probe.stats()["requests_inflight"] < 1:
                    assert time.monotonic() < deadline, "slow solve never started"
                    time.sleep(0.01)
            fast_threads = [
                threading.Thread(target=fast_client, args=(index,))
                for index in range(len(FAST_PAIRS))
            ]
            for thread in fast_threads:
                thread.start()
            for thread in fast_threads:
                thread.join(timeout=120)
            slow.join(timeout=120)

        assert not errors, errors
        for index, reference in enumerate(fast_references):
            assert _response_fields(responses[f"fast-{index}"]) == reference
            assert finished[f"fast-{index}"] < finished["slow"], (
                f"fast client {index} was head-of-line blocked"
            )
        assert _response_fields(responses["slow"]) == slow_reference

    def test_one_connection_answers_out_of_order(self):
        """A fast request pipelined *behind* a slow one on the same
        connection is answered first — out-of-order on the wire, with
        the echoed id as the correlation key."""
        with DualityServer(method="fk-b", n_jobs=2) as server:
            host, port = server.address
            raw = socket.create_connection((host, port), timeout=120)
            try:
                for request_id, (g, h) in ((100, SLOW_PAIR), (200, FAST_PAIRS[0])):
                    raw.sendall(
                        json.dumps(
                            {
                                "id": request_id,
                                "op": "solve",
                                "g": encode_hypergraph(g),
                                "h": encode_hypergraph(h),
                            }
                        ).encode("utf-8")
                        + b"\n"
                    )
                wire = raw.makefile("rb")
                first = json.loads(wire.readline())
                second = json.loads(wire.readline())
            finally:
                raw.close()
        assert [first["id"], second["id"]] == [200, 100]
        assert first["ok"] and second["ok"]
        assert _response_fields(first) == _reference_fields(*FAST_PAIRS[0])
        assert _response_fields(second) == _reference_fields(*SLOW_PAIR)

    def test_solve_many_reorders_arrivals_into_input_order(self):
        instances = [SLOW_PAIR, *FAST_PAIRS]
        with DualityServer(method="fk-b", n_jobs=2) as server:
            with DualityClient(*server.address, timeout=120) as client:
                responses = client.solve_many(instances)
        assert [r["ok"] for r in responses] == [True] * len(instances)
        for (g, h), response in zip(instances, responses):
            assert _response_fields(response) == _reference_fields(g, h)


# ---------------------------------------------------------------------------
# Bounded result cache (LRU)
# ---------------------------------------------------------------------------

class TestResultCacheLRU:
    @pytest.fixture(scope="class")
    def result(self):
        (item,) = solve_many([matching_dual_pair(3)], method="fk-b")
        return item.result

    def test_unbounded_by_default(self, result):
        cache = ResultCache()
        for n in range(100):
            cache.put(f"key-{n}", result)
        assert len(cache) == 100 and cache.evictions == 0

    def test_put_evicts_least_recently_used(self, result):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c", "d"):
            cache.put(key, result)
        assert len(cache) == 3
        assert "a" not in cache and "d" in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self, result):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, result)
        assert cache.get("a") is result  # "a" is now the most recent…
        cache.put("d", result)
        assert "a" in cache and "b" not in cache  # …so "b" was evicted

    def test_put_refreshes_recency(self, result):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, result)
        cache.put("a", result)  # overwrite refreshes, not duplicates
        assert len(cache) == 3
        cache.put("d", result)
        assert "a" in cache and "b" not in cache

    def test_save_load_preserve_recency_order(self, result, tmp_path):
        path = tmp_path / "lru.json"
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, result)
        cache.get("a")  # order on disk: b, c, a (least recent first)
        assert cache.save(path) == 3
        reloaded = ResultCache.load(path, max_entries=3)
        reloaded.put("d", result)  # evicts "b", exactly as the original would
        assert "b" not in reloaded
        assert all(key in reloaded for key in ("a", "c", "d"))

    def test_load_over_cap_keeps_most_recent(self, result, tmp_path):
        path = tmp_path / "big.json"
        cache = ResultCache()
        for n in range(6):
            cache.put(f"key-{n}", result)
        cache.save(path)
        trimmed = ResultCache.load(path, max_entries=2)
        assert len(trimmed) == 2
        assert "key-4" in trimmed and "key-5" in trimmed

    def test_rejects_nonsensical_cap(self):
        with pytest.raises(ValueError, match="positive"):
            ResultCache(max_entries=0)


# ---------------------------------------------------------------------------
# Crash-safe persistence
# ---------------------------------------------------------------------------

class TestCrashSafePersistence:
    def test_cache_persists_across_server_generations(self, tmp_path):
        cache_path = tmp_path / "net-cache.json"
        g, h = matching_dual_pair(3)
        with DualityServer(cache=cache_path) as server:
            with DualityClient(*server.address) as client:
                assert client.solve(g, h)["cached"] is False
                # Autosave already flushed — before shutdown.
                assert cache_path.exists()
        with DualityServer(cache=cache_path) as server:
            with DualityClient(*server.address) as client:
                assert client.solve(g, h)["cached"] is True

    def test_kill_dash_nine_mid_save_leaves_a_loadable_cache(self, tmp_path):
        """SIGKILL a process that is atomically re-saving a large cache
        in a tight loop; whatever instant it died at, the file on disk
        must parse as a complete (previous or current) generation."""
        cache_path = tmp_path / "cache.json"
        seed_path = tmp_path / "seed.json"

        cache = ResultCache()
        (item,) = solve_many([matching_dual_pair(3)], method="fk-b", cache=cache)
        entries = ResultCache._entry_to_json(item.result)
        # A deliberately large file so a non-atomic writer would very
        # likely be caught mid-write by the kill below.
        seed = {f"key-{i:06d}": entries for i in range(4000)}
        seed_path.write_text(json.dumps(seed), encoding="utf-8")

        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[3])
            from repro.parallel.batch import ResultCache
            cache = ResultCache.load(sys.argv[1])
            assert len(cache) > 0
            print("ready", flush=True)
            while True:
                cache.save(sys.argv[2])
            """
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(seed_path), str(cache_path), src],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "ready"
            deadline = time.monotonic() + 30
            while not cache_path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.05)  # land the kill inside some save cycle
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.wait()

        reloaded = ResultCache.load(cache_path)  # must not raise
        assert len(reloaded) == 4000
        # A SIGKILL inside the write window can strand at most the one
        # in-progress temp sibling (cleanup code never runs on -9);
        # what it must never do is leave cache.json itself truncated.
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert len(leftovers) <= 1

    def test_corrupt_cache_file_degrades_to_misses_with_a_warning(
        self, tmp_path
    ):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text('{"truncated": ', encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            cache = ResultCache.load(cache_path)
        assert len(cache) == 0

        cache_path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="JSON object"):
            cache = ResultCache.load(cache_path)
        assert len(cache) == 0

        # A damaged cache must never block service startup.
        with pytest.warns(RuntimeWarning):
            with EngineService(method="fk-b", cache=cache_path) as service:
                assert service.solve(*matching_dual_pair(2)).is_dual
        # …and the session repaired the file on disk.
        reloaded = ResultCache.load(cache_path)
        assert len(reloaded) == 1

    def test_failed_save_keeps_entries_marked_unsaved(self, tmp_path):
        """A save that dies (disk full, unwritable dir) must not retire
        the dirty count — the shutdown flush has to retry the write."""
        cache = ResultCache()
        solve_many([matching_dual_pair(2)], method="fk-b", cache=cache)
        assert cache.new_since_save == 1
        with pytest.raises(FileNotFoundError):
            cache.save(tmp_path / "no" / "such" / "dir" / "cache.json")
        assert cache.new_since_save == 1  # still dirty
        good = tmp_path / "cache.json"
        assert cache.save(good) == 1
        assert cache.new_since_save == 0
        assert len(ResultCache.load(good)) == 1

    def test_non_dict_cache_entry_is_skipped_not_fatal(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text('{"key": "not an entry"}', encoding="utf-8")
        assert len(ResultCache.load(cache_path)) == 0

    def test_session_killed_after_drain_loses_nothing(self, tmp_path):
        """Regression: verdicts used to persist only in close(), so a
        crashed session lost everything it computed."""
        cache_path = tmp_path / "cache.json"
        service = EngineService(method="fk-b", cache=cache_path)
        service.submit(matching_dual_pair(3))
        service.submit(hard_nondual_pair(3))
        originals = service.drain()
        # The session "crashes" here: no close(), no atexit, nothing.
        del service

        with EngineService(method="fk-b", cache=cache_path) as second:
            second.submit(matching_dual_pair(3))
            second.submit(hard_nondual_pair(3))
            replayed = second.drain()
            assert second.pool.tasks_completed == 0  # all hits
        for original, replay in zip(originals, replayed):
            assert replay.cached
            assert replay.result.verdict == original.result.verdict
            assert replay.result.certificate == original.result.certificate

    def test_autosave_false_restores_save_on_close_only(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        with EngineService(
            method="fk-b", cache=cache_path, autosave=False
        ) as service:
            service.submit(matching_dual_pair(2))
            service.drain()
            assert not cache_path.exists()
        assert cache_path.exists()

    def test_save_skips_when_nothing_new(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        with EngineService(method="fk-b", cache=cache_path) as service:
            service.solve(*matching_dual_pair(2))
            first_stat = cache_path.stat().st_mtime_ns
            service.solve(*matching_dual_pair(2))  # a pure cache hit
            assert cache_path.stat().st_mtime_ns == first_stat


# ---------------------------------------------------------------------------
# The CLI: serve --listen and client, end to end over the golden corpus
# ---------------------------------------------------------------------------

class TestNetCli:
    @pytest.fixture
    def running_server(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--cache",
                str(tmp_path / "cli-cache.json"),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        banner = json.loads(server.stdout.readline())
        address = f"127.0.0.1:{banner['listening']['port']}"
        yield server, address, env
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=15)

    def test_client_cli_against_corpus_matches_serial(self, running_server):
        server, address, env = running_server
        paths = _corpus_paths()[:4]
        out = subprocess.run(
            [sys.executable, "-m", "repro", "client", address, *map(str, paths)],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        lines = [json.loads(line) for line in out.stdout.strip().splitlines()]
        assert len(lines) == len(paths)
        for path, line in zip(paths, lines):
            g, h = load_instance(path)
            assert _response_fields(line) == _reference_fields(g, h)
            assert line["source"] == str(path)
        expected = 0 if all(line["dual"] for line in lines) else 1
        assert out.returncode == expected

    def test_client_cli_exits_nonzero_on_error_responses(
        self, running_server, tmp_path
    ):
        """A server-side {"ok": false} error response must fail the
        client's exit status, not just print a line (regression: a batch
        with one bad instance used to look like success to scripts)."""
        server, address, env = running_server
        good = tmp_path / "good.hg"
        hgio.dump_many(matching_dual_pair(3), good)
        # Parses fine, but G is not simple: the *server* rejects it.
        bad = tmp_path / "not-simple.hg"
        bad.write_text("0\n0 1\n==\n0\n", encoding="utf-8")
        out = subprocess.run(
            [sys.executable, "-m", "repro", "client", address, str(good), str(bad)],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        lines = [json.loads(line) for line in out.stdout.strip().splitlines()]
        assert out.returncode != 0
        by_source = {line["source"]: line for line in lines}
        assert by_source[str(good)]["dual"] is True
        assert "simple" in by_source[str(bad)]["error"]
        # A file the client cannot read fails the run the same way.
        out = subprocess.run(
            [
                sys.executable, "-m", "repro", "client", address,
                str(good), str(tmp_path / "missing.hg"),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        assert out.returncode != 0

    def test_client_shutdown_stops_the_server_gracefully(self, running_server):
        server, address, env = running_server
        out = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "client",
                address,
                str(_corpus_paths()[0]),
                "--shutdown",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        assert out.returncode in (0, 1)
        assert server.wait(timeout=30) == 0

    def test_sigint_shuts_the_server_down_cleanly(self, running_server):
        server, _address, _env = running_server
        server.send_signal(signal.SIGINT)
        assert server.wait(timeout=30) == 0

    def test_listen_rejects_instance_arguments(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="repro client"):
            main(["serve", "--listen", "127.0.0.1:0", "whatever.hg"])
