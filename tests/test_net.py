"""Tests for the TCP front end (:mod:`repro.net`).

The contracts:

* **correctness over the wire** — N concurrent clients against one
  server get verdicts bit-for-bit identical to serial
  ``decide_duality`` (witnesses through the lossless codec included);
* **fault isolation** — a client disconnecting mid-request, a client
  abandoning its response, and a malformed or oversized request line
  each cost at most their own connection, never the server or the
  other clients;
* **crash-safe persistence** — the cache file on disk is always a
  loadable generation: saves are atomic (``kill -9`` mid-save leaves
  the previous generation), a corrupt file degrades to an empty cache
  with a warning, and a service session that dies after ``drain`` has
  already persisted every verdict it computed.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.duality import decide_duality
from repro.hypergraph import Hypergraph
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    disjoint_union_pair,
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    threshold_dual_pair,
)
from repro.net import (
    DualityClient,
    DualityServer,
    LineTooLong,
    ProtocolError,
    RequestError,
    decode_hypergraph,
    encode_hypergraph,
    parse_address,
)
from repro.net.protocol import parse_request
from repro.parallel import ResultCache, solve_many
from repro.parallel.batch import load_instance
from repro.parallel.codec import decode_vertex_set
from repro.service import EngineService

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"


def _corpus_paths() -> list[Path]:
    return sorted(CORPUS_DIR.glob("*.hg"))


def _instances():
    return [
        matching_dual_pair(3),
        threshold_dual_pair(7, 4),
        hard_nondual_pair(3),
        (
            lambda pair: (pair[0], perturb_drop_edge(pair[1]))
        )(disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1))),
    ]


def _reference_fields(g, h, method="fk-b") -> dict:
    """The wire-comparable projection of a serial decide_duality call."""
    result = decide_duality(g, h, method=method)
    cert = result.certificate
    return {
        "verdict": result.verdict.value,
        "kind": cert.kind.name if cert.kind is not None else None,
        "witness": cert.witness,
        "path": list(cert.path) if cert.path is not None else None,
    }


def _response_fields(response: dict) -> dict:
    return {
        "verdict": response["verdict"],
        "kind": response["kind"],
        "witness": decode_vertex_set(response["witness"]),
        "path": response["path"],
    }


# ---------------------------------------------------------------------------
# Protocol building blocks
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_hypergraph_round_trip_is_lossless(self):
        pairs = _instances()
        for g, h in pairs:
            for hg in (g, h):
                wire = json.loads(json.dumps(encode_hypergraph(hg)))
                back = decode_hypergraph(wire)
                assert back == hg
                assert back.vertices == hg.vertices  # isolated ones too

    def test_tuple_labels_survive_with_exact_types(self):
        g, _h = disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1))
        back = decode_hypergraph(encode_hypergraph(g))
        assert back == g
        assert all(
            any(type(v) is tuple for v in edge) for edge in back.edges
        )

    def test_parse_request_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_request(b"this is not json")
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request(b"[1, 2, 3]")
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request(b'{"op": "explode"}')

    def test_decode_hypergraph_rejects_malformed_payloads(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_hypergraph([1, 2])
        with pytest.raises(ProtocolError, match="malformed hypergraph"):
            decode_hypergraph({"edges": [["?", 0]]})

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7171") == ("127.0.0.1", 7171)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        for bad in ("nohost", "host:", "host:port", ""):
            with pytest.raises(ValueError, match="HOST:PORT"):
                parse_address(bad)


# ---------------------------------------------------------------------------
# The server: correctness over the wire
# ---------------------------------------------------------------------------

class TestServerCorrectness:
    def test_solve_matches_serial_bit_for_bit(self):
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as client:
                for g, h in _instances():
                    response = client.solve(g, h)
                    assert _response_fields(response) == _reference_fields(g, h)

    def test_concurrent_clients_get_serial_identical_verdicts(self):
        instances = _instances()
        references = [_reference_fields(g, h) for g, h in instances]
        errors: list[BaseException] = []

        with DualityServer(method="fk-b", cache=ResultCache()) as server:
            host, port = server.address

            def one_client(order: int) -> None:
                try:
                    with DualityClient(host, port) as client:
                        # Each client hits the instances in a different
                        # rotation so requests interleave on the server.
                        indices = [
                            (order + k) % len(instances)
                            for k in range(len(instances))
                        ]
                        for index in indices:
                            g, h = instances[index]
                            response = client.solve(g, h)
                            assert (
                                _response_fields(response) == references[index]
                            ), f"client {order}, instance {index}"
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [
                threading.Thread(target=one_client, args=(order,))
                for order in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stats = server.stats()

        assert not errors, errors
        assert stats["connections_accepted"] == 4
        assert stats["requests_served"] == 4 * len(_instances())
        # The shared cache answered the repeats: at most one miss per
        # distinct instance ever reached the shared pool.
        assert stats["cache_misses"] == len(_instances())

    def test_solve_many_pipelines_in_order(self):
        instances = _instances()
        with DualityServer(method="bm") as server:
            with DualityClient(*server.address) as client:
                responses = client.solve_many(instances)
        for (g, h), response in zip(instances, responses):
            assert response["ok"]
            assert _response_fields(response) == _reference_fields(g, h, "bm")

    def test_per_request_method_override(self):
        g, h = matching_dual_pair(3)
        with DualityServer(method="fk-b") as server:
            with DualityClient(*server.address) as client:
                default = client.solve(g, h)
                overridden = client.solve(g, h, method="bm")
                stats = client.stats()
        assert default["method"] == decide_duality(g, h, method="fk-b").method
        assert overridden["method"] == decide_duality(g, h, method="bm").method
        assert sorted(stats["methods_served"]) == ["bm", "fk-b"]

    def test_portfolio_method_is_served_uncached(self, tmp_path):
        # A portfolio winner is timing-dependent, so the server must
        # serve it past the shared cache, not through it.
        g, h = matching_dual_pair(3)
        with DualityServer(cache=tmp_path / "cache.json") as server:
            with DualityClient(*server.address) as client:
                first = client.solve(g, h, method="portfolio")
                second = client.solve(g, h, method="portfolio")
        assert first["dual"] is True and second["dual"] is True
        assert first["cached"] is False and second["cached"] is False

    def test_server_side_path_and_client_side_path(self, tmp_path):
        g, h = matching_dual_pair(2)
        path = tmp_path / "m2.hg"
        hgio.dump_many([g, h], path)
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                inline = client.solve_path(path)  # read here, shipped inline
                server_side = client.solve_server_path(path)
        assert inline["dual"] is True
        assert server_side["dual"] is True
        assert server_side["source"] == str(path)

    def test_ping_and_shutdown_request(self):
        server = DualityServer().start()
        with DualityClient(*server.address) as client:
            assert client.ping()
            reply = client.shutdown_server()
            assert reply["shutting_down"]
        server.wait()
        assert server._stopped.is_set()
        server.shutdown()  # idempotent after the fact

    def test_server_lifecycle_edges(self):
        server = DualityServer()
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        server.shutdown()  # never started: still releases the pool
        assert server.pool.closed
        with pytest.raises(RuntimeError, match="shut down"):
            server.start()

    def test_start_is_idempotent(self):
        with DualityServer() as server:
            address = server.address
            assert server.start().address == address

    def test_client_after_close_refuses(self):
        with DualityServer() as server:
            client = DualityClient(*server.address)
            client.close()
            client.close()  # idempotent
            assert client.closed
            with pytest.raises(RuntimeError, match="closed"):
                client.ping()


# ---------------------------------------------------------------------------
# The server: fault isolation
# ---------------------------------------------------------------------------

class TestServerFaultIsolation:
    def test_solver_error_is_a_request_error_not_a_teardown(self):
        not_simple = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                with pytest.raises(RequestError, match="simple"):
                    client.solve(not_simple, h)
                with pytest.raises(RequestError, match="unknown duality method"):
                    client.solve(*matching_dual_pair(2), method="quantum")
                with pytest.raises(RequestError):
                    client.solve_server_path("no/such/file.hg")
                # The same connection still answers real work.
                assert client.solve(*matching_dual_pair(2))["dual"] is True

    def test_solve_many_reports_errors_inline(self):
        not_simple = Hypergraph([frozenset({0}), frozenset({0, 1})])
        h = Hypergraph([frozenset({0})])
        good = matching_dual_pair(2)
        with DualityServer() as server:
            with DualityClient(*server.address) as client:
                responses = client.solve_many([good, (not_simple, h), good])
        assert [r["ok"] for r in responses] == [True, False, True]
        assert "simple" in responses[1]["error"]["message"]

    def test_mid_request_disconnect_leaves_server_serving(self):
        g, h = matching_dual_pair(3)
        with DualityServer() as server:
            host, port = server.address
            # A client that dies mid-request: half a JSON line, no
            # terminator, then a hard close.
            raw = socket.create_connection((host, port))
            raw.sendall(b'{"op": "solve", "g": {"edges": [')
            raw.close()
            # A client that sends a full request and vanishes before
            # reading its answer.
            raw = socket.create_connection((host, port))
            raw.sendall(b'{"op": "ping"}\n')
            raw.close()
            time.sleep(0.3)  # let the handlers observe both corpses
            with DualityClient(host, port) as client:
                assert client.solve(g, h)["dual"] is True

    def test_malformed_line_answers_error_and_keeps_serving(self):
        g, h = matching_dual_pair(3)
        with DualityServer() as server:
            host, port = server.address
            with DualityClient(host, port) as victim, DualityClient(
                host, port
            ) as bystander:
                victim._sock.sendall(b"definitely not json\n")
                line = victim._reader.readline()
                error = json.loads(line)
                assert error["ok"] is False
                assert error["error"]["type"] == "ProtocolError"
                # Framing stayed line-aligned: the same connection
                # recovers, and other clients never noticed.
                assert victim.ping()
                assert bystander.solve(g, h)["dual"] is True

    def test_oversized_line_is_refused_and_the_connection_closed(self):
        with DualityServer(max_line_bytes=256) as server:
            host, port = server.address
            raw = socket.create_connection((host, port))
            raw.sendall(b"x" * 1024)  # no newline, over the ceiling
            wire = raw.makefile("rb")
            error = json.loads(wire.readline())
            assert error["ok"] is False
            assert error["error"]["type"] == "LineTooLong"
            # The server hangs up (no resync point past a truncation)…
            assert wire.readline() == b""
            raw.close()
            # …but keeps serving fresh connections.
            with DualityClient(host, port) as client:
                assert client.ping()

    def test_line_reader_length_ceiling(self):
        left, right = socket.socketpair()
        try:
            from repro.net.protocol import LineReader

            reader = LineReader(right, max_line_bytes=64)
            left.sendall(b"a" * 128)
            with pytest.raises(LineTooLong):
                reader.readline()
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------------
# Crash-safe persistence
# ---------------------------------------------------------------------------

class TestCrashSafePersistence:
    def test_cache_persists_across_server_generations(self, tmp_path):
        cache_path = tmp_path / "net-cache.json"
        g, h = matching_dual_pair(3)
        with DualityServer(cache=cache_path) as server:
            with DualityClient(*server.address) as client:
                assert client.solve(g, h)["cached"] is False
                # Autosave already flushed — before shutdown.
                assert cache_path.exists()
        with DualityServer(cache=cache_path) as server:
            with DualityClient(*server.address) as client:
                assert client.solve(g, h)["cached"] is True

    def test_kill_dash_nine_mid_save_leaves_a_loadable_cache(self, tmp_path):
        """SIGKILL a process that is atomically re-saving a large cache
        in a tight loop; whatever instant it died at, the file on disk
        must parse as a complete (previous or current) generation."""
        cache_path = tmp_path / "cache.json"
        seed_path = tmp_path / "seed.json"

        cache = ResultCache()
        (item,) = solve_many([matching_dual_pair(3)], method="fk-b", cache=cache)
        entries = ResultCache._entry_to_json(item.result)
        # A deliberately large file so a non-atomic writer would very
        # likely be caught mid-write by the kill below.
        seed = {f"key-{i:06d}": entries for i in range(4000)}
        seed_path.write_text(json.dumps(seed), encoding="utf-8")

        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[3])
            from repro.parallel.batch import ResultCache
            cache = ResultCache.load(sys.argv[1])
            assert len(cache) > 0
            print("ready", flush=True)
            while True:
                cache.save(sys.argv[2])
            """
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(seed_path), str(cache_path), src],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "ready"
            deadline = time.monotonic() + 30
            while not cache_path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.05)  # land the kill inside some save cycle
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.wait()

        reloaded = ResultCache.load(cache_path)  # must not raise
        assert len(reloaded) == 4000
        # No stray temp generations left behind either.
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_corrupt_cache_file_degrades_to_misses_with_a_warning(
        self, tmp_path
    ):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text('{"truncated": ', encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            cache = ResultCache.load(cache_path)
        assert len(cache) == 0

        cache_path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="JSON object"):
            cache = ResultCache.load(cache_path)
        assert len(cache) == 0

        # A damaged cache must never block service startup.
        with pytest.warns(RuntimeWarning):
            with EngineService(method="fk-b", cache=cache_path) as service:
                assert service.solve(*matching_dual_pair(2)).is_dual
        # …and the session repaired the file on disk.
        reloaded = ResultCache.load(cache_path)
        assert len(reloaded) == 1

    def test_failed_save_keeps_entries_marked_unsaved(self, tmp_path):
        """A save that dies (disk full, unwritable dir) must not retire
        the dirty count — the shutdown flush has to retry the write."""
        cache = ResultCache()
        solve_many([matching_dual_pair(2)], method="fk-b", cache=cache)
        assert cache.new_since_save == 1
        with pytest.raises(FileNotFoundError):
            cache.save(tmp_path / "no" / "such" / "dir" / "cache.json")
        assert cache.new_since_save == 1  # still dirty
        good = tmp_path / "cache.json"
        assert cache.save(good) == 1
        assert cache.new_since_save == 0
        assert len(ResultCache.load(good)) == 1

    def test_non_dict_cache_entry_is_skipped_not_fatal(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text('{"key": "not an entry"}', encoding="utf-8")
        assert len(ResultCache.load(cache_path)) == 0

    def test_session_killed_after_drain_loses_nothing(self, tmp_path):
        """Regression: verdicts used to persist only in close(), so a
        crashed session lost everything it computed."""
        cache_path = tmp_path / "cache.json"
        service = EngineService(method="fk-b", cache=cache_path)
        service.submit(matching_dual_pair(3))
        service.submit(hard_nondual_pair(3))
        originals = service.drain()
        # The session "crashes" here: no close(), no atexit, nothing.
        del service

        with EngineService(method="fk-b", cache=cache_path) as second:
            second.submit(matching_dual_pair(3))
            second.submit(hard_nondual_pair(3))
            replayed = second.drain()
            assert second.pool.tasks_completed == 0  # all hits
        for original, replay in zip(originals, replayed):
            assert replay.cached
            assert replay.result.verdict == original.result.verdict
            assert replay.result.certificate == original.result.certificate

    def test_autosave_false_restores_save_on_close_only(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        with EngineService(
            method="fk-b", cache=cache_path, autosave=False
        ) as service:
            service.submit(matching_dual_pair(2))
            service.drain()
            assert not cache_path.exists()
        assert cache_path.exists()

    def test_save_skips_when_nothing_new(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        with EngineService(method="fk-b", cache=cache_path) as service:
            service.solve(*matching_dual_pair(2))
            first_stat = cache_path.stat().st_mtime_ns
            service.solve(*matching_dual_pair(2))  # a pure cache hit
            assert cache_path.stat().st_mtime_ns == first_stat


# ---------------------------------------------------------------------------
# The CLI: serve --listen and client, end to end over the golden corpus
# ---------------------------------------------------------------------------

class TestNetCli:
    @pytest.fixture
    def running_server(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--cache",
                str(tmp_path / "cli-cache.json"),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        banner = json.loads(server.stdout.readline())
        address = f"127.0.0.1:{banner['listening']['port']}"
        yield server, address, env
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=15)

    def test_client_cli_against_corpus_matches_serial(self, running_server):
        server, address, env = running_server
        paths = _corpus_paths()[:4]
        out = subprocess.run(
            [sys.executable, "-m", "repro", "client", address, *map(str, paths)],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        lines = [json.loads(line) for line in out.stdout.strip().splitlines()]
        assert len(lines) == len(paths)
        for path, line in zip(paths, lines):
            g, h = load_instance(path)
            assert _response_fields(line) == _reference_fields(g, h)
            assert line["source"] == str(path)
        expected = 0 if all(line["dual"] for line in lines) else 1
        assert out.returncode == expected

    def test_client_shutdown_stops_the_server_gracefully(self, running_server):
        server, address, env = running_server
        out = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "client",
                address,
                str(_corpus_paths()[0]),
                "--shutdown",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=240,
        )
        assert out.returncode in (0, 1)
        assert server.wait(timeout=30) == 0

    def test_sigint_shuts_the_server_down_cleanly(self, running_server):
        server, _address, _env = running_server
        server.send_signal(signal.SIGINT)
        assert server.wait(timeout=30) == 0

    def test_listen_rejects_instance_arguments(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="repro client"):
            main(["serve", "--listen", "127.0.0.1:0", "whatever.hg"])
