"""Tests for Section 4: next, path descriptors, pathnode, decompose, Cor. 4.1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    standard_dual_suite,
    threshold_dual_pair,
)
from repro.hypergraph.transversal import is_new_transversal
from repro.duality.boros_makino import tree_for
from repro.duality.logspace import (
    decide_logspace,
    decompose,
    descriptor_bits,
    encode_state,
    decode_state,
    find_new_transversal_logspace,
    initial_attrs,
    instance_size,
    is_valid_descriptor,
    iter_path_descriptors,
    iter_tree_nodes,
    max_child_index,
    max_depth_bound,
    model_space_bits,
    next_attrs,
    pathnode,
    pathnode_metered,
    pathnode_pipeline,
)
from repro.duality.tree import Mark

from tests.conftest import nonempty_simple_hypergraphs


def _ordered(g, h):
    """Apply the paper's |H| ≤ |G| convention."""
    return (h, g) if len(h) > len(g) else (g, h)


class TestGeometry:
    def test_max_depth_bound(self):
        assert max_depth_bound(Hypergraph([{0}], vertices={0})) == 0
        assert max_depth_bound(Hypergraph([{0}, {1}])) == 1
        g, h = matching_dual_pair(3)
        assert max_depth_bound(h) == 3  # |H| = 8

    def test_max_child_index(self):
        g, h = matching_dual_pair(2)
        assert max_child_index(g) == len(g.vertices) * len(g)

    def test_descriptor_validity(self):
        g, h = matching_dual_pair(2)
        g, h = _ordered(g, h)
        assert is_valid_descriptor(g, h, ())
        assert is_valid_descriptor(g, h, (1,))
        assert not is_valid_descriptor(g, h, (0,))
        assert not is_valid_descriptor(g, h, (max_child_index(g) + 1,))
        too_long = tuple([1] * (max_depth_bound(h) + 1))
        assert not is_valid_descriptor(g, h, too_long)

    def test_descriptor_bits_grows_polylog(self):
        sizes = []
        for k in (2, 3, 4, 5):
            g, h = matching_dual_pair(k)
            g, h = _ordered(g, h)
            sizes.append(descriptor_bits(g, h))
        assert sizes == sorted(sizes)
        # log-squared-ish: doubling k (≈ squaring |H|) far from squares bits.
        assert sizes[-1] < 4 * sizes[0] * 4

    def test_iter_path_descriptors_count(self):
        g, h = matching_dual_pair(1)
        g, h = _ordered(g, h)
        bound = max_child_index(g)
        depth = max_depth_bound(h)
        expected = sum(bound ** k for k in range(depth + 1))
        assert len(list(iter_path_descriptors(g, h))) == expected


class TestNextAttrs:
    def test_marked_node_has_no_children(self):
        g = Hypergraph([{0}, {1}], vertices={0, 1})
        h = Hypergraph([{0, 1}], vertices={0, 1})
        root = initial_attrs(g, h)
        assert root.mark is Mark.DONE
        assert next_attrs(g, h, root, 1) is None

    def test_children_enumerate_contiguously(self):
        g, h = threshold_dual_pair(5, 3)
        g, h = _ordered(g, h)
        root = initial_attrs(g, h)
        tree = tree_for(g, h)
        kappa = len(tree.root.children)
        for i in range(1, kappa + 1):
            assert next_attrs(g, h, root, i) is not None
        assert next_attrs(g, h, root, kappa + 1) is None

    def test_rejects_index_zero(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError):
            next_attrs(g, h, initial_attrs(g, h), 0)


class TestPathnode:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: matching_dual_pair(2),
            lambda: matching_dual_pair(3),
            lambda: threshold_dual_pair(5, 3),
            lambda: hard_nondual_pair(2),
            lambda: hard_nondual_pair(3),
        ],
    )
    def test_matches_tree_on_every_label(self, maker):
        g, h = _ordered(*maker())
        tree = tree_for(g, h)
        for node in tree.nodes():
            assert pathnode(g, h, node.attrs.label) == node.attrs

    def test_wrongpath_on_bad_descriptors(self):
        g, h = _ordered(*matching_dual_pair(2))
        assert pathnode(g, h, (10 ** 6,)) is None
        deep = tuple([1] * (max_depth_bound(h) + 5))
        assert pathnode(g, h, deep) is None

    def test_root_path(self):
        g, h = _ordered(*matching_dual_pair(2))
        assert pathnode(g, h, ()) == initial_attrs(g, h)

    @given(nonempty_simple_hypergraphs(max_vertices=4, max_edges=3))
    @settings(max_examples=15, deadline=None)
    def test_pathnode_tree_equivalence_random(self, hg):
        h = transversal_hypergraph(hg)
        g2, h2 = _ordered(hg, h)
        tree = tree_for(g2, h2)
        for node in tree.nodes():
            assert pathnode(g2, h2, node.attrs.label) == node.attrs


class TestMeteredAndPipeline:
    def test_metered_agrees_with_plain(self):
        g, h = _ordered(*matching_dual_pair(3))
        for attrs in iter_tree_nodes(g, h):
            metered, meter = pathnode_metered(g, h, attrs.label)
            assert metered == attrs
            assert meter.peak_bits <= model_space_bits(g, h) + 64

    def test_meter_releases_everything(self):
        g, h = _ordered(*matching_dual_pair(2))
        _attrs, meter = pathnode_metered(g, h, (1,))
        assert meter.live_bits == 0
        assert meter.peak_bits > 0

    def test_wrongpath_metered(self):
        g, h = _ordered(*matching_dual_pair(2))
        attrs, _meter = pathnode_metered(g, h, (10 ** 9,))
        assert attrs is None

    def test_pipeline_agrees_with_plain(self):
        g, h = _ordered(*matching_dual_pair(2))
        tree = tree_for(g, h)
        for node in tree.nodes():
            attrs, pipeline = pathnode_pipeline(g, h, node.attrs.label)
            assert attrs == node.attrs
            assert pipeline.meter.live_bits == 0

    def test_pipeline_counts_recomputations(self):
        g, h = _ordered(*threshold_dual_pair(5, 3))
        deepest = max(iter_tree_nodes(g, h), key=lambda a: a.depth)
        _attrs, pipeline = pathnode_pipeline(g, h, deepest.label)
        # Recomputation means strictly more stage invocations than stages.
        assert pipeline.invocations > len(pipeline.stages)

    def test_state_encoding_roundtrip(self):
        g, h = _ordered(*matching_dual_pair(2))
        for attrs in iter_tree_nodes(g, h):
            text = encode_state(attrs, (2, 1))
            back, gamma = decode_state(text, g, h)
            assert back == attrs
            assert gamma == (2, 1)
        assert decode_state(encode_state(None, ()), g, h) == (None, ())


class TestDecompose:
    def test_pruned_equals_tree(self):
        g, h = _ordered(*threshold_dual_pair(5, 3))
        tree = tree_for(g, h)
        out = decompose(g, h)
        assert [a.label for a in out["vertices"]] == sorted(tree.labels())
        assert out["edges"] == sorted(tree.edges())

    def test_exhaustive_equals_pruned_on_tiny_instance(self):
        g, h = _ordered(*matching_dual_pair(2))
        pruned = decompose(g, h)
        full = decompose(g, h, exhaustive=True)
        assert [a.label for a in pruned["vertices"]] == [
            a.label for a in full["vertices"]
        ]
        assert pruned["edges"] == full["edges"]

    def test_exhaustive_guard(self):
        g, h = _ordered(*matching_dual_pair(4))
        with pytest.raises(MemoryError):
            decompose(g, h, exhaustive=True, exhaustive_limit=10)


class TestCorollary41:
    def test_decider_on_suite(self):
        for name, g, h in standard_dual_suite(max_matching=3, max_threshold=5):
            assert decide_logspace(g, h).is_dual, name

    def test_decider_rejects_and_witnesses(self):
        for name, g, h in standard_dual_suite(max_matching=3, max_threshold=4):
            if len(h) <= 1:
                continue
            broken = perturb_drop_edge(h)
            result = decide_logspace(g, broken)
            assert not result.is_dual, name

    def test_find_new_transversal_direction(self):
        g, h = matching_dual_pair(3)
        broken = perturb_drop_edge(h)
        witness = find_new_transversal_logspace(g, broken)
        assert witness is not None
        universe = g.vertices | broken.vertices
        assert is_new_transversal(
            witness, g.with_vertices(universe), broken.with_vertices(universe)
        )

    def test_find_new_transversal_none_for_dual(self):
        g, h = matching_dual_pair(2)
        assert find_new_transversal_logspace(g, h) is None

    def test_find_new_transversal_rejects_invalid_instance(self):
        g, h = matching_dual_pair(2)
        from repro.hypergraph.generators import perturb_enlarge_edge

        with pytest.raises(ValueError):
            find_new_transversal_logspace(g, perturb_enlarge_edge(h))

    def test_space_scales_subquadratically(self):
        # peak bits must grow like log², i.e. far slower than instance size.
        peaks = []
        sizes = []
        for k in (2, 3, 4, 5):
            g, h = _ordered(*matching_dual_pair(k))
            result = decide_logspace(g, h)
            peaks.append(result.stats.peak_space_bits)
            sizes.append(instance_size(g, h))
        assert sizes[-1] / sizes[0] > 4
        assert peaks[-1] / peaks[0] < sizes[-1] / sizes[0]
