"""Tests for the space-metered machine substrate (Section 3 mechanics)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpaceBudgetExceeded
from repro.machine import (
    FunctionTransducer,
    Pipeline,
    Register,
    RegisterFile,
    SpaceMeter,
    StringView,
    constant,
    floor_log_length,
    path_descriptor_length,
    self_composition,
)


class TestSpaceMeter:
    def test_peak_tracks_high_water_mark(self):
        meter = SpaceMeter()
        a = meter.register("a", 255)  # 8 bits
        assert meter.peak_bits == 8
        b = meter.register("b", 15)  # 4 bits
        assert meter.peak_bits == 12
        a.free()
        assert meter.live_bits == 4
        assert meter.peak_bits == 12
        b.free()
        assert meter.live_bits == 0

    def test_budget_enforced(self):
        meter = SpaceMeter(budget_bits=8)
        meter.register("ok", 255)
        with pytest.raises(SpaceBudgetExceeded):
            meter.register("overflow", 1)

    def test_budget_error_carries_numbers(self):
        meter = SpaceMeter(budget_bits=4)
        try:
            meter.register("big", 255)
        except SpaceBudgetExceeded as exc:
            assert exc.used_bits == 8
            assert exc.budget_bits == 4
        else:  # pragma: no cover
            pytest.fail("budget not enforced")

    def test_snapshot(self):
        meter = SpaceMeter()
        meter.register("x", 1)
        snap = meter.snapshot()
        assert snap["live_bits"] == 1
        assert snap["allocations"] == 1


class TestRegister:
    def test_width_from_max_value(self):
        meter = SpaceMeter()
        assert meter.register("r", 0).width == 1
        assert meter.register("r", 1).width == 1
        assert meter.register("r", 255).width == 8
        assert meter.register("r", 256).width == 9

    def test_value_range_enforced(self):
        meter = SpaceMeter()
        reg = meter.register("r", 10)
        reg.value = 10
        with pytest.raises(ValueError):
            reg.value = 11
        with pytest.raises(ValueError):
            reg.value = -1

    def test_use_after_free_rejected(self):
        meter = SpaceMeter()
        reg = meter.register("r", 1)
        reg.free()
        with pytest.raises(RuntimeError):
            _ = reg.value
        with pytest.raises(RuntimeError):
            reg.value = 1

    def test_double_free_is_idempotent(self):
        meter = SpaceMeter()
        reg = meter.register("r", 1)
        reg.free()
        reg.free()
        assert meter.live_bits == 0

    def test_context_manager(self):
        meter = SpaceMeter()
        with meter.register("r", 7) as reg:
            reg.value = 5
        assert meter.live_bits == 0

    @given(st.integers(min_value=0, max_value=10 ** 9))
    def test_width_is_bit_length(self, max_value):
        meter = SpaceMeter()
        reg = meter.register("r", max_value)
        assert reg.width == max(1, max_value.bit_length())


class TestRegisterFile:
    def test_grouped_free(self):
        meter = SpaceMeter()
        with RegisterFile(meter, "stage") as regs:
            regs.register("d", 100)
            regs.bit("o")
            assert meter.live_bits == regs.total_width()
        assert meter.live_bits == 0

    def test_named_access(self):
        meter = SpaceMeter()
        regs = RegisterFile(meter, "stage")
        d = regs.register("d", 3)
        assert regs["d"] is d
        regs.free()


def _double(text: str) -> str:
    return "".join(ch + ch for ch in text)


def _rotate(text: str) -> str:
    return text[1:] + text[:1] if text else text


class TestTransducer:
    def test_transduce(self):
        meter = SpaceMeter()
        stage = FunctionTransducer(_double, name="double")
        assert stage.transduce(StringView("ab"), meter) == "aabb"
        assert meter.live_bits == 0

    def test_output_length(self):
        meter = SpaceMeter()
        stage = FunctionTransducer(_double)
        assert stage.output_length(StringView("abc"), meter) == 6

    def test_output_char(self):
        meter = SpaceMeter()
        stage = FunctionTransducer(_double)
        assert stage.output_char(StringView("ab"), 2, meter) == "b"

    def test_output_char_out_of_range(self):
        meter = SpaceMeter()
        stage = FunctionTransducer(_double)
        with pytest.raises(IndexError):
            stage.output_char(StringView("a"), 5, meter)


class TestPipeline:
    def test_recomputed_equals_direct(self):
        pipeline = Pipeline(
            [FunctionTransducer(_double), FunctionTransducer(_rotate)]
        )
        text = "abc"
        assert pipeline.compute_recomputed(text) == pipeline.compute_direct(text)

    def test_self_composition(self):
        pipeline = self_composition(FunctionTransducer(_rotate), 3)
        assert pipeline.compute_recomputed("abcd") == "dabc"

    def test_recomputation_counted(self):
        pipeline = self_composition(FunctionTransducer(_double), 3)
        pipeline.compute_recomputed("ab")
        assert pipeline.invocations > 3

    def test_no_input_bound(self):
        pipeline = Pipeline([FunctionTransducer(_double)])
        with pytest.raises(RuntimeError):
            pipeline.view_of_stage(0)

    def test_meter_peak_scales_with_stage_count(self):
        # Recomputation costs ~L^stages stage runs (the faithful time
        # price of the no-storage discipline), so the input stays tiny.
        def peak(stages: int) -> int:
            pipeline = self_composition(FunctionTransducer(_rotate), stages)
            pipeline.compute_recomputed("abc")
            return pipeline.meter.peak_bits

        p2, p4, p8 = peak(2), peak(4), peak(8)
        assert p2 < p4 < p8
        # Linear in the number of stages (log n stages → log² n total).
        assert p8 <= 4.5 * p2

    def test_report(self):
        pipeline = self_composition(FunctionTransducer(_rotate), 2)
        pipeline.compute_recomputed("ab")
        report = pipeline.report()
        assert report["stages"] == 2
        assert report["stage_invocations"] == pipeline.invocations

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            self_composition(FunctionTransducer(_rotate), 0)


class TestQlog:
    def test_floor_log_length(self):
        rho = floor_log_length()
        assert rho("x" * 8) == 3
        assert rho("x" * 9) == 3
        assert rho("") == 1

    def test_constant(self):
        assert constant(3)("whatever") == 3

    def test_path_descriptor_length(self):
        rho = path_descriptor_length()
        assert rho("stuff#1,2,3") == 3
        assert rho("stuff#") == 1
        assert rho("1,2") == 2  # no '#': whole text is the descriptor

    def test_bound_enforced(self):
        from repro.machine.qlog import QlogFunction

        bad = QlogFunction("linear", lambda text: len(text), bound_factor=1.0)
        with pytest.raises(ValueError):
            bad("y" * 4096)

    def test_negative_rejected(self):
        from repro.machine.qlog import QlogFunction

        bad = QlogFunction("neg", lambda _t: -1)
        with pytest.raises(ValueError):
            bad("abc")


class TestLemma31Shape:
    """The lemma's statement, measured: peak bits ≈ a + b·(#stages · log n)."""

    def test_log_stages_gives_log_squared_total(self):
        # Sizes kept tiny because the recomputation discipline costs
        # ~L^stages — which is the lemma's own time bound made concrete.
        results = {}
        for length in (4, 8, 16):
            text = "a" * length
            rho = max(1, int(math.log2(length)))
            pipeline = self_composition(FunctionTransducer(_rotate), rho)
            pipeline.compute_recomputed(text)
            results[length] = pipeline.meter.peak_bits
        # Growth must be polylogarithmic: far slower than linear in input.
        assert results[16] < results[4] * (16 / 4)
        assert results[4] <= results[8] <= results[16]
