"""Tests for :mod:`repro.duality.tractable` — the Section 6 fast paths."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    acyclic_chain,
    cycle_graph_edges,
    matching_dual_pair,
    path_graph_edges,
    perturb_drop_edge,
    threshold,
)
from repro.hypergraph.structure import is_alpha_acyclic
from repro.duality import decide_duality
from repro.duality.tractable import (
    classify_instance,
    complete_uniform_arity,
    decide_duality_acyclic,
    decide_duality_graph,
    decide_duality_threshold,
    decide_duality_tractable,
    graph_reduction,
    gyo_edge_order,
    maximal_independent_sets_iter,
    minimal_vertex_covers_iter,
    transversals_via_mis,
)
from repro.duality.witness import check_result_witness


def graph_hg(edges) -> Hypergraph:
    return Hypergraph([frozenset(e) for e in edges])


# ----------------------------------------------------------------------
# MIS enumeration
# ----------------------------------------------------------------------


class TestMISEnumeration:
    def test_triangle(self):
        hg = graph_hg([("a", "b"), ("b", "c"), ("a", "c")])
        mis = set(maximal_independent_sets_iter(hg.vertices, hg.edges))
        assert mis == {frozenset({"a"}), frozenset({"b"}), frozenset({"c"})}

    def test_path(self):
        hg = graph_hg([("a", "b"), ("b", "c")])
        mis = set(maximal_independent_sets_iter(hg.vertices, hg.edges))
        assert mis == {frozenset({"a", "c"}), frozenset({"b"})}

    def test_empty_graph_single_mis(self):
        mis = list(maximal_independent_sets_iter(frozenset("abc"), ()))
        assert mis == [frozenset("abc")]

    def test_covers_are_minimal_transversals(self):
        hg = graph_hg([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])
        covers = set(minimal_vertex_covers_iter(hg.vertices, hg.edges))
        assert covers == set(transversal_hypergraph(hg).edges)

    @given(
        st.sets(
            st.frozensets(
                st.integers(min_value=0, max_value=6), min_size=2, max_size=2
            ),
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mis_route_matches_berge_on_random_graphs(self, edges):
        hg = Hypergraph(edges)
        if not hg.edges:
            return
        covers = set(minimal_vertex_covers_iter(hg.vertices, hg.edges))
        assert covers == set(transversal_hypergraph(hg).edges)

    def test_enumeration_is_lazy(self):
        # a matching of 12 pairs has 2^12 MIS; taking 3 must be instant
        edges = tuple(frozenset({2 * i, 2 * i + 1}) for i in range(12))
        vertices = frozenset(range(24))
        it = maximal_independent_sets_iter(vertices, edges)
        first_three = [next(it) for _ in range(3)]
        assert len(first_three) == 3


# ----------------------------------------------------------------------
# Graph decider
# ----------------------------------------------------------------------


class TestGraphDecider:
    def test_reduction_splits_forced_and_pairs(self):
        g = Hypergraph([{"a", "b"}, {"c"}])
        forced, pairs, covered = graph_reduction(g)
        assert forced == frozenset({"c"})
        assert pairs == (frozenset({"a", "b"}),)
        assert covered == frozenset({"a", "b"})

    def test_reduction_rejects_rank_3(self):
        with pytest.raises(InvalidInstanceError):
            graph_reduction(Hypergraph([{"a", "b", "c"}]))

    @pytest.mark.parametrize(
        "edges",
        [
            [("a", "b")],
            [("a", "b"), ("b", "c")],
            [("a", "b"), ("b", "c"), ("a", "c")],
            [("a", "b"), ("c", "d")],
        ],
    )
    def test_dual_pairs_accepted(self, edges):
        g = graph_hg(edges)
        h = transversal_hypergraph(g)
        result = decide_duality_graph(g, h)
        assert result.is_dual

    def test_missing_transversal_found_with_witness(self):
        g = graph_hg([("a", "b"), ("c", "d")])
        h = transversal_hypergraph(g)
        broken = perturb_drop_edge(h, index=0)
        result = decide_duality_graph(g, broken)
        assert not result.is_dual
        assert check_result_witness(
            g.with_vertices(g.vertices | broken.vertices),
            broken.with_vertices(g.vertices | broken.vertices),
            result,
        )

    def test_forced_vertices_flow_through(self):
        g = Hypergraph([{"a", "b"}, {"x"}, {"y"}])
        h = transversal_hypergraph(g)
        assert decide_duality_graph(g, h).is_dual

    def test_work_bounded_by_h(self):
        g, h = matching_dual_pair(4)
        result = decide_duality_graph(g, h)
        assert result.is_dual
        assert result.stats.nodes == len(h)

    def test_transversals_via_mis_constants(self):
        assert transversals_via_mis(Hypergraph.empty("ab")).edges == (
            frozenset(),
        )
        assert (
            len(transversals_via_mis(Hypergraph.trivial_true("ab"))) == 0
        )


# ----------------------------------------------------------------------
# Threshold decider
# ----------------------------------------------------------------------


class TestThresholdDecider:
    def test_arity_recognition(self):
        assert complete_uniform_arity(threshold(5, 3)) == 3
        assert complete_uniform_arity(threshold(6, 2)) == 2
        assert complete_uniform_arity(Hypergraph([{"a", "b"}, {"c"}])) is None
        assert (
            complete_uniform_arity(Hypergraph([{"a", "b"}, {"b", "c"}]))
            is None
        )
        assert complete_uniform_arity(Hypergraph.empty("ab")) is None

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (6, 3), (7, 4)])
    def test_dual_threshold_pairs(self, n, k):
        g = threshold(n, k)
        h = transversal_hypergraph(g)
        result = decide_duality_threshold(g, h)
        assert result.is_dual
        assert result.stats.extra["dual_size"] == n - k + 1

    def test_missing_subset_witnessed(self):
        g = threshold(5, 3)
        h = transversal_hypergraph(g)
        broken = perturb_drop_edge(h, index=2)
        result = decide_duality_threshold(g, broken)
        assert not result.is_dual
        assert result.witness is not None
        assert len(result.witness) == 3
        assert result.witness not in set(broken.edges)

    def test_rejects_non_uniform(self):
        g = Hypergraph([{"a", "b"}, {"b", "c"}])
        h = transversal_hypergraph(g)
        with pytest.raises(InvalidInstanceError):
            decide_duality_threshold(g, h)


# ----------------------------------------------------------------------
# Acyclic decider
# ----------------------------------------------------------------------


class TestAcyclicDecider:
    def test_gyo_order_covers_all_edges(self):
        g = acyclic_chain(3)
        order = gyo_edge_order(g)
        assert sorted(map(sorted, order)) == sorted(
            map(sorted, g.edges)
        )

    def test_dual_acyclic_pair(self):
        g = acyclic_chain(3)
        assert is_alpha_acyclic(g)
        h = transversal_hypergraph(g)
        result = decide_duality_acyclic(g, h)
        assert result.is_dual

    def test_rejects_cyclic_input(self):
        g = Hypergraph(
            [frozenset(e) for e in cycle_graph_edges(5)]
        )
        # cycles of length ≥ 4 are not α-acyclic
        h = transversal_hypergraph(g)
        with pytest.raises(InvalidInstanceError):
            decide_duality_acyclic(g, h)

    def test_missing_and_extra_witnesses(self):
        g = acyclic_chain(2)
        h = transversal_hypergraph(g)
        broken = perturb_drop_edge(h, index=1)
        result = decide_duality_acyclic(g, broken)
        assert not result.is_dual
        assert result.witness is not None

    def test_peak_intermediate_reported(self):
        g = acyclic_chain(4)
        h = transversal_hypergraph(g)
        result = decide_duality_acyclic(g, h)
        assert result.stats.extra["peak_intermediate"] >= 1
        assert result.stats.extra["peak_intermediate"] <= len(h) * max(
            1, len(g.vertices)
        )


# ----------------------------------------------------------------------
# Dispatch + engine integration
# ----------------------------------------------------------------------


class TestDispatch:
    def test_classification(self):
        g_graph = graph_hg([("a", "b")])
        assert classify_instance(
            g_graph, transversal_hypergraph(g_graph)
        ) == "graph"
        g_th = threshold(5, 3)
        assert classify_instance(
            g_th, transversal_hypergraph(g_th)
        ) == "threshold"
        g_ac = acyclic_chain(2)
        assert classify_instance(
            g_ac, transversal_hypergraph(g_ac)
        ) == "acyclic"
        assert classify_instance(
            Hypergraph.empty("ab"), Hypergraph.trivial_true("ab")
        ) == "constant"

    def test_general_fallback(self):
        # a cyclic, non-uniform, rank-3 instance goes to the BM engine
        g = Hypergraph(
            [{"a", "b", "c"}, {"c", "d", "e"}, {"e", "f", "a"}, {"b", "d", "f"}]
        )
        h = transversal_hypergraph(g)
        if classify_instance(g, h) == "general":
            result = decide_duality_tractable(g, h)
            assert result.is_dual
            assert result.stats.extra["class"] == "general"

    def test_engine_facade_accepts_tractable(self):
        g, h = matching_dual_pair(3)
        result = decide_duality(g, h, method="tractable")
        assert result.is_dual
        assert result.stats.extra["class"] == "graph"

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: graph_hg(path_graph_edges(5)),
            lambda: graph_hg(cycle_graph_edges(5)),
            lambda: threshold(5, 3),
            lambda: acyclic_chain(2),
        ],
    )
    def test_dispatch_agrees_with_reference(self, maker):
        g = maker()
        h = transversal_hypergraph(g)
        assert decide_duality_tractable(g, h).is_dual
        broken = perturb_drop_edge(h, index=0)
        fast = decide_duality_tractable(g, broken)
        slow = decide_duality(g, broken, method="transversal")
        assert fast.is_dual == slow.is_dual is False

    @given(
        st.sets(
            st.frozensets(
                st.integers(min_value=0, max_value=5), min_size=1, max_size=2
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_graph_decider_agrees_with_oracle_on_random_rank2(self, edges):
        g = Hypergraph(edges).minimized()
        h = transversal_hypergraph(g)
        assert decide_duality_graph(g, h).is_dual
