"""Property-based tests for the knowledge-representation extensions.

Deeper structural invariants than the per-module suites: identities
that tie the new subsystems back to the transversal machinery, checked
on randomly generated instances.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.dfs_enumeration import (
    DFSStats,
    minimal_transversals_dfs,
)
from repro.hypergraph.operations import complement_family
from repro.duality import decide_duality
from repro.learning import MembershipOracle, learn_monotone_function
from repro.logic import MonotoneCNF, intersection_closure
from repro.envelopes import horn_envelope


small_hypergraphs = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=4), min_size=1, max_size=3),
    min_size=1,
    max_size=5,
).map(lambda edges: Hypergraph(edges, vertices=range(5)).minimized())


@given(small_hypergraphs)
@settings(max_examples=60, deadline=None)
def test_dfs_node_count_identity(hg):
    """DFS visits exactly one node per minimal hitting set of each prefix.

    The unique-parent argument says the DFS tree's level-``i`` nodes are
    precisely ``tr(first i edges)`` (plus the root for the empty
    prefix), so the node count must equal the sum of those family
    sizes — a sharp accounting identity tying the enumerator to Berge.
    """
    if hg.is_trivial_true():
        return
    stats = DFSStats()
    list(minimal_transversals_dfs(hg, stats))
    edges = list(hg.edges)
    expected = 0
    for i in range(len(edges) + 1):
        prefix = Hypergraph(edges[:i], vertices=hg.vertices)
        expected += len(transversal_hypergraph(prefix))
    assert stats.nodes == expected


@given(small_hypergraphs)
@settings(max_examples=40, deadline=None)
def test_learned_borders_are_dual_families(hg):
    """Learning any monotone function yields MTP = tr(MFPᶜ) exactly."""
    oracle = MembershipOracle.from_hypergraph(hg)
    learned = learn_monotone_function(oracle)
    mtp = learned.minimal_true_points
    mfp_c = complement_family(learned.maximal_false_points)
    assert decide_duality(mfp_c, mtp, method="transversal").is_dual


@given(small_hypergraphs)
@settings(max_examples=40, deadline=None)
def test_cnf_prime_implicants_involution(hg):
    """CNF → prime-implicant DNF → prime-implicate CNF is an involution
    on irredundant families (tr ∘ tr = id on antichains)."""
    cnf = MonotoneCNF.from_hypergraph(hg)
    dnf = cnf.prime_implicants_dnf()
    back = MonotoneCNF.from_hypergraph(
        transversal_hypergraph(dnf.hypergraph())
    )
    assert back.hypergraph() == hg


@given(
    st.lists(
        st.frozensets(st.sampled_from("abcd")),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=40, deadline=None)
def test_envelope_is_idempotent(models):
    """The envelope of the envelope's models is the same theory's models."""
    atoms = "abcd"
    first = intersection_closure(models)
    envelope = horn_envelope(models, atoms=atoms)
    again = horn_envelope(envelope.models(), atoms=atoms)
    assert set(again.models()) == first


@given(small_hypergraphs, st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_early_stop_soundness_under_perturbation(hg, drop):
    """Dropping any edge from tr(G) is always detected by every engine
    that participates in the experiments' cross-checks."""
    if hg.is_trivial_true() or hg.is_trivial_false():
        return
    h = transversal_hypergraph(hg)
    if len(h) <= 1:
        return
    index = drop % len(h)
    broken = Hypergraph(
        [e for i, e in enumerate(h.edges) if i != index], vertices=h.vertices
    )
    for method in ("dfs-enum", "tractable", "bm"):
        assert not decide_duality(hg, broken, method=method).is_dual
