"""Tests for :mod:`repro.envelopes` — the KPS Horn-envelope construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError, VertexError
from repro.logic import (
    HornTheory,
    intersection_closure,
    is_intersection_closed,
)
from repro.envelopes import (
    envelope_clauses_for_head,
    envelope_is_exact,
    envelope_negative_clauses,
    horn_envelope,
    models_of_envelope,
)
from repro.envelopes.horn_envelope import envelope_blowup


class TestEnvelopeClauses:
    def test_fact_for_always_true_atom(self):
        clauses = envelope_clauses_for_head(
            [{"a"}, {"a", "b"}], head="a", atoms="ab"
        )
        assert any(c.body == frozenset() and c.head == "a" for c in clauses)

    def test_no_sound_body_when_head_unforceable(self):
        # b is false in the model {a}; a alone cannot force b because
        # {a} is a model — the only candidate body {a} is unsound.
        clauses = envelope_clauses_for_head([{"a"}], head="b", atoms="ab")
        assert clauses == []

    def test_implication_is_recovered(self):
        # models of a→b over {a,b}: {}, {b}, {a,b}
        models = [set(), {"b"}, {"a", "b"}]
        clauses = envelope_clauses_for_head(models, head="b", atoms="ab")
        assert any(c.body == frozenset({"a"}) for c in clauses)

    def test_bodies_are_minimal(self):
        models = [set(), {"b"}, {"a", "b"}, {"c"}]
        for head in "abc":
            clauses = envelope_clauses_for_head(models, head, atoms="abc")
            bodies = [c.body for c in clauses]
            for body in bodies:
                assert not any(o < body for o in bodies)

    def test_unknown_head_rejected(self):
        with pytest.raises(VertexError):
            envelope_clauses_for_head([{"a"}], head="z", atoms="ab")

    def test_negative_clauses(self):
        # no model contains both a and b
        clauses = envelope_negative_clauses([{"a"}, {"b"}], atoms="ab")
        assert [c.body for c in clauses] == [frozenset({"a", "b"})]

    def test_empty_model_set_rejected(self):
        with pytest.raises(InvalidInstanceError):
            horn_envelope([], atoms="ab")

    def test_models_outside_universe_rejected(self):
        with pytest.raises(VertexError):
            horn_envelope([{"z"}], atoms="ab")


class TestHornEnvelope:
    def test_envelope_models_are_intersection_closure(self):
        models = [{"a"}, {"b"}]
        assert models_of_envelope(models, atoms="ab") == intersection_closure(
            models
        )

    def test_envelope_of_horn_theory_is_exact(self):
        theory = HornTheory.from_tuples(
            [(("a",), "b"), ((), "c")], atoms="abc"
        )
        models = theory.models()
        assert envelope_is_exact(models, atoms="abc")
        env = horn_envelope(models, atoms="abc")
        assert set(env.models()) == set(models)

    def test_envelope_is_sound(self):
        # every input model satisfies the envelope
        models = [{"a", "b"}, {"b", "c"}, {"a", "c"}]
        env = horn_envelope(models, atoms="abc")
        for m in models:
            assert env.is_model(m)

    def test_envelope_is_strongest(self):
        # no proper Horn strengthening still admits all input models:
        # the envelope's models are exactly the closure, nothing more.
        models = [{"a", "b"}, {"b", "c"}]
        got = models_of_envelope(models, atoms="abc")
        assert got == intersection_closure(models)

    def test_blowup_measure(self):
        models = [{"a", "b"}, {"b", "c"}, {"a", "c"}]
        before, after = envelope_blowup(models, atoms="abc")
        assert before == 3
        assert after == len(intersection_closure(models))
        assert after > before  # genuinely non-Horn input

    def test_exactness_predicate(self):
        assert envelope_is_exact([{"a"}, {"a", "b"}, set()], atoms="ab")
        assert not envelope_is_exact([{"a"}, {"b"}], atoms="ab")

    def test_envelope_from_characteristic_models_matches(self):
        from repro.logic import characteristic_models

        models = intersection_closure([{"a", "b"}, {"b", "c"}, {"c"}])
        chars = characteristic_models(models)
        full = models_of_envelope(models, atoms="abc")
        compact = models_of_envelope(chars, atoms="abc")
        assert full == compact

    @given(
        st.lists(
            st.frozensets(st.sampled_from("abcd")),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_envelope_models_equal_closure_property(self, models):
        got = models_of_envelope(models, atoms="abcd")
        assert got == intersection_closure(models)

    @given(
        st.lists(
            st.frozensets(st.sampled_from("abcd")),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_envelope_is_weakest_horn_upper_bound(self, models):
        # any Horn theory satisfied by all models is also satisfied by
        # every envelope model (soundness of each envelope clause means
        # the envelope only contains implied clauses)
        env = horn_envelope(models, atoms="abcd")
        closure = intersection_closure(models)
        for m in closure:
            assert env.is_model(m)
        assert is_intersection_closed(set(env.models()))
