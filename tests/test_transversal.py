"""Unit and property tests for :mod:`repro.hypergraph.transversal`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.hypergraph import (
    Hypergraph,
    is_minimal_transversal,
    is_new_transversal,
    is_transversal,
    maximal_independent_sets,
    minimal_transversals,
    minimalize_transversal,
    self_transversal,
    transversal_hypergraph,
    transversals_brute_force,
)
from repro.hypergraph.generators import (
    matching_dual_pair,
    threshold_dual_pair,
)
from repro.hypergraph.transversal import cross_intersecting

from tests.conftest import hypergraphs, simple_hypergraphs


class TestIsTransversal:
    def test_basic_hit_and_miss(self):
        hg = Hypergraph([{1, 2}, {3}])
        assert is_transversal({1, 3}, hg)
        assert is_transversal({2, 3}, hg)
        assert not is_transversal({1, 2}, hg)

    def test_empty_set_vs_empty_hypergraph(self):
        assert is_transversal(set(), Hypergraph.empty())

    def test_nothing_traverses_empty_edge(self):
        hg = Hypergraph.trivial_true({1, 2})
        assert not is_transversal({1, 2}, hg)

    def test_superset_of_transversal_is_transversal(self):
        hg = Hypergraph([{1, 2}, {3}])
        assert is_transversal({1, 2, 3}, hg)


class TestIsMinimalTransversal:
    def test_minimal_vs_non_minimal(self):
        hg = Hypergraph([{1, 2}, {2, 3}])
        assert is_minimal_transversal({2}, hg)
        assert is_minimal_transversal({1, 3}, hg)
        assert not is_minimal_transversal({1, 2}, hg)

    def test_non_transversal_is_not_minimal(self):
        hg = Hypergraph([{1, 2}])
        assert not is_minimal_transversal(set(), hg)

    def test_empty_set_is_minimal_for_empty_hypergraph(self):
        assert is_minimal_transversal(set(), Hypergraph.empty())

    @given(simple_hypergraphs(max_vertices=5, max_edges=4))
    def test_private_vertex_criterion_matches_subset_check(self, hg):
        from repro._util import powerset

        for cand in powerset(hg.vertices):
            by_criterion = is_minimal_transversal(cand, hg)
            by_definition = is_transversal(cand, hg) and not any(
                is_transversal(cand - {v}, hg) for v in cand
            )
            assert by_criterion == by_definition


class TestTransversalHypergraph:
    def test_triangle_is_self_dual(self, triangle):
        assert transversal_hypergraph(triangle) == triangle

    def test_empty_conventions(self):
        assert transversal_hypergraph(Hypergraph.empty()) == Hypergraph.trivial_true()
        assert transversal_hypergraph(Hypergraph.trivial_true()) == Hypergraph.empty()

    def test_conventions_preserve_universe(self):
        hg = Hypergraph.empty({1, 2})
        assert transversal_hypergraph(hg).vertices == {1, 2}

    def test_single_edge(self):
        hg = Hypergraph([{1, 2, 3}])
        assert set(transversal_hypergraph(hg).edges) == {
            frozenset({1}),
            frozenset({2}),
            frozenset({3}),
        }

    def test_matching_duals(self):
        for k in range(5):
            g, expected = matching_dual_pair(k)
            assert transversal_hypergraph(g) == expected

    def test_threshold_duals(self):
        for n in range(1, 7):
            for k in range(1, n + 1):
                g, expected = threshold_dual_pair(n, k)
                assert set(transversal_hypergraph(g).edges) == set(expected.edges)

    def test_involution_on_simple_hypergraphs(self, triangle):
        g = Hypergraph([{0, 1}, {2, 3}], vertices=range(4))
        assert transversal_hypergraph(transversal_hypergraph(g)) == g

    @given(hypergraphs(max_vertices=5, max_edges=4))
    @settings(max_examples=60)
    def test_agrees_with_brute_force(self, hg):
        assert transversal_hypergraph(hg) == transversals_brute_force(hg)

    @given(hypergraphs(max_vertices=6, max_edges=5))
    @settings(max_examples=60)
    def test_tr_tr_is_minimization(self, hg):
        # Berge: tr(tr(H)) = min(H) for every hypergraph H.
        assert transversal_hypergraph(transversal_hypergraph(hg)) == hg.minimized()

    @given(hypergraphs(max_vertices=6, max_edges=5))
    @settings(max_examples=60)
    def test_result_is_simple(self, hg):
        assert transversal_hypergraph(hg).is_simple()

    @given(hypergraphs(max_vertices=6, max_edges=4))
    @settings(max_examples=40)
    def test_every_result_edge_is_minimal_transversal(self, hg):
        for t in transversal_hypergraph(hg).edges:
            assert is_minimal_transversal(t, hg)


class TestMinimalize:
    def test_shrinks_to_minimal(self):
        hg = Hypergraph([{1, 2}, {2, 3}])
        t = minimalize_transversal({1, 2, 3}, hg)
        assert is_minimal_transversal(t, hg)

    def test_requires_transversal_input(self):
        hg = Hypergraph([{1, 2}])
        with pytest.raises(ValueError):
            minimalize_transversal(set(), hg)

    def test_deterministic(self):
        hg = Hypergraph([{1, 2}, {3, 4}])
        assert minimalize_transversal({1, 2, 3, 4}, hg) == minimalize_transversal(
            {4, 3, 2, 1}, hg
        )

    @given(simple_hypergraphs(max_vertices=6, max_edges=4))
    def test_full_vertex_set_minimalizes(self, hg):
        if hg.is_trivial_true():
            return
        t = minimalize_transversal(hg.vertices, hg)
        assert is_minimal_transversal(t, hg)


class TestNewTransversal:
    def test_witness_detection(self):
        g = Hypergraph([{0, 1}, {2, 3}], vertices=range(4))
        full_dual = transversal_hypergraph(g)
        incomplete = Hypergraph(list(full_dual.edges)[:-1], vertices=g.vertices)
        missing = list(full_dual.edges)[-1]
        assert is_new_transversal(missing, g, incomplete)

    def test_no_new_transversal_when_dual(self):
        g = Hypergraph([{0, 1}, {2, 3}], vertices=range(4))
        h = transversal_hypergraph(g)
        from repro._util import powerset

        assert not any(
            is_new_transversal(s, g, h) for s in powerset(g.vertices)
        )

    def test_non_transversal_is_not_new(self):
        g = Hypergraph([{0, 1}])
        assert not is_new_transversal(set(), g, Hypergraph.empty({0, 1}))


class TestDerivedViews:
    def test_maximal_independent_sets_are_complements(self, triangle):
        mis = maximal_independent_sets(triangle)
        assert set(mis.edges) == {frozenset({0}), frozenset({1}), frozenset({2})}

    def test_self_transversal_majority(self):
        from repro.hypergraph.generators import self_dual_majority

        assert self_transversal(self_dual_majority(3))
        assert self_transversal(self_dual_majority(5))

    def test_self_transversal_fails_for_matching(self):
        g, _ = matching_dual_pair(2)
        assert not self_transversal(g)

    def test_minimal_transversals_iterator(self):
        hg = Hypergraph([{1, 2}])
        assert list(minimal_transversals(hg)) == [frozenset({1}), frozenset({2})]

    def test_cross_intersecting(self):
        g = Hypergraph([{1, 2}])
        assert cross_intersecting(g, Hypergraph([{1}, {2}]))
        assert not cross_intersecting(g, Hypergraph([{3}], vertices={1, 2, 3}))
