"""Bitset/frozenset equivalence: the mask kernels agree with the set code.

The bitset layer (:mod:`repro.core`) re-implements the library's hot
loops on integer masks.  These property-style tests pin the contract on
randomized instances from :mod:`repro.hypergraph.generators`:

* kernel level — minimalisation, maximalisation, antichain and
  transversality checks match :mod:`repro._util` /
  :mod:`repro.hypergraph.transversal` semantics;
* engine level — deciders running on masks return the *identical*
  :class:`DualityResult` (verdict and certificate) as the frozenset
  reference paths;
* application level — vertical-bitmap frequency counting equals the
  definitional row scan.
"""

from __future__ import annotations

import random

import pytest

from repro._util import is_antichain, maximize_family, minimize_family
from repro.core import (
    BitsetFamily,
    VertexIndex,
    mask_sort_key,
    masks_are_antichain,
    maximalize_masks,
    minimalize_masks,
)
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    hard_nondual_pair,
    perturb_drop_edge,
    perturb_enlarge_edge,
    random_dual_pair,
    random_simple,
    standard_dual_suite,
)
from repro.hypergraph.operations import use_bitset_kernels
from repro.hypergraph.transversal import (
    is_minimal_transversal,
    is_new_transversal,
    is_transversal,
    minimalize_transversal,
    transversal_hypergraph,
    transversal_hypergraph_reference,
)
from repro.itemsets.datasets import dense_random, market_basket
from repro.itemsets.frequency import (
    frequency,
    frequency_scan,
    item_frequencies,
    support_map,
)


def random_families(count: int = 40, seed: int = 7):
    """Random (universe, family-of-frozensets) pairs, non-simple included."""
    rng = random.Random(seed)
    for _ in range(count):
        n = rng.randint(1, 12)
        universe = list(range(n))
        edges = [
            frozenset(rng.sample(universe, rng.randint(0, n)))
            for _ in range(rng.randint(0, 10))
        ]
        yield universe, edges


class TestVertexIndex:
    def test_roundtrip_on_mixed_universe(self):
        universe = {1, 2, "a", "b", (0, "x")}
        index = VertexIndex(universe)
        for subset in (set(), {1}, {"a", (0, "x")}, universe):
            assert index.decode(index.encode(subset)) == frozenset(subset)

    def test_bit_order_is_canonical_vertex_order(self):
        from repro._util import vertex_key

        universe = [5, 3, "z", "aa", 10]
        index = VertexIndex(universe)
        assert list(index.vertices) == sorted(set(universe), key=vertex_key)

    def test_encode_within_clips_foreign_vertices(self):
        index = VertexIndex([1, 2, 3])
        assert index.encode_within([1, "ghost", 3]) == index.encode([1, 3])

    def test_mask_order_equals_edge_sort_key_order(self):
        from repro._util import sort_key

        for universe, edges in random_families(20, seed=13):
            index = VertexIndex(universe)
            by_mask = sorted(
                set(edges), key=lambda e: mask_sort_key(index.encode(e))
            )
            by_key = sorted(set(edges), key=sort_key)
            assert by_mask == by_key


class TestKernelEquivalence:
    def test_minimalize_matches_minimize_family(self):
        for universe, edges in random_families():
            index = VertexIndex(universe)
            masks = minimalize_masks(index.encode(e) for e in edges)
            assert frozenset(index.decode(m) for m in masks) == minimize_family(
                edges
            )
            # Canonical ordering on top of the set equality.
            assert list(masks) == sorted(masks, key=mask_sort_key)

    def test_maximalize_matches_maximize_family(self):
        for universe, edges in random_families(seed=11):
            index = VertexIndex(universe)
            masks = maximalize_masks(index.encode(e) for e in edges)
            assert frozenset(index.decode(m) for m in masks) == maximize_family(
                edges
            )

    def test_antichain_check_matches(self):
        for universe, edges in random_families(seed=23):
            index = VertexIndex(universe)
            assert masks_are_antichain(
                index.encode(e) for e in edges
            ) == is_antichain(edges)

    def test_family_transversal_matches_reference(self):
        for seed in range(12):
            hg = random_simple(7, 5, seed=seed)
            family = BitsetFamily.from_sets(hg.edges, universe=hg.vertices)
            decoded = family.transversal_family().decode()
            expected = transversal_hypergraph_reference(hg)
            assert decoded == expected.edges


class TestTransversalEquivalence:
    def test_bitset_berge_equals_frozenset_berge(self):
        for name, g, _h in standard_dual_suite(max_matching=4, max_threshold=5):
            fast = transversal_hypergraph(g)
            slow = transversal_hypergraph_reference(g)
            assert fast == slow, name
            assert fast.edges == slow.edges, name  # same canonical order

    def test_orders_agree_between_impls(self):
        g = random_simple(8, 6, seed=3)
        for order in ("canonical", "small-first", "large-first", "interleaved"):
            assert transversal_hypergraph(
                g, order=order
            ) == transversal_hypergraph_reference(g, order=order)

    def test_predicates_against_definition(self):
        rng = random.Random(5)
        for seed in range(25):
            hg = random_simple(8, 5, seed=seed)
            candidate = frozenset(
                v for v in hg.vertices if rng.random() < 0.5
            )
            definitional = all(candidate & e for e in hg.edges)
            assert is_transversal(candidate, hg) == definitional
            minimal_def = definitional and all(
                any(candidate & e == {v} for e in hg.edges) for v in candidate
            )
            assert is_minimal_transversal(candidate, hg) == minimal_def

    def test_new_transversal_against_definition(self):
        for seed in range(10):
            g, h = random_dual_pair(6, 4, seed=seed)
            if not h.edges:
                continue
            broken = perturb_drop_edge(h)
            dropped = set(h.edges) - set(broken.edges)
            witness = next(iter(dropped))
            assert is_new_transversal(witness, g, broken)
            assert not is_new_transversal(witness, g, h)

    def test_minimalize_transversal_ignores_foreign_vertices(self):
        hg = Hypergraph([{1, 2}, {3, 4}])
        result = minimalize_transversal({1, 3, "ghost"}, hg)
        assert result <= hg.vertices
        assert is_minimal_transversal(result, hg)


class TestEngineEquivalence:
    """Mask and frozenset engine paths return identical DualityResults."""

    def _instances(self):
        for name, g, h in standard_dual_suite(max_matching=4, max_threshold=5):
            yield name, g, h
            if h.edges:
                yield name + "+drop", g, perturb_drop_edge(h)
                yield name + "+enlarge", g, perturb_enlarge_edge(h)
        for k in (2, 3):
            yield f"hard-{k}", *hard_nondual_pair(k)
        for seed in (11, 12, 13):
            yield f"random-{seed}", *random_dual_pair(7, 5, seed=seed)

    @pytest.mark.parametrize("use_b", (False, True))
    def test_fredman_khachiyan_paths_agree(self, use_b):
        from repro.duality.fredman_khachiyan import decide_fk_a, decide_fk_b

        decide = decide_fk_b if use_b else decide_fk_a
        for name, g, h in self._instances():
            fast = decide(g, h, use_bitset=True)
            slow = decide(g, h, use_bitset=False)
            assert fast.verdict == slow.verdict, name
            assert fast.certificate == slow.certificate, name

    @pytest.mark.parametrize("method", ("bm", "logspace"))
    def test_decomposition_engines_unchanged_by_kernel_toggle(self, method):
        from repro.duality.engine import decide_duality

        for name, g, h in self._instances():
            fast = decide_duality(g, h, method=method)
            use_bitset_kernels(False)
            try:
                slow = decide_duality(g, h, method=method)
            finally:
                use_bitset_kernels(True)
            assert fast.verdict == slow.verdict, (name, method)
            assert fast.certificate == slow.certificate, (name, method)

    def test_all_engines_agree_on_randomized_instances(self):
        from repro.duality.engine import decide_duality

        methods = ("transversal", "berge", "fk-a", "fk-b", "bm", "logspace")
        for name, g, h in self._instances():
            verdicts = {
                m: decide_duality(g, h, method=m).verdict for m in methods
            }
            assert len(set(verdicts.values())) == 1, (name, verdicts)


class TestFrequencyEquivalence:
    def _relations(self):
        yield market_basket(n_items=10, n_rows=60, seed=3)
        yield dense_random(n_items=8, n_rows=40, density=0.4, seed=9)
        yield dense_random(n_items=12, n_rows=80, density=0.6, seed=10)

    def test_bitmap_frequency_equals_row_scan(self):
        rng = random.Random(1)
        for relation in self._relations():
            items = sorted(relation.items, key=repr)
            for _ in range(30):
                u = rng.sample(items, rng.randint(0, min(5, len(items))))
                assert frequency(relation, u) == frequency_scan(relation, u)

    def test_support_map_equals_row_scan(self):
        rng = random.Random(2)
        for relation in self._relations():
            items = sorted(relation.items, key=repr)
            queries = [
                frozenset(rng.sample(items, rng.randint(0, 3)))
                for _ in range(20)
            ]
            support = support_map(relation, queries)
            assert support == {
                u: frequency_scan(relation, u) for u in set(queries)
            }

    def test_item_frequencies_equal_row_scan(self):
        for relation in self._relations():
            assert item_frequencies(relation) == {
                a: frequency_scan(relation, {a}) for a in relation.items
            }

    def test_empty_itemset_counts_all_rows(self):
        relation = market_basket(n_items=6, n_rows=25, seed=4)
        assert frequency(relation, ()) == len(relation)
