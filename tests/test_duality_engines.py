"""Cross-engine agreement: every decider answers like the truth table.

This is the load-bearing test module for the repository: the reference
deciders (truth table, transversal oracle) define the problem, and every
sophisticated engine (FK-A, FK-B, Boros–Makino, logspace, guess-check,
Berge) is checked against them on exhaustive small instances, the
structured dual families, controlled perturbations, and hypothesis-
generated instances — with witness validity enforced on every negative
answer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    degenerate_pairs,
    hard_nondual_pair,
    matching_dual_pair,
    perturb_drop_edge,
    perturb_enlarge_edge,
    random_dual_pair,
    standard_dual_suite,
    threshold_dual_pair,
)
from repro.duality import (
    available_methods,
    check_result_witness,
    decide_duality,
)
from repro.duality.result import FailureKind

from tests.conftest import nonempty_simple_hypergraphs

ALL_METHODS = available_methods()
FAST_METHODS = [m for m in ALL_METHODS if m != "truth-table"]


@pytest.mark.parametrize("method", ALL_METHODS)
class TestAgainstGroundTruth:
    def test_dual_suite_accepted(self, method):
        for name, g, h in standard_dual_suite(max_matching=3, max_threshold=5):
            result = decide_duality(g, h, method=method)
            assert result.is_dual, f"{method} rejected dual pair {name}"

    def test_dropped_edge_rejected_with_valid_witness(self, method):
        for name, g, h in standard_dual_suite(max_matching=3, max_threshold=4):
            if len(h) <= 1:
                continue
            broken = perturb_drop_edge(h)
            result = decide_duality(g, broken, method=method)
            assert not result.is_dual, f"{method} accepted broken pair {name}"
            assert check_result_witness(g, broken, result), (
                f"{method} returned an invalid witness on {name}: "
                f"{result.certificate}"
            )

    def test_enlarged_edge_rejected(self, method):
        for name, g, h in standard_dual_suite(max_matching=2, max_threshold=4):
            if len(h) == 0:
                continue
            broken = perturb_enlarge_edge(h)
            result = decide_duality(g, broken, method=method)
            assert not result.is_dual, f"{method} accepted non-minimal H on {name}"
            assert check_result_witness(g, broken, result)

    def test_degenerate_pairs(self, method):
        for name, g, h, expected in degenerate_pairs():
            result = decide_duality(g, h, method=method)
            assert result.is_dual == expected, f"{method} wrong on {name}"

    def test_hard_nondual(self, method):
        g, h = hard_nondual_pair(3)
        result = decide_duality(g, h, method=method)
        assert not result.is_dual
        assert check_result_witness(g, h, result)

    def test_self_duality_of_majority(self, method):
        from repro.hypergraph.generators import self_dual_majority

        m = self_dual_majority(5)
        assert decide_duality(m, m, method=method).is_dual

    def test_matching_is_not_self_dual(self, method):
        g, _ = matching_dual_pair(2)
        result = decide_duality(g, g, method=method)
        assert not result.is_dual


@pytest.mark.parametrize("method", FAST_METHODS)
class TestHypothesisAgreement:
    @given(nonempty_simple_hypergraphs(max_vertices=5, max_edges=4))
    @settings(max_examples=30, deadline=None)
    def test_exact_dual_is_accepted(self, method, hg):
        h = transversal_hypergraph(hg)
        assert decide_duality(hg, h, method=method).is_dual

    @given(
        nonempty_simple_hypergraphs(max_vertices=5, max_edges=4),
        nonempty_simple_hypergraphs(max_vertices=5, max_edges=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_agreement_with_truth_table(self, method, g, h):
        expected = decide_duality(g, h, method="truth-table")
        actual = decide_duality(g, h, method=method)
        assert actual.is_dual == expected.is_dual
        if not actual.is_dual:
            assert check_result_witness(g, h, actual)


class TestResultShape:
    def test_dual_result_has_no_witness(self):
        g, h = matching_dual_pair(2)
        result = decide_duality(g, h, method="bm")
        assert result.is_dual
        assert result.witness is None
        assert bool(result)

    def test_nondual_result_carries_kind(self):
        g, h = hard_nondual_pair(2)
        result = decide_duality(g, h, method="bm")
        assert result.certificate.kind is FailureKind.MISSING_TRANSVERSAL
        assert result.certificate.path is not None

    def test_unknown_method_rejected(self):
        g, h = matching_dual_pair(1)
        with pytest.raises(ValueError):
            decide_duality(g, h, method="quantum")

    def test_stats_populated_by_bm(self):
        g, h = threshold_dual_pair(5, 3)
        result = decide_duality(g, h, method="bm")
        assert result.stats.nodes > 0
        assert result.stats.max_depth >= 1

    def test_logspace_reports_space(self):
        g, h = matching_dual_pair(3)
        result = decide_duality(g, h, method="logspace")
        assert result.stats.peak_space_bits > 0

    def test_guess_check_reports_guessed_bits(self):
        g, h = matching_dual_pair(3)
        result = decide_duality(g, h, method="guess-check")
        assert result.stats.guessed_bits > 0


class TestDnfInterface:
    def test_dnf_duality(self):
        from repro.dnf import parse_dnf
        from repro.duality import decide_dnf_duality

        f = parse_dnf("a b | c")
        g = parse_dnf("a c | b c")
        result = decide_dnf_duality(f, g)
        assert result.is_dual

    def test_redundant_dnf_rejected(self):
        from repro.dnf import MonotoneDNF
        from repro.duality import decide_dnf_duality
        from repro.errors import NotIrredundantError

        with pytest.raises(NotIrredundantError):
            decide_dnf_duality(MonotoneDNF([{1}, {1, 2}]), MonotoneDNF([{1}]))

    def test_is_self_dual(self):
        from repro.duality import is_self_dual
        from repro.hypergraph.generators import self_dual_majority

        assert is_self_dual(self_dual_majority(3))
        assert not is_self_dual(Hypergraph([{0, 1}]))


class TestBergeInstrumentation:
    def test_peak_intermediate_recorded(self):
        g, h = matching_dual_pair(4)
        result = decide_duality(g, h, method="berge")
        assert result.stats.extra["peak_intermediate"] >= len(h)

    def test_cap_raises(self):
        from repro.duality.berge import decide_by_berge

        g, h = matching_dual_pair(5)
        with pytest.raises(MemoryError):
            decide_by_berge(g, h, intermediate_cap=3)


class TestRandomDualPairs:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_methods_accept(self, seed):
        g, h = random_dual_pair(6, 4, seed=seed)
        for method in FAST_METHODS:
            assert decide_duality(g, h, method=method).is_dual, method

    @pytest.mark.parametrize("seed", range(6))
    def test_all_methods_reject_perturbed(self, seed):
        g, h = random_dual_pair(6, 4, seed=seed)
        if len(h) <= 1:
            pytest.skip("dual too small to perturb")
        broken = perturb_drop_edge(h, index=seed)
        for method in FAST_METHODS:
            result = decide_duality(g, broken, method=method)
            assert not result.is_dual, method
            assert check_result_witness(g, broken, result), method


class TestUnknownMethodError:
    def test_error_lists_every_valid_method(self):
        from repro.duality.engine import available_methods

        g = Hypergraph([{1, 2}])
        h = Hypergraph([{1}, {2}])
        with pytest.raises(ValueError) as excinfo:
            decide_duality(g, h, method="no-such-engine")
        message = str(excinfo.value)
        assert "no-such-engine" in message
        for name in available_methods():
            assert repr(name) in message

    def test_error_suggests_the_closest_method(self):
        g = Hypergraph([{1, 2}])
        h = Hypergraph([{1}, {2}])
        with pytest.raises(ValueError, match=r"did you mean 'fk-a'\?"):
            decide_duality(g, h, method="fk_a")
