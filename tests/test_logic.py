"""Tests for :mod:`repro.logic` — Horn theories and monotone CNFs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnf import MonotoneDNF, parse_dnf
from repro.errors import NotIrredundantError, ParseError, VertexError
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.logic import (
    HornClause,
    HornTheory,
    MonotoneCNF,
    characteristic_models,
    decide_cnf_dnf_equivalence,
    intersection_closure,
    is_intersection_closed,
    parse_cnf,
)
from repro.logic.horn import horn_theory_models_equal


# ----------------------------------------------------------------------
# HornClause
# ----------------------------------------------------------------------


class TestHornClause:
    def test_definite_clause_roundtrip(self):
        clause = HornClause({"a", "b"}, "c")
        assert clause.body == frozenset({"a", "b"})
        assert clause.head == "c"
        assert clause.is_definite()
        assert not clause.is_fact()
        assert clause.atoms() == frozenset({"a", "b", "c"})

    def test_fact(self):
        fact = HornClause((), "a")
        assert fact.is_fact()
        assert fact.is_definite()
        assert fact.atoms() == frozenset({"a"})

    def test_negative_clause(self):
        neg = HornClause({"a", "b"})
        assert not neg.is_definite()
        assert neg.head is None
        assert neg.atoms() == frozenset({"a", "b"})

    def test_satisfaction_semantics(self):
        clause = HornClause({"a"}, "b")
        assert clause.satisfied_by(set())          # body false
        assert clause.satisfied_by({"b"})
        assert clause.satisfied_by({"a", "b"})     # both true
        assert not clause.satisfied_by({"a"})      # body true, head false

    def test_negative_clause_satisfaction(self):
        neg = HornClause({"a", "b"})
        assert neg.satisfied_by({"a"})
        assert not neg.satisfied_by({"a", "b"})

    def test_equality_and_hash(self):
        assert HornClause({"a"}, "b") == HornClause(["a"], "b")
        assert hash(HornClause({"a"}, "b")) == hash(HornClause(("a",), "b"))
        assert HornClause({"a"}, "b") != HornClause({"a"})

    def test_repr_shapes(self):
        assert "→" in repr(HornClause({"a"}, "b"))
        assert "⊥" in repr(HornClause({"a"}))
        assert repr(HornClause((), "a")).count("→") == 1


# ----------------------------------------------------------------------
# HornTheory
# ----------------------------------------------------------------------


def chain_theory() -> HornTheory:
    """a; a→b; b→c over atoms {a, b, c, d}."""
    return HornTheory.from_tuples(
        [((), "a"), (("a",), "b"), (("b",), "c")], atoms="abcd"
    )


class TestHornTheory:
    def test_closure_forward_chains(self):
        theory = chain_theory()
        assert theory.closure(()) == frozenset("abc")
        assert theory.closure(("d",)) == frozenset("abcd")

    def test_closure_rejects_unknown_facts(self):
        with pytest.raises(VertexError):
            chain_theory().closure(("z",))

    def test_least_model_definite_only(self):
        assert chain_theory().least_model() == frozenset("abc")
        with_negative = chain_theory().extended([HornClause({"c", "d"})])
        with pytest.raises(ValueError):
            with_negative.least_model()

    def test_is_model(self):
        theory = chain_theory()
        assert theory.is_model(frozenset("abc"))
        assert theory.is_model(frozenset("abcd"))
        assert not theory.is_model(frozenset("ab"))     # b→c violated
        assert not theory.is_model(frozenset())         # fact a violated

    def test_models_enumeration_matches_is_model(self):
        theory = chain_theory()
        from repro._util import powerset

        expected = [m for m in powerset("abcd") if theory.is_model(m)]
        assert theory.models() == expected
        assert horn_theory_models_equal(theory, expected)

    def test_negative_clause_consistency(self):
        theory = chain_theory().extended([HornClause({"c", "d"})])
        assert theory.closure_consistent(())
        assert not theory.closure_consistent(("d",))
        assert theory.is_consistent()

    def test_inconsistent_theory(self):
        theory = HornTheory.from_tuples([((), "a"), (("a",), None)])
        assert not theory.is_consistent()
        # ex falso: an inconsistent theory entails everything
        assert theory.entails_atom((), "a")

    def test_entails_atom(self):
        theory = chain_theory()
        assert theory.entails_atom((), "c")
        assert not theory.entails_atom((), "d")
        assert theory.entails_atom(("d",), "d")
        with pytest.raises(VertexError):
            theory.entails_atom((), "nope")

    def test_universe_validation(self):
        with pytest.raises(VertexError):
            HornTheory([HornClause({"a"}, "b")], atoms={"a"})

    def test_clause_dedup_and_determinism(self):
        t1 = HornTheory(
            [HornClause({"a"}, "b"), HornClause(["a"], "b"), HornClause((), "a")]
        )
        assert len(t1) == 2
        t2 = HornTheory([HornClause((), "a"), HornClause({"a"}, "b")])
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_extended_grows_universe(self):
        theory = HornTheory.from_tuples([((), "a")])
        bigger = theory.extended([HornClause({"a"}, "b")])
        assert bigger.atoms == frozenset({"a", "b"})
        assert len(bigger) == 2

    def test_with_atoms(self):
        theory = HornTheory.from_tuples([((), "a")]).with_atoms("abc")
        assert theory.atoms == frozenset("abc")

    def test_definite_negative_split(self):
        theory = chain_theory().extended([HornClause({"c", "d"})])
        assert len(theory.definite_clauses()) == 3
        assert len(theory.negative_clauses()) == 1
        assert not theory.is_definite()


# ----------------------------------------------------------------------
# Intersection closure / characteristic models
# ----------------------------------------------------------------------


class TestIntersectionStructure:
    def test_horn_models_are_intersection_closed(self):
        theory = chain_theory()
        assert is_intersection_closed(theory.models())

    def test_closure_adds_meets(self):
        family = [{"a", "b"}, {"b", "c"}]
        closed = intersection_closure(family)
        assert frozenset({"b"}) in closed
        assert len(closed) == 3

    def test_characteristic_models_generate(self):
        family = intersection_closure(
            [{"a", "b"}, {"b", "c"}, {"a", "c"}]
        )
        chars = characteristic_models(family)
        assert intersection_closure(chars) == family
        # the three original maximal models are irreducible
        assert frozenset({"a", "b"}) in chars
        # their pairwise meets are reducible unless the tri-meet differs;
        # here {a}&... meet of {a,b},{a,c} is {a} which is reducible:
        assert frozenset({"a"}) not in chars or frozenset() in family

    def test_characteristic_models_requires_closed_family(self):
        with pytest.raises(ValueError):
            characteristic_models([{"a", "b"}, {"b", "c"}])

    def test_empty_family(self):
        assert intersection_closure([]) == set()
        assert is_intersection_closed([])

    @given(
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=5)),
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_closure_is_idempotent_and_generated(self, family):
        closed = intersection_closure(family)
        assert is_intersection_closed(closed)
        assert intersection_closure(closed) == closed
        if closed:
            chars = characteristic_models(closed)
            assert chars <= closed
            assert intersection_closure(chars) == closed


# ----------------------------------------------------------------------
# MonotoneCNF
# ----------------------------------------------------------------------


class TestMonotoneCNF:
    def test_construction_and_accessors(self):
        cnf = MonotoneCNF([{"a", "b"}, {"b", "c"}])
        assert len(cnf) == 2
        assert cnf.variables == frozenset("abc")
        assert cnf.hypergraph() == Hypergraph([{"a", "b"}, {"b", "c"}])

    def test_constants(self):
        assert MonotoneCNF().is_constant_true()
        assert MonotoneCNF([()]).is_constant_false()
        assert MonotoneCNF().evaluate({})
        assert not MonotoneCNF([()]).evaluate({"a": True})

    def test_evaluate_mapping_and_set(self):
        cnf = MonotoneCNF([{"a", "b"}, {"c"}])
        assert cnf.evaluate({"a": True, "c": True})
        assert cnf.evaluate({"a", "c"})
        assert not cnf.evaluate({"a"})
        assert not cnf.evaluate({})

    def test_irredundancy(self):
        redundant = MonotoneCNF([{"a"}, {"a", "b"}])
        assert not redundant.is_irredundant()
        with pytest.raises(NotIrredundantError):
            redundant.require_irredundant()
        slim = redundant.irredundant()
        assert slim.clauses == (frozenset({"a"}),)
        # dropping a covered clause preserves the function
        for point in ({}, {"a"}, {"b"}, {"a", "b"}):
            assert redundant.evaluate(point) == slim.evaluate(point)

    def test_prime_implicants_dnf_is_equivalent(self):
        cnf = MonotoneCNF([{"a", "b"}, {"b", "c"}, {"a", "c"}])
        dnf = cnf.prime_implicants_dnf()
        assert cnf.equivalent_brute_force(dnf)
        assert dnf.is_irredundant()

    def test_text_roundtrip(self):
        cnf = MonotoneCNF([{"a", "b"}, {"c"}])
        assert parse_cnf(cnf.to_text()) == cnf
        assert parse_cnf("1").is_constant_true()
        assert parse_cnf("0").is_constant_false()

    @pytest.mark.parametrize("bad", ["", "()", "(a|)", "&", "(a)&"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_cnf(bad)

    def test_from_hypergraph_roundtrip(self):
        hg = Hypergraph([{"x", "y"}, {"z"}])
        assert MonotoneCNF.from_hypergraph(hg).hypergraph() == hg


# ----------------------------------------------------------------------
# CNF–DNF equivalence = Dual
# ----------------------------------------------------------------------


class TestCnfDnfEquivalence:
    def test_equivalent_pair(self):
        cnf = parse_cnf("(a|b)&(b|c)")
        dnf = parse_dnf("b | a c")
        result = decide_cnf_dnf_equivalence(cnf, dnf)
        assert result.is_dual

    def test_inequivalent_pair_carries_witness(self):
        from repro.duality.witness import check_result_witness

        cnf = parse_cnf("(a|b)&(b|c)")
        dnf = parse_dnf("b")  # misses the term "a c"
        result = decide_cnf_dnf_equivalence(cnf, dnf)
        assert not result.is_dual
        assert not cnf.equivalent_brute_force(dnf)
        universe = cnf.variables | dnf.variables
        g = cnf.hypergraph().with_vertices(universe)
        h = dnf.hypergraph().with_vertices(universe)
        assert check_result_witness(g, h, result)

    def test_redundant_inputs_are_normalised(self):
        cnf = MonotoneCNF([{"a", "b"}, {"a", "b", "c"}])  # second covered
        dnf = MonotoneDNF([{"a"}, {"b"}, {"a", "b"}])     # third covered
        result = decide_cnf_dnf_equivalence(cnf, dnf)
        assert result.is_dual

    @pytest.mark.parametrize("method", ["transversal", "bm", "fk-b", "logspace"])
    def test_engine_choice(self, method):
        cnf = parse_cnf("(a|b)&(b|c)&(a|c)")
        dnf = cnf.prime_implicants_dnf()
        assert decide_cnf_dnf_equivalence(cnf, dnf, method=method).is_dual

    def test_matches_transversal_definition(self):
        cnf = parse_cnf("(a|b)&(c|d)")
        dnf = MonotoneDNF.from_hypergraph(
            transversal_hypergraph(cnf.hypergraph())
        )
        assert decide_cnf_dnf_equivalence(cnf, dnf).is_dual
        assert cnf.equivalent_brute_force(dnf)

    @given(
        st.lists(
            st.frozensets(
                st.integers(min_value=0, max_value=4), min_size=1, max_size=3
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_prime_implicants_always_equivalent(self, clauses):
        cnf = MonotoneCNF(clauses).irredundant()
        dnf = cnf.prime_implicants_dnf()
        assert cnf.equivalent_brute_force(dnf)
        assert decide_cnf_dnf_equivalence(cnf, dnf, method="transversal").is_dual


# ----------------------------------------------------------------------
# Horn theory text format
# ----------------------------------------------------------------------


class TestHornParser:
    def test_roundtrip(self):
        from repro.logic import parser as hornio

        theory = HornTheory.from_tuples(
            [(("a", "b"), "c"), ((), "a"), (("c",), None)]
        )
        assert hornio.loads(hornio.dumps(theory)) == theory

    def test_parse_forms(self):
        from repro.logic import parse_horn_theory

        theory = parse_horn_theory(
            "a b -> c\n-> a   # a fact\n\nc -> !\n"
        )
        assert len(theory) == 3
        assert len(theory.negative_clauses()) == 1
        assert any(c.is_fact() for c in theory.clauses)

    def test_file_roundtrip(self, tmp_path):
        from repro.logic import parser as hornio

        theory = HornTheory.from_tuples([(("x",), "y")])
        path = tmp_path / "t.horn"
        hornio.dump(theory, path)
        assert hornio.load(path) == theory

    @pytest.mark.parametrize(
        "bad", ["a b c", "a -> b c", "a ->", "-> a b"]
    )
    def test_rejects_malformed(self, bad):
        from repro.errors import ParseError
        from repro.logic import parse_horn_theory

        with pytest.raises(ParseError):
            parse_horn_theory(bad)
