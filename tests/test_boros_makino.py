"""Tests for the Boros–Makino procedures and Proposition 2.1's guarantees."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    matching_dual_pair,
    perturb_drop_edge,
    random_dual_pair,
    standard_dual_suite,
    threshold_dual_pair,
)
from repro.hypergraph.transversal import is_new_transversal
from repro.duality.boros_makino import (
    build_tree,
    decide_boros_makino,
    majority_vertices,
    marksmall,
    process_children,
    tree_for,
)
from repro.duality.tree import Mark, NodeAttributes

from tests.conftest import nonempty_simple_hypergraphs


def _root_attrs(g, h):
    return NodeAttributes((), frozenset(g.vertices | h.vertices), Mark.NIL, frozenset())


class TestMajorityVertices:
    def test_strict_majority(self):
        h = Hypergraph([{0, 1}, {0, 2}, {0, 3}], vertices=range(4))
        assert majority_vertices(h) == {0}

    def test_half_is_not_majority(self):
        h = Hypergraph([{0, 1}, {2, 3}], vertices=range(4))
        assert majority_vertices(h) == frozenset()

    def test_isolated_universe_vertices_never_majority(self):
        h = Hypergraph([{0}], vertices={0, 9})
        assert majority_vertices(h) == {0}


class TestMarksmall:
    def test_case1_fail_when_h_empty_but_g_alive(self):
        # Scope {0}: H has no edge inside, G projects to {{0}} (no ∅).
        g = Hypergraph([{0, 1}], vertices={0, 1})
        h = Hypergraph([{0, 1}], vertices={0, 1})
        attrs = NodeAttributes((1,), frozenset({0}), Mark.NIL, frozenset())
        out = marksmall(attrs, g, h)
        assert out.mark is Mark.FAIL
        assert out.witness == frozenset({0})

    def test_case2_done_when_g_projects_empty_edge(self):
        # Scope {2}: the G-edge {0,1} projects to ∅.
        g = Hypergraph([{0, 1}, {2}], vertices={0, 1, 2})
        h = Hypergraph([{0, 2}, {1, 2}], vertices={0, 1, 2})
        attrs = NodeAttributes((1,), frozenset({2}), Mark.NIL, frozenset())
        out = marksmall(attrs, g, h)
        assert out.mark is Mark.DONE
        assert out.witness == frozenset()

    def test_case3_done_when_singletons_present(self):
        g = Hypergraph([{0}, {1}], vertices={0, 1})
        h = Hypergraph([{0, 1}], vertices={0, 1})
        out = marksmall(_root_attrs(g, h), g, h)
        assert out.mark is Mark.DONE

    def test_case4_fail_removes_smallest_missing_singleton(self):
        g = Hypergraph([{0}, {1, 2}], vertices={0, 1, 2})
        h = Hypergraph([{0, 1}], vertices={0, 1, 2})
        out = marksmall(_root_attrs(g, h), g, h)
        assert out.mark is Mark.FAIL
        # smallest i in {0,1} with {i} not in G^S is 1.
        assert out.witness == frozenset({0, 2})

    def test_rejects_large_h(self):
        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError):
            marksmall(_root_attrs(g, h), g, h)


class TestProcessChildren:
    def test_rejects_small_h(self):
        g = Hypergraph([{0}], vertices={0})
        h = Hypergraph([{0}], vertices={0})
        with pytest.raises(ValueError):
            process_children(_root_attrs(g, h), g, h)

    def test_step2_fail_on_new_transversal_majority(self):
        # G = {{0},{1}}, H = {{0,1}, {0,2}} over {0,1,2}: I = {0} which
        # hits every G-edge? No: misses {1}. Build a case where I is a
        # new transversal instead:
        g = Hypergraph([{0}], vertices={0, 1})
        h = Hypergraph([{0, 1}, {0}], vertices={0, 1})
        # H not simple here; use a structured real example instead.
        g, h = matching_dual_pair(2)
        broken = perturb_drop_edge(h, 0)
        outcome = process_children(_root_attrs(g, broken), g, broken)
        # For this instance the majority set is a new transversal or
        # children are produced; both are legal shapes — just assert type.
        assert isinstance(outcome, (NodeAttributes, list))

    def test_children_scopes_are_proper_subsets(self):
        g, h = threshold_dual_pair(5, 3)
        outcome = process_children(_root_attrs(g, h), g, h)
        assert isinstance(outcome, list)
        scope = frozenset(g.vertices)
        for child_scope in outcome:
            assert child_scope < scope

    def test_children_sorted_canonically(self):
        g, h = threshold_dual_pair(5, 3)
        outcome = process_children(_root_attrs(g, h), g, h)
        from repro._util import sort_key

        assert outcome == sorted(outcome, key=sort_key)


class TestTreeStructure:
    def test_dual_tree_all_done(self):
        for name, g, h in standard_dual_suite(max_matching=3, max_threshold=5):
            if len(h) > len(g):
                g, h = h, g
            tree = tree_for(g, h)
            assert tree.all_done(), name

    def test_nondual_tree_has_fail_leaf(self):
        for name, g, h in standard_dual_suite(max_matching=3, max_threshold=4):
            if len(h) <= 1:
                continue
            broken = perturb_drop_edge(h)
            from repro.duality.conditions import prepare_instance

            entry = prepare_instance(g, broken)
            if not entry.ok:
                continue
            gg, hh = entry.g, entry.h
            if len(hh) > len(gg):
                gg, hh = hh, gg
            tree = build_tree(gg, hh)
            assert tree.fail_leaves(), name

    def test_depth_bound_prop_2_1_2(self):
        # depth(T) ≤ log₂|H|.
        for name, g, h in standard_dual_suite(max_matching=4, max_threshold=6):
            if len(h) > len(g):
                g, h = h, g
            if len(h) == 0:
                continue
            tree = tree_for(g, h)
            bound = math.log2(len(h)) if len(h) > 1 else 0
            assert tree.depth() <= bound + 1e-9, (
                f"{name}: depth {tree.depth()} > log2({len(h)})"
            )

    def test_branching_bound_prop_2_1_3(self):
        for name, g, h in standard_dual_suite(max_matching=4, max_threshold=6):
            if len(h) > len(g):
                g, h = h, g
            tree = tree_for(g, h)
            bound = len(g.vertices | h.vertices) * len(g)
            assert tree.max_branching() <= bound, name

    def test_fail_witness_is_new_transversal_prop_2_1_4(self):
        for name, g, h in standard_dual_suite(max_matching=3, max_threshold=4):
            if len(h) <= 1:
                continue
            broken = perturb_drop_edge(h)
            from repro.duality.conditions import prepare_instance

            entry = prepare_instance(g, broken)
            if not entry.ok:
                continue
            gg, hh = entry.g, entry.h
            if len(hh) > len(gg):
                gg, hh = hh, gg
            tree = build_tree(gg, hh)
            for leaf in tree.fail_leaves():
                assert is_new_transversal(leaf.attrs.witness, gg, hh), (
                    f"{name}: leaf {leaf.attrs.label} witness invalid"
                )

    def test_find_by_label(self):
        g, h = threshold_dual_pair(5, 3)
        tree = tree_for(g, h)
        for node in tree.nodes():
            assert tree.find(node.attrs.label) is node
        assert tree.find((999,)) is None

    def test_interior_nodes_are_nil(self):
        g, h = threshold_dual_pair(5, 3)
        tree = tree_for(g, h)
        for node in tree.nodes():
            if node.children:
                assert node.attrs.mark is Mark.NIL
            else:
                assert node.attrs.mark is not Mark.NIL

    @given(nonempty_simple_hypergraphs(max_vertices=5, max_edges=4))
    @settings(max_examples=25, deadline=None)
    def test_tree_verdict_matches_oracle(self, hg):
        h = transversal_hypergraph(hg)
        if len(h) > len(hg):
            tree = tree_for(h, hg)
        else:
            tree = tree_for(hg, h)
        assert tree.all_done()


class TestDecider:
    def test_swap_recorded(self):
        g, h = matching_dual_pair(3)  # |H| = 8 > |G| = 3 → swap expected
        result = decide_boros_makino(g, h)
        assert result.stats.extra["swapped"] is True
        assert result.is_dual

    def test_no_swap_when_disabled(self):
        g, h = matching_dual_pair(3)
        result = decide_boros_makino(g, h, enforce_size_order=False)
        assert result.stats.extra["swapped"] is False
        assert result.is_dual

    def test_random_pairs(self):
        for seed in range(5):
            g, h = random_dual_pair(6, 4, seed=seed)
            assert decide_boros_makino(g, h).is_dual
