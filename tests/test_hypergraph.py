"""Unit tests for :mod:`repro.hypergraph.hypergraph`."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.errors import NotSimpleError, VertexError
from repro.hypergraph import Hypergraph

from tests.conftest import hypergraphs


class TestConstruction:
    def test_edges_are_frozensets_in_canonical_order(self):
        hg = Hypergraph([[3, 1], [2], [1, 2]])
        assert hg.edges == (frozenset({2}), frozenset({1, 2}), frozenset({1, 3}))

    def test_duplicate_edges_collapse(self):
        hg = Hypergraph([{1, 2}, {2, 1}, [1, 2]])
        assert len(hg) == 1

    def test_default_universe_is_union_of_edges(self):
        hg = Hypergraph([{1, 2}, {3}])
        assert hg.vertices == {1, 2, 3}

    def test_explicit_universe_may_add_isolated_vertices(self):
        hg = Hypergraph([{1}], vertices={1, 2, 3})
        assert hg.vertices == {1, 2, 3}
        assert hg.has_isolated_vertices()

    def test_universe_must_cover_edges(self):
        with pytest.raises(VertexError):
            Hypergraph([{1, 9}], vertices={1, 2})

    def test_empty_hypergraph(self):
        hg = Hypergraph.empty()
        assert len(hg) == 0
        assert hg.is_trivial_false()
        assert not hg.is_trivial_true()

    def test_trivial_true_hypergraph(self):
        hg = Hypergraph.trivial_true()
        assert len(hg) == 1
        assert hg.is_trivial_true()
        assert not hg.is_trivial_false()

    def test_singletons_constructor(self):
        hg = Hypergraph.singletons({1, 2, 3})
        assert set(hg.edges) == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_single_edge_constructor(self):
        hg = Hypergraph.single_edge({1, 2})
        assert hg.edges == (frozenset({1, 2}),)

    def test_string_vertices_supported(self):
        hg = Hypergraph([{"a", "b"}, {"c"}])
        assert hg.vertices == {"a", "b", "c"}

    def test_mixed_vertex_types_have_deterministic_order(self):
        hg1 = Hypergraph([{"a", 1}, {2}])
        hg2 = Hypergraph([{2}, {1, "a"}])
        assert hg1.edges == hg2.edges


class TestProtocol:
    def test_equality_includes_universe(self):
        assert Hypergraph([{1}]) != Hypergraph([{1}], vertices={1, 2})
        assert Hypergraph([{1}]) == Hypergraph([{1}])

    def test_hashable_and_usable_in_sets(self):
        a = Hypergraph([{1, 2}])
        b = Hypergraph([{2, 1}])
        assert len({a, b}) == 1

    def test_contains_checks_edges(self):
        hg = Hypergraph([{1, 2}])
        assert {1, 2} in hg
        assert [2, 1] in hg
        assert {1} not in hg

    def test_iteration_yields_edges(self):
        hg = Hypergraph([{1}, {2, 3}])
        assert list(hg) == [frozenset({1}), frozenset({2, 3})]

    def test_repr_is_stable(self):
        hg = Hypergraph([{2, 1}])
        assert repr(hg) == repr(Hypergraph([{1, 2}]))


class TestPredicates:
    def test_simple_detection(self):
        assert Hypergraph([{1}, {2, 3}]).is_simple()
        assert not Hypergraph([{1}, {1, 2}]).is_simple()

    def test_empty_edge_breaks_simplicity_with_other_edges(self):
        assert not Hypergraph([set(), {1}]).is_simple()
        assert Hypergraph([set()]).is_simple()

    def test_require_simple_raises(self):
        with pytest.raises(NotSimpleError):
            Hypergraph([{1}, {1, 2}]).require_simple()

    def test_require_simple_returns_self(self):
        hg = Hypergraph([{1}, {2}])
        assert hg.require_simple() is hg

    def test_rank_and_sizes(self):
        hg = Hypergraph([{1}, {1, 2, 3}])
        assert hg.rank() == 3
        assert hg.edge_sizes() == (1, 3)
        assert Hypergraph.empty().rank() == 0

    def test_degrees(self):
        hg = Hypergraph([{1, 2}, {1, 3}], vertices={1, 2, 3, 4})
        assert hg.degree(1) == 2
        assert hg.degree(4) == 0
        assert hg.degrees() == {1: 2, 2: 1, 3: 1, 4: 0}

    def test_degree_of_unknown_vertex_raises(self):
        with pytest.raises(VertexError):
            Hypergraph([{1}]).degree(99)

    def test_volume(self):
        g = Hypergraph([{1}, {2}])
        h = Hypergraph([{1, 2}])
        assert g.volume(h) == 2


class TestDerivations:
    def test_minimized_removes_supersets(self):
        hg = Hypergraph([{1}, {1, 2}, {2, 3}])
        assert set(hg.minimized().edges) == {frozenset({1}), frozenset({2, 3})}

    def test_minimized_preserves_universe(self):
        hg = Hypergraph([{1}, {1, 2}], vertices={1, 2, 9})
        assert hg.minimized().vertices == {1, 2, 9}

    def test_with_vertices_extends_universe(self):
        hg = Hypergraph([{1}]).with_vertices({1, 2})
        assert hg.vertices == {1, 2}

    def test_without_isolated_vertices(self):
        hg = Hypergraph([{1}], vertices={1, 2})
        assert hg.without_isolated_vertices().vertices == {1}

    def test_lexicographically_first_edge(self):
        hg = Hypergraph([{2, 3}, {1, 4}])
        first = hg.lexicographically_first_edge(hg.edges)
        assert first == frozenset({1, 4})

    def test_lexicographically_first_edge_empty_candidates(self):
        with pytest.raises(ValueError):
            Hypergraph([{1}]).lexicographically_first_edge([])


class TestPropertyBased:
    @given(hypergraphs())
    def test_minimized_is_simple(self, hg):
        assert hg.minimized().is_simple()

    @given(hypergraphs())
    def test_minimized_is_idempotent(self, hg):
        once = hg.minimized()
        assert once.minimized() == once

    @given(hypergraphs())
    def test_minimized_edges_are_subset_of_original(self, hg):
        assert set(hg.minimized().edges) <= set(hg.edges)

    @given(hypergraphs())
    def test_every_original_edge_contains_a_minimized_edge(self, hg):
        mini = set(hg.minimized().edges)
        for edge in hg.edges:
            assert any(m <= edge for m in mini)

    @given(hypergraphs())
    def test_canonical_order_is_reproducible(self, hg):
        rebuilt = Hypergraph(reversed(hg.edges), vertices=hg.vertices)
        assert rebuilt.edges == hg.edges
