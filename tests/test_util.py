"""Tests for the internal helpers in ``repro._util``."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    bits_needed,
    canonical_edges,
    format_family,
    format_set,
    int_log2_floor,
    is_antichain,
    maximize_family,
    minimize_family,
    powerset,
    sort_key,
    vertex_key,
)


class TestOrdering:
    def test_sort_key_by_size_then_lex(self):
        edges = [frozenset({3}), frozenset({1, 2}), frozenset({2})]
        ordered = sorted(edges, key=sort_key)
        assert ordered[0] == frozenset({2})
        assert ordered[1] == frozenset({3})
        assert ordered[2] == frozenset({1, 2})

    def test_vertex_key_total_on_mixed_types(self):
        values = [3, "a", 1, "b"]
        once = sorted(values, key=vertex_key)
        again = sorted(reversed(values), key=vertex_key)
        assert once == again

    def test_canonical_edges_deduplicates(self):
        assert canonical_edges([frozenset({1}), frozenset({1})]) == (
            frozenset({1}),
        )


class TestFamilies:
    def test_minimize(self):
        family = [frozenset({1}), frozenset({1, 2}), frozenset({3})]
        assert minimize_family(family) == {frozenset({1}), frozenset({3})}

    def test_maximize(self):
        family = [frozenset({1}), frozenset({1, 2}), frozenset({3})]
        assert maximize_family(family) == {frozenset({1, 2}), frozenset({3})}

    def test_is_antichain(self):
        assert is_antichain([frozenset({1}), frozenset({2})])
        assert not is_antichain([frozenset({1}), frozenset({1, 2})])
        assert is_antichain([])

    def test_duplicates_do_not_break_antichain(self):
        assert is_antichain([frozenset({1}), frozenset({1})])

    @given(st.lists(st.frozensets(st.integers(0, 4), max_size=4), max_size=6))
    def test_minimize_then_antichain(self, family):
        assert is_antichain(minimize_family(family))

    @given(st.lists(st.frozensets(st.integers(0, 4), max_size=4), max_size=6))
    def test_minimize_maximize_duality(self, family):
        # min over complements = complement of max (over a fixed universe).
        universe = frozenset(range(5))
        complements = [universe - e for e in family]
        direct = {universe - e for e in maximize_family(family)}
        assert minimize_family(complements) == frozenset(direct)


class TestPowerset:
    def test_counts(self):
        assert len(list(powerset({1, 2, 3}))) == 8

    def test_empty(self):
        assert list(powerset(())) == [frozenset()]

    def test_smallest_first(self):
        sizes = [len(s) for s in powerset({1, 2})]
        assert sizes == sorted(sizes)


class TestBits:
    def test_bits_needed(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed(255) == 8
        assert bits_needed(256) == 9

    def test_bits_needed_negative(self):
        with pytest.raises(ValueError):
            bits_needed(-1)

    def test_int_log2_floor(self):
        assert int_log2_floor(1) == 0
        assert int_log2_floor(2) == 1
        assert int_log2_floor(3) == 1
        assert int_log2_floor(1024) == 10

    def test_int_log2_floor_domain(self):
        with pytest.raises(ValueError):
            int_log2_floor(0)


class TestFormatting:
    def test_format_set(self):
        assert format_set(frozenset()) == "{}"
        assert format_set(frozenset({2, 1})) == "{1, 2}"

    def test_format_family(self):
        text = format_family([frozenset({2}), frozenset({1})])
        assert text == "{{1}, {2}}"
