"""Tests for the Figure 1 lattice and the χ(n)/FK bounds."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.complexity import (
    ClassLattice,
    chi,
    chi_asymptotic,
    chi_table,
    default_lattice,
    figure1_dual_annotations,
    figure1_edge_table,
    figure1_report,
    fk_time_bound,
    fk_time_bound_log,
    guess_bits_bound,
    quadratic_logspace_bits,
    quasi_polynomial_exponent,
    render_figure1,
)
from repro.complexity.classes import CLASSES, INCLUSIONS, Inclusion


class TestChi:
    def test_defining_equation(self):
        for n in (2.0, 10.0, 1e3, 1e6, 1e12):
            x = chi(n)
            assert x ** x == pytest.approx(n, rel=1e-9)

    def test_chi_of_one(self):
        assert chi(1) == 1.0

    def test_domain(self):
        with pytest.raises(ValueError):
            chi(0.5)

    def test_monotone(self):
        values = [chi(10.0 ** k) for k in range(1, 10)]
        assert values == sorted(values)

    def test_subsublogarithmic(self):
        # χ(n) = o(log n): the ratio to log n vanishes.
        small = chi(1e3) / math.log2(1e3)
        large = chi(1e30) / math.log2(1e30)
        assert large < small

    def test_asymptotic_agreement(self):
        # χ(n) ~ log n / log log n within a modest factor for large n.
        n = 1e40
        assert chi(n) == pytest.approx(chi_asymptotic(n), rel=0.5)

    def test_asymptotic_domain(self):
        with pytest.raises(ValueError):
            chi_asymptotic(2.0)

    @given(st.floats(min_value=2.0, max_value=1e15))
    def test_equation_property(self, n):
        x = chi(n)
        assert x * math.log(x) == pytest.approx(math.log(n), rel=1e-6)


class TestBounds:
    def test_fk_bound_log_consistency(self):
        n = 100.0
        assert math.log2(fk_time_bound(n)) == pytest.approx(
            fk_time_bound_log(n), rel=1e-9
        )

    def test_fk_bound_is_quasipolynomial(self):
        # exponent 4χ(n)+1 grows, but slower than log n.
        e1 = quasi_polynomial_exponent(1e3)
        e2 = quasi_polynomial_exponent(1e9)
        assert e2 > e1
        assert e2 / math.log2(1e9) < e1 / math.log2(1e3)

    def test_fk_bound_edge_cases(self):
        assert fk_time_bound_log(1.0) == 0.0
        with pytest.raises(ValueError):
            fk_time_bound_log(0.5)

    def test_quadratic_logspace_bits(self):
        assert quadratic_logspace_bits(2, a=0, b=1) == pytest.approx(1.0)
        assert quadratic_logspace_bits(16, a=3, b=2) == pytest.approx(3 + 2 * 16)
        with pytest.raises(ValueError):
            quadratic_logspace_bits(0)

    def test_guess_bits_bound(self):
        assert guess_bits_bound(4, 2, 8) == 3 * math.ceil(math.log2(9))
        assert guess_bits_bound(4, 2, 1) == 0
        assert guess_bits_bound(0, 2, 8) == 0

    def test_chi_table(self):
        rows = chi_table([10, 100])
        assert len(rows) == 2
        assert rows[0][0] == 10
        assert rows[1][1] > rows[0][1]


class TestLattice:
    def test_is_dag(self):
        assert default_lattice().is_dag()

    def test_paper_inclusions_derivable(self):
        lat = default_lattice()
        # Theorem 5.2 both ways up from the new class:
        assert lat.includes("GC_LOG2_ITLOGSPACE", "DSPACE_LOG2")
        assert lat.includes("GC_LOG2_ITLOGSPACE", "BETA2P")
        # Chains to the top:
        assert lat.includes("LOGSPACE", "PSPACE")
        assert lat.includes("PTIME", "NP")

    def test_non_inclusions(self):
        lat = default_lattice()
        assert not lat.includes("PTIME", "DSPACE_LOG2")
        assert not lat.includes("DSPACE_LOG2", "PTIME")
        assert not lat.includes("NP", "DSPACE_LOG2")

    def test_incomparabilities_of_the_figure(self):
        lat = default_lattice()
        assert lat.incomparable("DSPACE_LOG2", "BETA2P")
        assert lat.incomparable("DSPACE_LOG2", "PTIME")
        assert lat.incomparable("DSPACE_LOG2", "NP")

    def test_reflexive(self):
        lat = default_lattice()
        assert lat.includes("NP", "NP")

    def test_minimal_dual_class_is_the_new_bound(self):
        lat = default_lattice()
        assert lat.minimal_classes_containing_dual() == ["GC_LOG2_ITLOGSPACE"]

    def test_topological_order(self):
        lat = default_lattice()
        order = lat.topological_order()
        assert order[0] == "LOGSPACE"
        assert order[-1] == "PSPACE"
        position = {k: i for i, k in enumerate(order)}
        for inc in INCLUSIONS:
            assert position[inc.lower] < position[inc.upper]

    def test_unknown_class_in_inclusion_rejected(self):
        with pytest.raises(ValueError):
            ClassLattice(CLASSES, INCLUSIONS + (Inclusion("NP", "NOPE", "x"),))


class TestFigure1:
    def test_render_contains_all_classes(self):
        diagram = render_figure1()
        for token in ("PSPACE", "NP", "DSPACE[log2n]", "LOGSPACE", "PTIME"):
            assert token in diagram

    def test_edge_table_matches_inclusions(self):
        table = figure1_edge_table()
        assert len(table) == len(INCLUSIONS)
        assert all("reason" in row and row["reason"] for row in table)

    def test_dual_annotations(self):
        rows = figure1_dual_annotations()
        holders = {r["class"] for r in rows if r["contains_dual"]}
        assert "DSPACE[log²n]" in holders
        assert "GC(log²n, [[LOGSPACE_pol]]^log)" in holders

    def test_report_is_complete(self):
        report = figure1_report()
        assert "Theorem 5.2" in report
        assert "incomparable" in report
        assert "Dual ∈ DSPACE[log²n]" in report
