"""Tests for borders, the [26] bridge, and the levelwise miner."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.itemsets import (
    BooleanRelation,
    borders,
    borders_are_consistent,
    frequent_border_from_infrequent,
    frequent_itemsets,
    infrequent_border_from_frequent,
    levelwise_borders,
    maximal_frequent_itemsets,
    minimal_infrequent_itemsets,
)
from repro.itemsets.borders import frequent_closure_check
from repro.itemsets.datasets import (
    contrast_pair,
    dense_random,
    market_basket,
    planted_borders,
    single_pattern,
)


def relations(max_items: int = 5, max_rows: int = 10):
    item = st.sampled_from([f"i{k}" for k in range(max_items)])
    row = st.frozensets(item, max_size=max_items)
    return st.builds(
        lambda rows: BooleanRelation(
            rows, items=[f"i{k}" for k in range(max_items)]
        ),
        st.lists(row, min_size=1, max_size=max_rows),
    )


class TestReferenceBorders:
    def test_planted_ground_truth(self):
        rel, z, expected = planted_borders(
            maximal_frequent=[{"i00", "i01"}, {"i01", "i02", "i03"}],
            n_items=5,
            z=2,
        )
        is_plus, _ = borders(rel, z)
        assert is_plus == expected

    def test_borders_are_antichains(self):
        rel = dense_random(n_items=6, n_rows=20, seed=1)
        is_plus, is_minus = borders(rel, 4)
        assert is_plus.is_simple()
        assert is_minus.is_simple()

    def test_boundary_threshold_all_infrequent(self):
        rel, z = single_pattern(n_items=4, z=1)
        is_plus, is_minus = borders(rel, len(rel))  # z = |M|
        assert is_plus.is_trivial_false()
        assert set(is_minus.edges) == {frozenset()}

    def test_everything_frequent(self):
        items = ["a", "b"]
        rel = BooleanRelation([{"a", "b"}] * 3, items=items)
        is_plus, is_minus = borders(rel, 1)
        assert set(is_plus.edges) == {frozenset(items)}
        assert is_minus.is_trivial_false()

    def test_closure_sanity(self):
        rel = market_basket(n_items=6, n_rows=20, seed=2)
        assert frequent_closure_check(rel, 3)


class TestBridge:
    def test_bridge_on_planted(self):
        rel, z, _ = planted_borders(n_items=6, z=2, seed=4)
        is_plus, is_minus = borders(rel, z)
        assert infrequent_border_from_frequent(is_plus) == is_minus
        assert frequent_border_from_infrequent(is_minus) == is_plus

    def test_bridge_degenerate_nothing_frequent(self):
        empty_plus = Hypergraph.empty({"a", "b"})
        derived = infrequent_border_from_frequent(empty_plus)
        assert set(derived.edges) == {frozenset()}

    def test_bridge_degenerate_everything_frequent(self):
        full_plus = Hypergraph([{"a", "b"}], vertices={"a", "b"})
        derived = infrequent_border_from_frequent(full_plus)
        assert derived.is_trivial_false()

    def test_consistency_predicate(self):
        rel, z, _ = planted_borders(n_items=5, z=1, seed=3)
        is_plus, is_minus = borders(rel, z)
        assert borders_are_consistent(is_plus, is_minus)
        if len(is_minus) > 0:
            broken = Hypergraph(
                list(is_minus.edges)[:-1], vertices=is_minus.vertices
            )
            assert not borders_are_consistent(is_plus, broken)

    def test_consistency_requires_shared_universe(self):
        a = Hypergraph([{"a"}], vertices={"a"})
        b = Hypergraph([{"b"}], vertices={"b"})
        assert not borders_are_consistent(a, b)

    @given(relations(max_items=4, max_rows=8), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_bridge_property(self, rel, z):
        if z > len(rel):
            z = len(rel)
        is_plus, is_minus = borders(rel, z)
        assert infrequent_border_from_frequent(is_plus) == is_minus
        assert frequent_border_from_infrequent(is_minus) == is_plus


class TestLevelwise:
    @pytest.mark.parametrize(
        "maker, z",
        [
            (lambda: market_basket(n_items=7, n_rows=25, seed=1), 4),
            (lambda: dense_random(n_items=6, n_rows=20, density=0.6, seed=2), 5),
            (lambda: contrast_pair(n_items=7, seed=1)[0], 2),
        ],
    )
    def test_matches_reference(self, maker, z):
        rel = maker()
        assert levelwise_borders(rel, z) == borders(rel, z)

    def test_boundary_threshold(self):
        rel, _ = single_pattern(n_items=4, z=1)
        lv = levelwise_borders(rel, len(rel))
        assert lv[0].is_trivial_false()
        assert set(lv[1].edges) == {frozenset()}

    def test_no_frequent_singletons(self):
        rel = BooleanRelation(
            [{"a"}, {"b"}, {"c"}], items={"a", "b", "c"}
        )
        is_plus, is_minus = levelwise_borders(rel, 2)
        assert set(is_plus.edges) == {frozenset()}
        assert set(is_minus.edges) == {
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"c"}),
        }

    def test_frequent_itemsets_listing(self):
        rel = market_basket(n_items=6, n_rows=20, seed=5)
        z = 4
        listed = set(frequent_itemsets(rel, z))
        from repro._util import powerset
        from repro.itemsets import frequency

        expected = {
            u for u in powerset(rel.items) if frequency(rel, u) > z
        }
        assert listed == expected

    @given(relations(max_items=4, max_rows=8), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_levelwise_equals_reference_property(self, rel, z):
        if z > len(rel):
            z = len(rel)
        assert levelwise_borders(rel, z) == borders(rel, z)


class TestSingleBorders:
    def test_maximal_frequent_alone(self):
        rel, z, expected = planted_borders(n_items=5, z=2, seed=9)
        assert maximal_frequent_itemsets(rel, z) == expected

    def test_minimal_infrequent_alone(self):
        rel, z, _ = planted_borders(n_items=5, z=2, seed=9)
        is_minus = minimal_infrequent_itemsets(rel, z)
        from repro.itemsets import is_infrequent

        for u in is_minus.edges:
            assert is_infrequent(rel, u, z)
