"""Failure injection: malformed inputs must fail loudly and precisely.

Every documented exception path is exercised: wrong types, violated
preconditions, inconsistent claims, budget violations, corrupted files.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    InconsistentBorderError,
    InvalidInstanceError,
    NotACoterieError,
    NotIrredundantError,
    NotSimpleError,
    ParseError,
    ReproError,
    SpaceBudgetExceeded,
    VertexError,
)
from repro.hypergraph import Hypergraph


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (
            InconsistentBorderError,
            InvalidInstanceError,
            NotACoterieError,
            NotIrredundantError,
            NotSimpleError,
            ParseError,
            SpaceBudgetExceeded,
            VertexError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_inconsistent_border_is_invalid_instance(self):
        assert issubclass(InconsistentBorderError, InvalidInstanceError)

    def test_space_budget_error_payload(self):
        exc = SpaceBudgetExceeded(100, 64)
        assert exc.used_bits == 100
        assert exc.budget_bits == 64
        assert "100" in str(exc)


class TestDualityInputValidation:
    def test_non_simple_g_rejected_by_every_engine(self):
        from repro.duality import available_methods, decide_duality

        bad = Hypergraph([{1}, {1, 2}])
        good = Hypergraph([{1}], vertices={1, 2})
        for method in available_methods():
            with pytest.raises(NotSimpleError):
                decide_duality(bad, good, method=method)

    def test_non_simple_h_rejected(self):
        from repro.duality import decide_duality

        with pytest.raises(NotSimpleError):
            decide_duality(Hypergraph([{1}]), Hypergraph([{1}, {1, 2}]))

    def test_redundant_dnf_rejected(self):
        from repro.dnf import MonotoneDNF
        from repro.duality import decide_dnf_duality

        with pytest.raises(NotIrredundantError):
            decide_dnf_duality(
                MonotoneDNF([{1}, {1, 2}]), MonotoneDNF([{1}])
            )

    def test_find_new_transversal_requires_entry_conditions(self):
        from repro.duality.logspace import find_new_transversal_logspace
        from repro.hypergraph.generators import (
            matching_dual_pair,
            perturb_enlarge_edge,
        )

        g, h = matching_dual_pair(2)
        with pytest.raises(ValueError):
            find_new_transversal_logspace(g, perturb_enlarge_edge(h))


class TestSpaceBudget:
    def test_budget_enforced_mid_computation(self):
        from repro.machine import SpaceMeter
        from repro.duality.logspace import pathnode_metered
        from repro.hypergraph.generators import matching_dual_pair

        g, h = matching_dual_pair(3)
        g, h = (h, g) if len(h) > len(g) else (g, h)
        tight = SpaceMeter(budget_bits=4)
        with pytest.raises(SpaceBudgetExceeded):
            pathnode_metered(g, h, (1,), meter=tight)

    def test_sufficient_budget_passes(self):
        from repro.machine import SpaceMeter
        from repro.duality.logspace import model_space_bits, pathnode_metered
        from repro.hypergraph.generators import matching_dual_pair

        g, h = matching_dual_pair(3)
        g, h = (h, g) if len(h) > len(g) else (g, h)
        roomy = SpaceMeter(budget_bits=model_space_bits(g, h) + 64)
        attrs, meter = pathnode_metered(g, h, (1,), meter=roomy)
        assert attrs is not None
        assert meter.live_bits == 0


class TestItemsetValidation:
    def test_threshold_domain(self):
        from repro.itemsets import BooleanRelation, is_frequent

        rel = BooleanRelation([{"a"}], items={"a"})
        with pytest.raises(InvalidInstanceError):
            is_frequent(rel, {"a"}, 0)
        with pytest.raises(InvalidInstanceError):
            is_frequent(rel, {"a"}, 2)

    def test_claimed_borders_checked(self):
        from repro.hypergraph import Hypergraph as HG
        from repro.itemsets import BooleanRelation, decide_identification

        rel = BooleanRelation([{"a", "b"}] * 3, items={"a", "b"})
        bogus_frequent = HG([{"a"}], vertices={"a", "b"})  # not maximal
        with pytest.raises(InconsistentBorderError):
            decide_identification(rel, 1, HG.empty({"a", "b"}), bogus_frequent)

    def test_inverse_mining_rejects_non_antichain(self):
        from repro.itemsets.inverse import realize_maximal_frequent

        with pytest.raises(InvalidInstanceError):
            realize_maximal_frequent(Hypergraph([{1}, {1, 2}]), z=1)

    def test_transaction_parse_errors(self):
        from repro.itemsets import io as txio

        with pytest.raises(ParseError):
            txio.loads("% bogus: directive\n")
        with pytest.raises(ParseError):
            txio.loads("% items: a\na b\n")


class TestKeysValidation:
    def test_duplicate_rows_rejected(self):
        from repro.keys import RelationalInstance

        with pytest.raises(InvalidInstanceError):
            RelationalInstance([{"A": 1}, {"A": 1}])

    def test_row_schema_mismatch(self):
        from repro.keys import RelationalInstance

        with pytest.raises(InvalidInstanceError):
            RelationalInstance([{"A": 1}, {"B": 2}])

    def test_claimed_non_key_rejected(self):
        from repro.hypergraph import Hypergraph as HG
        from repro.keys import RelationalInstance, decide_additional_key

        inst = RelationalInstance([{"A": 1, "B": 1}, {"A": 1, "B": 2}])
        with pytest.raises(InvalidInstanceError):
            decide_additional_key(inst, HG([{"A"}], vertices=("A", "B")))

    def test_fd_unknown_attribute(self):
        from repro.keys import FDSchema, fd

        with pytest.raises(InvalidInstanceError):
            FDSchema("AB", [fd("A", "Q")])


class TestCoterieValidation:
    def test_each_axiom_violation(self):
        from repro.coteries import Coterie

        with pytest.raises(NotACoterieError):
            Coterie([])
        with pytest.raises(NotACoterieError):
            Coterie([set()])
        with pytest.raises(NotACoterieError):
            Coterie([{1}, {1, 2}])
        with pytest.raises(NotACoterieError):
            Coterie([{1}, {2}])

    def test_vote_threshold_violations(self):
        from repro.coteries import coterie_from_votes

        with pytest.raises(NotACoterieError):
            coterie_from_votes({"a": 1, "b": 1}, threshold=1)  # two disjoint winners
        with pytest.raises(NotACoterieError):
            coterie_from_votes({"a": 1}, threshold=9)


class TestFileFormatErrors:
    def test_hypergraph_bad_directive(self):
        from repro.hypergraph import io as hgio

        with pytest.raises(ParseError):
            hgio.loads("% nonsense: 1 2\n")

    def test_hypergraph_universe_violation(self):
        from repro.hypergraph import io as hgio

        with pytest.raises(ParseError):
            hgio.loads("% vertices: 1\n1 2\n")

    def test_dnf_parse_failures(self):
        from repro.dnf import parse_dnf

        for bad in ("", "a |", "| a", "a $ b"):
            with pytest.raises(ParseError):
                parse_dnf(bad)
