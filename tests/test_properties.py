"""Cross-module property-based tests: the paper's identities as laws.

Each test states one identity from the paper and checks it on
hypothesis-generated instances:

* Berge's involution  tr(tr(H)) = min(H)
* duality symmetry    H = tr(G) ⟺ G = tr(H)
* Prop. 2.1(1)        tree all-done ⟺ duality
* Lemma 4.2           pathnode ≡ materialised tree
* [26]                IS⁻ = tr(IS⁺ᶜ) and IS⁺ = tr(IS⁻)ᶜ
* keys                minimal keys = tr(min(D(R)))
* Prop. 1.3           ND coterie ⟺ tr(H) = H ⟺ no dominating coterie
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    complement_family,
    transversal_hypergraph,
)
from repro.itemsets import BooleanRelation, borders
from repro.duality import decide_duality

from tests.conftest import hypergraphs, nonempty_simple_hypergraphs


class TestTransversalLaws:
    @given(hypergraphs(max_vertices=6, max_edges=5))
    @settings(max_examples=80)
    def test_berge_involution(self, hg):
        assert transversal_hypergraph(transversal_hypergraph(hg)) == hg.minimized()

    @given(nonempty_simple_hypergraphs(max_vertices=6, max_edges=4))
    @settings(max_examples=60)
    def test_duality_is_symmetric(self, hg):
        dual = transversal_hypergraph(hg)
        assert transversal_hypergraph(dual) == hg

    @given(nonempty_simple_hypergraphs(max_vertices=5, max_edges=4))
    @settings(max_examples=40, deadline=None)
    def test_engines_symmetric_in_arguments(self, hg):
        dual = transversal_hypergraph(hg)
        for method in ("bm", "fk-b"):
            forward = decide_duality(hg, dual, method=method).is_dual
            backward = decide_duality(dual, hg, method=method).is_dual
            assert forward and backward

    @given(hypergraphs(max_vertices=5, max_edges=4))
    @settings(max_examples=60)
    def test_transversal_commutes_with_relabelling(self, hg):
        from repro.hypergraph import relabel

        mapping = {v: f"v{v}" for v in hg.vertices}
        relabelled = relabel(hg, mapping)
        direct = relabel(transversal_hypergraph(hg), mapping)
        assert transversal_hypergraph(relabelled) == direct


class TestTreeLaws:
    @given(nonempty_simple_hypergraphs(max_vertices=5, max_edges=3))
    @settings(max_examples=25, deadline=None)
    def test_tree_all_done_iff_dual(self, hg):
        from repro.duality.boros_makino import tree_for

        dual = transversal_hypergraph(hg)
        g, h = (dual, hg) if len(dual) >= len(hg) else (hg, dual)
        assert tree_for(g, h).all_done()

    @given(nonempty_simple_hypergraphs(max_vertices=5, max_edges=3))
    @settings(max_examples=20, deadline=None)
    def test_pathnode_matches_tree(self, hg):
        from repro.duality.boros_makino import tree_for
        from repro.duality.logspace import pathnode

        dual = transversal_hypergraph(hg)
        g, h = (dual, hg) if len(dual) >= len(hg) else (hg, dual)
        tree = tree_for(g, h)
        for node in tree.nodes():
            assert pathnode(g, h, node.attrs.label) == node.attrs

    @given(nonempty_simple_hypergraphs(max_vertices=5, max_edges=4))
    @settings(max_examples=20, deadline=None)
    def test_fail_witnesses_are_new_transversals(self, hg):
        from repro.duality.boros_makino import build_tree
        from repro.duality.conditions import prepare_instance
        from repro.hypergraph.transversal import is_new_transversal

        dual = transversal_hypergraph(hg)
        if len(dual) <= 1:
            return
        partial = Hypergraph(list(dual.edges)[:-1], vertices=dual.vertices)
        entry = prepare_instance(hg, partial)
        if not entry.ok:
            return
        g, h = entry.g, entry.h
        if len(h) > len(g):
            g, h = h, g
        tree = build_tree(g, h)
        assert tree.fail_leaves()
        for leaf in tree.fail_leaves():
            assert is_new_transversal(leaf.attrs.witness, g, h)


def relations(max_items: int = 4, max_rows: int = 7):
    item = st.sampled_from([f"i{k}" for k in range(max_items)])
    row = st.frozensets(item, max_size=max_items)
    return st.builds(
        lambda rows: BooleanRelation(
            rows, items=[f"i{k}" for k in range(max_items)]
        ),
        st.lists(row, min_size=1, max_size=max_rows),
    )


class TestItemsetLaws:
    @given(relations(), st.integers(min_value=1, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_gunopulos_bridge(self, rel, z):
        z = min(z, len(rel))
        is_plus, is_minus = borders(rel, z)
        assert transversal_hypergraph(complement_family(is_plus)) == is_minus
        assert complement_family(transversal_hypergraph(is_minus)) == is_plus

    @given(relations(), st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_levelwise_equals_reference(self, rel, z):
        from repro.itemsets import levelwise_borders

        z = min(z, len(rel))
        assert levelwise_borders(rel, z) == borders(rel, z)

    @given(relations(max_items=4, max_rows=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_enumeration_is_exact(self, rel, z):
        from repro.itemsets import enumerate_borders

        z = min(z, len(rel))
        expected = borders(rel, z)
        is_plus, is_minus, _trace = enumerate_borders(rel, z, method="bm")
        assert (is_plus, is_minus) == expected


class TestKeyAndCoterieLaws:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)
            ),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_keys_are_difference_transversals(self, raw_rows):
        from repro.keys import (
            RelationalInstance,
            minimal_keys,
            minimal_keys_brute_force,
        )

        rows = [dict(zip("ABC", row)) for row in raw_rows]
        instance = RelationalInstance(rows, attributes=("A", "B", "C"))
        assert minimal_keys(instance) == minimal_keys_brute_force(instance)

    @given(nonempty_simple_hypergraphs(max_vertices=4, max_edges=3))
    @settings(max_examples=30, deadline=None)
    def test_prop_1_3_on_random_coteries(self, hg):
        from repro.errors import NotACoterieError
        from repro.coteries import Coterie

        try:
            coterie = Coterie(hg.edges, universe=hg.vertices)
        except NotACoterieError:
            return
        via_dual = coterie.is_nondominated()
        via_search = not coterie.is_dominated_brute_force()
        assert via_dual == via_search
