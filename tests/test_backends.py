"""Tests for the shard-execution backends (:mod:`repro.parallel.backends`).

The contracts:

* **codec losslessness** — shard requests and outcomes survive a JSON
  round trip exactly: mask payloads, tuple vertex labels, frozenset
  witnesses, and the bm policy all come back with the same types, so a
  shard solved from decoded wire bytes equals one solved in process;
* **LocalPoolBackend parity** — the backend interface over today's
  :class:`EnginePool` path yields results bit-for-bit identical to the
  serial engines and the direct pool dispatch;
* **hedged retries** — :class:`HedgedFuture` fires a duplicate after
  the deadline (first resolution wins), relaunches retryable failures
  immediately, and surfaces errors only once the attempt budget is
  spent (retryable) or right away (non-retryable);
* **peer fault tolerance** — a dead peer's in-flight shards resolve as
  retryable and reroute to a live peer without changing the answer; a
  fleet with no reachable peer fails terminally instead of hanging.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.duality import decide_duality
from repro.hypergraph.generators import (
    disjoint_union_pair,
    hard_nondual_pair,
    matching_dual_pair,
    threshold_dual_pair,
)
from repro.parallel import (
    LocalPoolBackend,
    PeerBackend,
    ShardRetryableError,
    decide_duality_parallel,
    plan_bm,
    plan_fk,
    plan_logspace,
)
from repro.parallel.backends import (
    decode_shard_item,
    decode_shard_outcome,
    encode_shard_outcome,
    encode_shard_request,
)
from repro.parallel.executor import (
    SHARD_RUNNERS,
    merge_shard_outcomes,
    shard_kind,
    shard_worker_items,
)
from repro.service import Completion, HedgedFuture


def _pairs():
    return [
        matching_dual_pair(3),
        threshold_dual_pair(7, 4),
        hard_nondual_pair(3),
        # Tuple vertex labels — the codec must keep their exact types.
        disjoint_union_pair(matching_dual_pair(2), matching_dual_pair(1)),
    ]


def _plans():
    plans = []
    for g, h in _pairs():
        plans.append(plan_fk(g, h, use_b=True, target_shards=4))
        plans.append(plan_bm(g, h, target_shards=4))
        plans.append(plan_logspace(g, h, target_shards=4))
    sharded = [p for p in plans if p.resolved is None and p.shards]
    assert sharded, "test corpus produced no sharded plans"
    return sharded


def _wire(obj: dict) -> dict:
    """A real JSON round trip — what the TCP hop does to the dict."""
    return json.loads(json.dumps(obj))


# ---------------------------------------------------------------------------
# The wire codec
# ---------------------------------------------------------------------------

class TestShardCodec:
    def test_request_round_trip_runs_identically(self):
        for plan in _plans():
            kind = shard_kind(plan)
            for shard, item in zip(plan.shards, shard_worker_items(plan)):
                wire = _wire(encode_shard_request(kind, plan.header, shard.payload))
                decoded_kind, decoded_item = decode_shard_item(wire)
                assert decoded_kind == kind
                assert SHARD_RUNNERS[kind](decoded_item) == SHARD_RUNNERS[kind](item)

    def test_outcome_round_trip_is_exact(self):
        for plan in _plans():
            kind = shard_kind(plan)
            for item in shard_worker_items(plan):
                outcome = SHARD_RUNNERS[kind](item)
                back = decode_shard_outcome(kind, _wire(encode_shard_outcome(kind, outcome)))
                assert back == outcome
                assert type(back) is type(outcome)

    def test_decoded_outcomes_merge_bit_for_bit(self):
        for plan in _plans():
            kind = shard_kind(plan)
            outcomes = [SHARD_RUNNERS[kind](i) for i in shard_worker_items(plan)]
            via_wire = [
                decode_shard_outcome(kind, _wire(encode_shard_outcome(kind, o)))
                for o in outcomes
            ]
            direct = merge_shard_outcomes(plan, outcomes)
            merged = merge_shard_outcomes(plan, via_wire)
            assert merged.verdict == direct.verdict
            assert merged.certificate == direct.certificate
            assert merged.stats.nodes == direct.stats.nodes

    def test_decode_rejects_garbage(self):
        with pytest.raises(Exception):
            decode_shard_item({"kind": "no-such-kind", "payload": {}})
        with pytest.raises(Exception):
            decode_shard_item({"payload": {}})


# ---------------------------------------------------------------------------
# The local backend
# ---------------------------------------------------------------------------

class TestLocalPoolBackend:
    def test_bit_for_bit_with_the_serial_engines(self):
        with LocalPoolBackend(n_jobs=1) as backend:
            assert backend.width == 1
            for g, h in _pairs():
                for engine in ("fk-b", "bm", "logspace"):
                    serial = decide_duality(g, h, method=engine)
                    result = decide_duality_parallel(
                        g, h, method=engine, backend=backend
                    )
                    assert result.verdict == serial.verdict, engine
                    assert result.certificate == serial.certificate, engine

    def test_stats_shape(self):
        with LocalPoolBackend(n_jobs=1) as backend:
            decide_duality_parallel(
                *threshold_dual_pair(7, 4), method="fk-b", backend=backend
            )
            stats = backend.stats()
        assert stats["backend"] == "local-pool"
        assert stats["width"] == 1
        assert stats["hedges_fired"] == 0
        assert stats["pool_tasks_completed"] > 0


# ---------------------------------------------------------------------------
# Hedged retries
# ---------------------------------------------------------------------------

def _manual_launcher():
    """A launch function whose attempts the test resolves by hand."""
    attempts: list[Completion] = []

    def launch(_index: int) -> Completion:
        attempt = Completion()
        attempts.append(attempt)
        return attempt

    return attempts, launch


def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


class TestHedgedFuture:
    def test_single_attempt_wins_without_hedging(self):
        attempts, launch = _manual_launcher()
        future = HedgedFuture(launch, hedge_after=None, max_attempts=3)
        attempts[0].resolve(value=42)
        assert future.result(timeout=5) == 42
        assert len(attempts) == 1
        assert future.hedges_fired == 0
        assert not future.hedge_won

    def test_deadline_fires_a_hedge_and_the_hedge_wins(self):
        attempts, launch = _manual_launcher()
        fired = []
        future = HedgedFuture(
            launch,
            hedge_after=0.02,
            max_attempts=3,
            on_hedge=lambda: fired.append(1),
        )
        _wait_for(lambda: len(attempts) >= 2)
        attempts[1].resolve(value="hedge")
        assert future.result(timeout=5) == "hedge"
        assert future.hedge_won
        assert future.hedges_fired >= 1
        assert fired

    def test_slow_original_still_wins_over_a_slower_hedge(self):
        attempts, launch = _manual_launcher()
        future = HedgedFuture(launch, hedge_after=0.02, max_attempts=3)
        _wait_for(lambda: len(attempts) >= 2)
        attempts[0].resolve(value="original")
        assert future.result(timeout=5) == "original"
        assert not future.hedge_won
        # The loser's eventual resolution is discarded, not an error.
        attempts[1].resolve(value="late hedge")
        assert future.result(timeout=5) == "original"

    def test_retryable_failure_relaunches_immediately(self):
        attempts, launch = _manual_launcher()
        future = HedgedFuture(
            launch,
            hedge_after=None,
            max_attempts=3,
            retryable=(ShardRetryableError,),
        )
        attempts[0].resolve(error=ShardRetryableError("peer dropped"))
        _wait_for(lambda: len(attempts) >= 2)
        attempts[1].resolve(value=7)
        assert future.result(timeout=5) == 7

    def test_retryable_budget_exhaustion_surfaces_the_error(self):
        attempts, launch = _manual_launcher()
        future = HedgedFuture(
            launch,
            hedge_after=None,
            max_attempts=2,
            retryable=(ShardRetryableError,),
        )
        attempts[0].resolve(error=ShardRetryableError("first"))
        _wait_for(lambda: len(attempts) >= 2)
        attempts[1].resolve(error=ShardRetryableError("second"))
        with pytest.raises(ShardRetryableError):
            future.result(timeout=5)

    def test_non_retryable_error_is_terminal(self):
        attempts, launch = _manual_launcher()
        future = HedgedFuture(
            launch,
            hedge_after=None,
            max_attempts=3,
            retryable=(ShardRetryableError,),
        )
        attempts[0].resolve(error=ValueError("solver bug"))
        with pytest.raises(ValueError):
            future.result(timeout=5)
        assert len(attempts) == 1

    def test_rejects_a_zero_attempt_budget(self):
        with pytest.raises(ValueError):
            HedgedFuture(lambda i: Completion(), max_attempts=0)


# ---------------------------------------------------------------------------
# Peer fault tolerance
# ---------------------------------------------------------------------------

class _SlammingPeer(threading.Thread):
    """Accepts connections and immediately closes them — a peer that is
    reachable but drops every shard on the floor."""

    def __init__(self) -> None:
        super().__init__(daemon=True)
        self._listener = socket.create_server(("127.0.0.1", 0))
        host, port = self._listener.getsockname()[:2]
        self.address = f"{host}:{port}"
        self.accepted = 0

    def run(self) -> None:
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return
            self.accepted += 1
            conn.close()

    def close(self) -> None:
        self._listener.close()


class TestPeerBackendFaults:
    def test_dead_peer_reroutes_to_the_live_peer(self):
        from repro.net.server import DualityServer

        slammer = _SlammingPeer()
        slammer.start()
        with DualityServer(n_jobs=1) as server:
            live = "%s:%d" % server.address
            backend = PeerBackend([slammer.address, live], hedge_after=None)
            try:
                for g, h in _pairs():
                    serial = decide_duality(g, h, method="fk-b")
                    result = decide_duality_parallel(
                        g, h, method="fk-b", backend=backend
                    )
                    assert result.verdict == serial.verdict
                    assert result.certificate == serial.certificate
                health = {p["peer"]: p for p in backend.stats()["peers"]}
                assert health[live]["shards_completed"] > 0
            finally:
                backend.close()
                slammer.close()
        assert slammer.accepted > 0  # the dead peer really was tried

    def test_no_reachable_peer_fails_terminally(self):
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()[:2]
        listener.close()  # nothing is listening there any more
        backend = PeerBackend([f"{host}:{port}"], hedge_after=None, connect_timeout=0.2)
        try:
            with pytest.raises(ShardRetryableError):
                decide_duality_parallel(
                    *threshold_dual_pair(7, 4), method="fk-b", backend=backend
                )
        finally:
            backend.close()

    def test_peer_stats_shape(self):
        from repro.net.server import DualityServer

        with DualityServer(n_jobs=1) as server:
            backend = PeerBackend(["%s:%d" % server.address], hedge_after=None)
            try:
                decide_duality_parallel(
                    *threshold_dual_pair(7, 4), method="fk-b", backend=backend
                )
                stats = backend.stats()
            finally:
                backend.close()
        assert stats["backend"] == "peers"
        peer = stats["peers"][0]
        assert peer["connected"] and not peer["degraded"]
        assert peer["shards_sent"] == peer["shards_completed"] > 0
        assert peer["drops"] == 0
        assert peer["latency"]["count"] == peer["shards_completed"]
        assert peer["latency"]["p99_ms"] >= peer["latency"]["p50_ms"] > 0.0
