"""E6 — Lemma 4.2 / Theorem 4.1: pathnode correctness and log²n space.

* ``pathnode`` equals the materialised tree on every label (Lemma 4.2);
* ``decompose`` reproduces the tree exactly (Theorem 4.1) — including
  the paper-faithful exhaustive-PD(I) mode on a tiny instance;
* the metered model space of the deepest resolution, swept over growing
  matching instances, is fitted against ``a + b·log₂²(n)`` — the
  theorem's envelope — with the fit quality asserted;
* benchmarks: plain vs metered vs genuine-pipeline pathnode.
"""

from __future__ import annotations

import math

import pytest

from repro.hypergraph.generators import matching_dual_pair
from repro.duality.boros_makino import tree_for
from repro.duality.logspace import (
    decompose,
    instance_size,
    iter_tree_nodes,
    pathnode,
    pathnode_metered,
    pathnode_pipeline,
)

from benchmarks.conftest import dual_workloads, ordered, print_table


def test_pathnode_equals_tree_everywhere():
    checked = 0
    for name, g, h in dual_workloads():
        g, h = ordered(g, h)
        tree = tree_for(g, h)
        for node in tree.nodes():
            assert pathnode(g, h, node.attrs.label) == node.attrs, name
            checked += 1
    assert checked > 50
    print(f"\n[E6] pathnode ≡ tree on {checked} labels across the workloads")


def test_decompose_reproduces_tree():
    for name, g, h in dual_workloads():
        g, h = ordered(g, h)
        tree = tree_for(g, h)
        out = decompose(g, h)
        assert [a.label for a in out["vertices"]] == sorted(tree.labels()), name
        assert out["edges"] == sorted(tree.edges()), name


def test_exhaustive_decompose_paper_faithful():
    g, h = ordered(*matching_dual_pair(2))
    pruned = decompose(g, h)
    full = decompose(g, h, exhaustive=True)
    assert [a.label for a in pruned["vertices"]] == [
        a.label for a in full["vertices"]
    ]
    assert pruned["edges"] == full["edges"]


def _fit_log_squared(samples: list[tuple[int, int]]) -> tuple[float, float]:
    """Least-squares fit peak ≈ a + b·log₂²(n); returns (a, b)."""
    xs = [math.log2(n) ** 2 for n, _ in samples]
    ys = [peak for _, peak in samples]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    b = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / max(
        sum((x - mean_x) ** 2 for x in xs), 1e-12
    )
    a = mean_y - b * mean_x
    return a, b


def test_space_fits_log_squared_envelope():
    samples = []
    rows = []
    for k in range(2, 8):
        g, h = ordered(*matching_dual_pair(k))
        deepest = max(iter_tree_nodes(g, h), key=lambda a: a.depth)
        _, meter = pathnode_metered(g, h, deepest.label)
        n = instance_size(g, h)
        samples.append((n, meter.peak_bits))
        rows.append((k, n, meter.peak_bits, f"{math.log2(n) ** 2:.1f}"))
    a, b = _fit_log_squared(samples)
    # Fit quality: every sample within 35% of the fitted curve.
    max_rel_err = 0.0
    for n, peak in samples:
        fitted = a + b * math.log2(n) ** 2
        max_rel_err = max(max_rel_err, abs(fitted - peak) / max(peak, 1))
    rows.append(("fit", f"a={a:.1f}", f"b={b:.2f}", f"maxerr={max_rel_err:.2f}"))
    print_table(
        "E6: metered peak bits vs a + b·log2²(n) (Theorem 4.1 envelope)",
        ["k", "n", "peak bits", "log2^2(n)"],
        rows,
    )
    assert max_rel_err < 0.35
    # And sub-linear growth overall: n grows ~64x, space far less.
    first_n, first_peak = samples[0]
    last_n, last_peak = samples[-1]
    assert (last_peak / first_peak) < (last_n / first_n) / 2


@pytest.mark.parametrize("k", (3, 4, 5))
def test_benchmark_pathnode_plain(benchmark, k):
    g, h = ordered(*matching_dual_pair(k))
    deepest = max(iter_tree_nodes(g, h), key=lambda a: a.depth)
    attrs = benchmark(pathnode, g, h, deepest.label)
    assert attrs is not None


def test_benchmark_pathnode_metered(benchmark):
    g, h = ordered(*matching_dual_pair(4))
    deepest = max(iter_tree_nodes(g, h), key=lambda a: a.depth)
    attrs, _meter = benchmark(pathnode_metered, g, h, deepest.label)
    assert attrs is not None


def test_benchmark_pathnode_pipeline(benchmark):
    # The genuine bit-recomputing variant — orders of magnitude slower,
    # which is the measured content of the space/time trade-off.
    g, h = ordered(*matching_dual_pair(3))
    deepest = max(iter_tree_nodes(g, h), key=lambda a: a.depth)
    attrs, _pipe = benchmark(pathnode_pipeline, g, h, deepest.label)
    assert attrs is not None
