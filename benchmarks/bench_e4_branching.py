"""E4 — Proposition 2.1(3): branching κ(α) ≤ |V|·|G| at every node.

Sweeps the workloads checking every node's child count against the
bound, prints the observed maxima (typically far below the bound), and
benchmarks the single expansion step ``process_children`` — the unit of
work the logspace ``next`` wraps.
"""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import matching_dual_pair, threshold_dual_pair
from repro.duality.boros_makino import process_children, tree_for
from repro.duality.logspace import initial_attrs

from benchmarks.conftest import dual_workloads, nondual_workloads, ordered, print_table


def test_branching_bound_sweep():
    rows = []
    for name, g, h in dual_workloads() + nondual_workloads():
        from repro.duality.conditions import prepare_instance

        entry = prepare_instance(g, h)
        if not entry.ok:
            continue
        gg, hh = ordered(entry.g, entry.h)
        tree = tree_for(gg, hh)
        bound = len(gg.vertices | hh.vertices) * len(gg)
        for node in tree.nodes():
            assert len(node.children) <= bound, (name, node.attrs.label)
        rows.append((name, tree.max_branching(), bound))
    print_table(
        "E4: observed max branching vs the |V||G| bound (Prop. 2.1(3))",
        ["instance", "max κ(α)", "|V|·|G|"],
        rows,
    )


@pytest.mark.parametrize(
    "maker",
    [
        lambda: matching_dual_pair(4),
        lambda: threshold_dual_pair(7, 4),
    ],
    ids=["matching-4", "threshold-7-4"],
)
def test_benchmark_process_step(benchmark, maker):
    g, h = ordered(*maker())
    root = initial_attrs(g, h)
    outcome = benchmark(process_children, root, g, h)
    assert isinstance(outcome, list)
    assert len(outcome) <= len(g.vertices | h.vertices) * len(g)
