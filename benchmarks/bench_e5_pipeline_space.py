"""E5 — Lemma 3.1: self-composition in O(log² n) space, mechanically.

Runs the ``T*`` pipeline simulator (on-demand bit recomputation, no
intermediate storage) against the direct composition:

* outputs agree exactly;
* peak metered bits grow linearly in the number of stages (log stages ⟹
  log² total) and polylogarithmically in the input size;
* the recomputation blow-up (stage invocations) is reported — the time
  price the lemma pays.

Benchmarks both execution modes on the same chain.
"""

from __future__ import annotations

import math

import pytest

from repro.machine import FunctionTransducer, self_composition

from benchmarks.conftest import print_table


def _rotate(text: str) -> str:
    return text[1:] + text[:1] if text else text


def _parity_tag(text: str) -> str:
    # Prepend the parity of '1' bits — a genuinely sequential statistic.
    ones = sum(1 for ch in text if ch == "1")
    return ("1" if ones % 2 else "0") + text[:-1]


@pytest.mark.parametrize("fn, name", [(_rotate, "rotate"), (_parity_tag, "parity")])
def test_recomputed_equals_direct(fn, name):
    # Recomputation costs ~L^stages stage runs — tiny inputs on purpose.
    for text, stages in (("01101001", 1), ("01101001", 2), ("0110", 4)):
        pipeline = self_composition(FunctionTransducer(fn, name=name), stages)
        assert pipeline.compute_recomputed(text) == pipeline.compute_direct(text)


def test_space_linear_in_stages():
    rows = []
    peaks = []
    for stages in (1, 2, 4, 8):
        pipeline = self_composition(FunctionTransducer(_rotate), stages)
        pipeline.compute_recomputed("abc")
        report = pipeline.report()
        peaks.append(report["peak_bits"])
        rows.append((stages, report["peak_bits"], report["stage_invocations"]))
    print_table(
        "E5: peak bits and recomputation vs pipeline length (input 3 chars; "
        "invocations grow ~L^stages — the lemma's time price)",
        ["stages", "peak bits", "stage invocations"],
        rows,
    )
    # Linearity in stage count: doubling stages at most ~doubles bits.
    assert peaks[3] <= 2.6 * peaks[2]
    assert peaks[2] <= 2.6 * peaks[1]
    # And strictly grows (each live stage owns registers).
    assert peaks[0] < peaks[1] < peaks[2] < peaks[3]


def test_space_polylog_in_input_size():
    rows = []
    measurements = {}
    for length in (4, 8, 16):
        stages = max(1, int(math.log2(length)))
        pipeline = self_composition(FunctionTransducer(_rotate), stages)
        pipeline.compute_recomputed("a" * length)
        peak = pipeline.meter.peak_bits
        measurements[length] = peak
        rows.append(
            (length, stages, peak, f"{math.log2(length) ** 2:.0f}")
        )
    print_table(
        "E5: log n stages — peak bits vs log²n envelope",
        ["input n", "stages=log n", "peak bits", "log2^2 n"],
        rows,
    )
    # 4x input growth must produce far less than 4x space growth.
    assert measurements[16] < measurements[4] * (16 / 4)


def test_recomputation_blowup_reported():
    pipeline = self_composition(FunctionTransducer(_rotate), 6)
    pipeline.compute_recomputed("abcdefgh")
    # Strictly more invocations than stages — the time/space trade.
    assert pipeline.invocations > 6


@pytest.mark.parametrize("mode", ["recomputed", "direct"])
def test_benchmark_pipeline(benchmark, mode):
    pipeline = self_composition(FunctionTransducer(_rotate), 3)
    text = "abcdefgh"
    if mode == "recomputed":
        out = benchmark(pipeline.compute_recomputed, text)
    else:
        out = benchmark(pipeline.compute_direct, text)
    assert len(out) == len(text)
