"""E12 — Proposition 1.3: coterie non-domination ⟺ self-duality.

* classifies the standard constructions (majority/singleton/wheel/tree
  non-dominated; grid dominated) and checks the verdicts against
  brute-force domination search on the small systems;
* on dominated coteries, builds an explicit dominating coterie from the
  duality witness and verifies availability dominance numerically;
* benchmarks the ND check across engines and the availability
  computation.
"""

from __future__ import annotations

import pytest

from repro.coteries import (
    availability,
    dominating_coterie,
    grid_coterie,
    majority_coterie,
    singleton_coterie,
    tree_coterie,
    wheel_coterie,
)

from benchmarks.conftest import print_table

SYSTEMS = [
    ("majority-3", lambda: majority_coterie(3), True),
    ("majority-5", lambda: majority_coterie(5), True),
    ("majority-7", lambda: majority_coterie(7), True),
    ("singleton-5", lambda: singleton_coterie(5), True),
    ("wheel-5", lambda: wheel_coterie(5), True),
    ("wheel-6", lambda: wheel_coterie(6), True),
    ("tree-3", lambda: tree_coterie(3), True),
    ("grid-2x2", lambda: grid_coterie(2, 2), False),
    ("grid-2x3", lambda: grid_coterie(2, 3), False),
]


def test_classification_table():
    rows = []
    for name, maker, expected_nd in SYSTEMS:
        coterie = maker()
        nd = coterie.is_nondominated(method="bm")
        assert nd == expected_nd, name
        rows.append(
            (name, len(coterie.universe), len(coterie), "yes" if nd else "NO")
        )
    print_table(
        "E12: non-domination of the standard constructions (Prop. 1.3)",
        ["coterie", "sites", "quorums", "ND?"],
        rows,
    )


def test_agreement_with_brute_force_search():
    for name, maker, _ in SYSTEMS:
        coterie = maker()
        if len(coterie.universe) > 4:
            continue  # brute-force domination search is doubly exponential
        via_dual = coterie.is_nondominated()
        via_search = not coterie.is_dominated_brute_force()
        assert via_dual == via_search, name


@pytest.mark.parametrize("method", ("bm", "fk-b", "logspace", "guess-check"))
def test_engine_agreement(method):
    for name, maker, expected_nd in SYSTEMS:
        coterie = maker()
        assert coterie.is_nondominated(method=method) == expected_nd, (
            name,
            method,
        )


def test_dominating_coterie_and_availability():
    rows = []
    for name, maker, expected_nd in SYSTEMS:
        if expected_nd:
            continue
        coterie = maker()
        better = dominating_coterie(coterie)
        assert better is not None and better.dominates(coterie), name
        for p in (0.3, 0.6, 0.9):
            assert availability(better, p) >= availability(coterie, p) - 1e-12
        rows.append(
            (
                name,
                f"{availability(coterie, 0.9):.4f}",
                f"{availability(better, 0.9):.4f}",
            )
        )
    print_table(
        "E12: availability at p=0.9 — dominated vs dominating coterie",
        ["coterie", "A(dominated)", "A(dominating)"],
        rows,
    )


@pytest.mark.parametrize("method", ("bm", "fk-b", "logspace"))
def test_benchmark_nd_check(benchmark, method):
    coterie = majority_coterie(7)
    assert benchmark(coterie.is_nondominated, method)


def test_benchmark_availability(benchmark):
    coterie = majority_coterie(7)
    value = benchmark(availability, coterie, 0.9)
    assert 0.9 < value <= 1.0
