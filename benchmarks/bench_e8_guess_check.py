"""E8 — Theorem 5.1 / Lemma 5.1: the guess-and-check bound, measured.

* guessed bits equal the descriptor-size formula and stay within the
  ``O(log² n)`` envelope across the scaling sweep;
* soundness: the checker accepts the prover's certificate and rejects
  corrupted ones; completeness: dual instances admit no certificate;
* benchmarks: the checker (plain and metered) and the full decider.
"""

from __future__ import annotations

import math

import pytest

from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
)
from repro.duality.guess_and_check import (
    certificate_for,
    check_certificate,
    check_certificate_metered,
    decide_guess_and_check,
)
from repro.duality.logspace import descriptor_bits, instance_size

from benchmarks.conftest import dual_workloads, ordered, print_table


def test_guess_bits_envelope():
    rows = []
    for k in (2, 3, 4, 5, 6, 7):
        g, h = ordered(*matching_dual_pair(k))
        result = decide_guess_and_check(g, h)
        n = instance_size(g, h)
        envelope = 4 * math.log2(n) ** 2 + 16
        assert result.stats.guessed_bits == descriptor_bits(g, h)
        assert result.stats.guessed_bits <= envelope
        rows.append(
            (k, n, result.stats.guessed_bits, f"{math.log2(n) ** 2:.1f}")
        )
    print_table(
        "E8: guessed certificate bits vs log2²(n) (Theorem 5.1)",
        ["k", "n", "guess bits", "log2^2(n)"],
        rows,
    )


def test_soundness_and_completeness():
    # Completeness of refutation: non-dual ⟹ certificate exists + checks.
    for k in (2, 3, 4):
        g, h = ordered(*hard_nondual_pair(k))
        pi = certificate_for(g, h)
        assert pi is not None
        assert check_certificate(g, h, pi)
        # Corrupted guesses are rejected.
        assert not check_certificate(g, h, pi + (10 ** 6,))
        assert not check_certificate(g, h, (10 ** 6,) + pi)
    # Soundness: dual ⟹ no certificate whatsoever.
    for name, g, h in dual_workloads():
        g, h = ordered(g, h)
        assert certificate_for(g, h) is None, name


def test_metered_check_space():
    g, h = ordered(*hard_nondual_pair(4))
    pi = certificate_for(g, h)
    ok, meter = check_certificate_metered(g, h, pi)
    assert ok
    n = instance_size(g, h)
    # The checker itself stays within the quadratic-logspace envelope
    # (constant factor follows the pathnode register accounting).
    assert meter.peak_bits <= 40 * math.log2(n) ** 2 + 200


@pytest.mark.parametrize("k", (3, 4))
def test_benchmark_checker(benchmark, k):
    # Dropping an edge of the *large* side keeps the decomposition entry
    # conditions (G ⊆ tr(H), H ⊆ tr(G)) intact, so a fail leaf exists.
    g, h = ordered(*hard_nondual_pair(k))
    pi = certificate_for(g, h)
    ok = benchmark(check_certificate, g, h, pi)
    assert ok


def test_benchmark_decider(benchmark):
    g, h = ordered(*matching_dual_pair(4))
    result = benchmark(decide_guess_and_check, g, h)
    assert result.is_dual
