"""E19 — refs [33, 19, 10] extension: Horn envelopes and abduction.

* the KPS transversal construction is exact: envelope models equal the
  intersection closure of the input models, across random and
  structured model families;
* the envelope blow-up (closure size / input size) is measured — the
  approximation cost [19] studies;
* abduction: minimal explanations via the border learner equal brute
  force, and the completeness check is a Dual instance across engines;
* benchmarks: envelope construction and explanation enumeration.
"""

from __future__ import annotations

import random

import pytest

from repro.hypergraph import Hypergraph
from repro.logic import HornTheory, intersection_closure
from repro.abduction import (
    AbductionProblem,
    maximal_non_explanations,
    minimal_explanations,
    minimal_explanations_brute_force,
    verify_explanation_completeness,
)
from repro.envelopes import (
    envelope_is_exact,
    horn_envelope,
    models_of_envelope,
)
from repro.envelopes.horn_envelope import envelope_blowup

from benchmarks.conftest import print_table


def random_models(n_atoms: int, n_models: int, seed: int) -> list[frozenset]:
    rng = random.Random(seed)
    atoms = [f"p{i}" for i in range(n_atoms)]
    return [
        frozenset(a for a in atoms if rng.random() < 0.5)
        for _ in range(n_models)
    ]


MODEL_FAMILIES = [
    ("xor-2", lambda: ([frozenset("a"), frozenset("b")], "ab")),
    (
        "majority-3",
        lambda: (
            [frozenset("ab"), frozenset("bc"), frozenset("ac")],
            "abc",
        ),
    ),
    ("random-4x4", lambda: (random_models(4, 4, seed=1), None)),
    ("random-5x6", lambda: (random_models(5, 6, seed=2), None)),
    ("random-5x3", lambda: (random_models(5, 3, seed=3), None)),
]


def test_envelope_models_equal_intersection_closure():
    rows = []
    for name, maker in MODEL_FAMILIES:
        models, atoms = maker()
        atoms = atoms or frozenset().union(*models)
        got = models_of_envelope(models, atoms=atoms)
        expected = intersection_closure(models)
        assert got == expected, name
        before, after = envelope_blowup(models, atoms=atoms)
        clauses = len(horn_envelope(models, atoms=atoms))
        rows.append((name, before, after, clauses,
                     "exact" if envelope_is_exact(models, atoms=atoms) else "approx"))
    print_table(
        "E19: Horn envelope — input models vs closure (the [19] blow-up)",
        ["family", "models", "closure", "clauses", "status"],
        rows,
    )


def weather_problem() -> AbductionProblem:
    theory = HornTheory.from_tuples(
        [
            (("rain",), "wet"),
            (("sprinkler",), "wet"),
            (("wet", "cold"), "ice"),
            ((), "cold"),
        ],
        atoms=["rain", "sprinkler", "wet", "cold", "ice"],
    )
    return AbductionProblem(
        theory, hypotheses={"rain", "sprinkler", "cold"}, query="ice"
    )


def random_definite_problem(seed: int) -> AbductionProblem:
    rng = random.Random(seed)
    atoms = list("abcdefq")
    clauses = []
    for _ in range(8):
        body = frozenset(rng.sample(atoms[:-1], rng.randint(1, 2)))
        head = rng.choice([a for a in atoms if a not in body])
        clauses.append((body, head))
    theory = HornTheory.from_tuples(clauses, atoms=atoms)
    return AbductionProblem(theory, hypotheses="abc", query="q")


def test_abduction_learner_equals_brute_force():
    rows = []
    problems = [("weather", weather_problem())] + [
        (f"random-{s}", random_definite_problem(s)) for s in (1, 2, 3, 4)
    ]
    for name, problem in problems:
        learned = minimal_explanations(problem)
        brute = minimal_explanations_brute_force(problem)
        assert learned == brute, name
        rows.append((name, len(problem.theory), len(learned)))
    print_table(
        "E19: minimal abductive explanations (learner = brute force)",
        ["problem", "clauses", "explanations"],
        rows,
    )


@pytest.mark.parametrize("method", ("bm", "fk-b", "logspace"))
def test_explanation_completeness_is_dual(method):
    problem = weather_problem()
    expl = minimal_explanations(problem)
    non = maximal_non_explanations(problem)
    assert verify_explanation_completeness(
        problem, expl, non, method=method
    ).is_dual
    if len(expl) > 1:
        partial = Hypergraph(
            list(expl.edges)[:-1], vertices=problem.hypotheses
        )
        refuted = verify_explanation_completeness(
            problem, partial, non, method=method
        )
        assert not refuted.is_dual


def test_benchmark_envelope_construction(benchmark):
    models, atoms = MODEL_FAMILIES[3][1]()
    atoms = atoms or frozenset().union(*models)
    theory = benchmark(horn_envelope, models, atoms)
    assert len(theory) >= 1


def test_benchmark_minimal_explanations(benchmark):
    problem = weather_problem()

    def run():
        return minimal_explanations(weather_problem())

    explanations = benchmark(run)
    assert len(explanations) == 2


def test_benchmark_intersection_closure(benchmark):
    models = random_models(6, 8, seed=9)
    closed = benchmark(intersection_closure, models)
    assert len(closed) >= len(set(models))
