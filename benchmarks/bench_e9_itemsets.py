"""E9 — Proposition 1.1: itemset-border identification via Dual.

* identification agrees with the levelwise ground truth across datasets
  and thresholds, for several engines (including the logspace one);
* dualize-and-advance enumerates exactly ``IS⁺ ∪ IS⁻``, one new border
  set per duality check (the Section 1 paradigm);
* the [26] identity ``IS⁻ = tr(IS⁺ᶜ)`` holds on every mined border;
* benchmarks: levelwise mining, one identification query, and the full
  enumeration with two different engines.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, complement_family, transversal_hypergraph
from repro.itemsets import (
    decide_identification,
    enumerate_borders,
    levelwise_borders,
)
from repro.itemsets.datasets import (
    contrast_pair,
    dense_random,
    market_basket,
    planted_borders,
)

from benchmarks.conftest import print_table

DATASETS = [
    ("market-9", lambda: (market_basket(n_items=9, n_rows=40, seed=21), 6)),
    ("dense-7", lambda: (dense_random(n_items=7, n_rows=30, density=0.5, seed=4), 6)),
    ("contrast-8", lambda: (contrast_pair(n_items=8, seed=5))),
    ("planted-7", lambda: planted_borders(n_items=7, z=2, seed=6)[:2]),
]


def test_identification_matches_ground_truth():
    rows = []
    for name, maker in DATASETS:
        relation, z = maker()
        is_plus, is_minus = levelwise_borders(relation, z)
        for method in ("bm", "fk-b", "logspace"):
            outcome = decide_identification(
                relation, z, is_minus, is_plus, method=method
            )
            assert outcome.complete, (name, method)
            if len(is_plus) > 1:
                partial = Hypergraph(
                    list(is_plus.edges)[:-1], vertices=relation.items
                )
                outcome = decide_identification(
                    relation, z, is_minus, partial, method=method
                )
                assert not outcome.complete, (name, method)
        rows.append((name, len(relation), z, len(is_plus), len(is_minus)))
    print_table(
        "E9: datasets and their borders (identification verified per row)",
        ["dataset", "|M|", "z", "|IS+|", "|IS-|"],
        rows,
    )


def test_bridge_identity_on_mined_borders():
    for name, maker in DATASETS:
        relation, z = maker()
        is_plus, is_minus = levelwise_borders(relation, z)
        assert transversal_hypergraph(complement_family(is_plus)) == is_minus, name


def test_enumeration_advances_once_per_border_set():
    rows = []
    for name, maker in DATASETS:
        relation, z = maker()
        expected = levelwise_borders(relation, z)
        is_plus, is_minus, trace = enumerate_borders(relation, z, method="bm")
        assert (is_plus, is_minus) == expected, name
        assert trace.additions() == len(is_plus) + len(is_minus) - 1
        rows.append(
            (name, len(is_plus) + len(is_minus), trace.additions() + 1)
        )
    print_table(
        "E9: dualize-and-advance — duality checks = border size (±seed)",
        ["dataset", "|IS+ ∪ IS-|", "duality checks"],
        rows,
    )


def test_benchmark_levelwise(benchmark):
    relation, z = market_basket(n_items=9, n_rows=40, seed=21), 6
    is_plus, is_minus = benchmark(levelwise_borders, relation, z)
    assert len(is_plus) > 0


def test_benchmark_identification_query(benchmark):
    relation, z = market_basket(n_items=9, n_rows=40, seed=21), 6
    is_plus, is_minus = levelwise_borders(relation, z)
    outcome = benchmark(
        decide_identification, relation, z, is_minus, is_plus, "bm", True
    )
    assert outcome.complete


@pytest.mark.parametrize("method", ("bm", "fk-b"))
def test_benchmark_enumeration(benchmark, method):
    relation, z = market_basket(n_items=8, n_rows=30, seed=7), 5
    is_plus, _is_minus, _trace = benchmark(
        enumerate_borders, relation, z, method
    )
    assert len(is_plus) > 0
