"""E3 — Proposition 2.1(2): decomposition-tree depth ≤ log₂|H|.

Sweeps the structural families, printing measured depth against the
paper's bound, and benchmarks full tree construction on the scaling
family (matchings, whose |H| doubles with k).
"""

from __future__ import annotations

import math

import pytest

from repro.hypergraph.generators import matching_dual_pair, threshold_dual_pair
from repro.duality.boros_makino import build_tree, tree_for

from benchmarks.conftest import dual_workloads, ordered, print_table


def test_depth_bound_sweep():
    rows = []
    for name, g, h in dual_workloads():
        g, h = ordered(g, h)
        if len(h) == 0:
            continue
        tree = tree_for(g, h)
        bound = math.log2(len(h)) if len(h) > 1 else 0.0
        assert tree.depth() <= bound + 1e-9, name
        rows.append(
            (name, len(h), tree.depth(), f"{bound:.2f}", tree.node_count())
        )
    print_table(
        "E3: tree depth vs the log2|H| bound (Prop. 2.1(2))",
        ["instance", "|H|", "depth", "log2|H|", "nodes"],
        rows,
    )


def test_depth_scaling_on_matchings():
    rows = []
    for k in range(2, 7):
        g, h = ordered(*matching_dual_pair(k))
        tree = tree_for(g, h)
        bound = math.log2(len(h))
        assert tree.depth() <= bound + 1e-9
        rows.append((k, len(h), tree.depth(), f"{bound:.1f}"))
    print_table(
        "E3: matching family scaling (|H| = 2^k)",
        ["k", "|H|", "depth", "log2|H|"],
        rows,
    )


@pytest.mark.parametrize("k", (3, 4, 5))
def test_benchmark_tree_build(benchmark, k):
    g, h = ordered(*matching_dual_pair(k))
    tree = benchmark(build_tree, g, h)
    assert tree.all_done()


def test_benchmark_tree_build_threshold(benchmark):
    g, h = ordered(*threshold_dual_pair(7, 4))
    tree = benchmark(build_tree, g, h)
    assert tree.all_done()
