"""E20 — ref [44] extension: space-efficient enumeration vs Berge.

The paper motivates its space question citing Tamaki's space-efficient
enumeration of ``tr(H)``.  This experiment makes the contrast concrete:

* the DFS enumerator produces exactly ``tr(G)`` (cross-checked) while
  holding **one** partial transversal (≤ |V| vertices); Berge's peak
  intermediate *family* grows with the output (2^k sets on matchings);
* the early-stopping decider built on it agrees with the reference on
  dual and perturbed instances and needs ≤ |H| + 1 enumerated sets;
* the time price: DFS tree nodes vs Berge's one pass, both measured.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.dfs_enumeration import (
    dfs_enumeration_stats,
    transversal_hypergraph_dfs,
)
from repro.hypergraph.generators import (
    matching,
    matching_dual_pair,
    perturb_drop_edge,
    threshold,
    threshold_dual_pair,
)
from repro.hypergraph.transversal import berge_peak_intermediate
from repro.duality import decide_duality
from repro.duality.enumeration import decide_by_dfs_enumeration

from benchmarks.conftest import dual_workloads, ordered, print_table


def test_dfs_equals_berge_on_workloads():
    for name, g, h in dual_workloads():
        assert transversal_hypergraph_dfs(g) == transversal_hypergraph(g), name


def test_space_contrast_table():
    rows = []
    for k in (3, 4, 5, 6, 7, 8):
        g = matching(k)
        stats = dfs_enumeration_stats(g)
        berge_peak = berge_peak_intermediate(g)
        assert stats.peak_partial == k
        assert berge_peak == 2 ** k
        rows.append((f"matching-{k}", 2 ** k, k, berge_peak, stats.nodes))
    for n, kk in ((6, 3), (7, 4)):
        g = threshold(n, kk)
        stats = dfs_enumeration_stats(g)
        rows.append(
            (
                f"threshold-{n}-{kk}",
                stats.yielded,
                stats.peak_partial,
                berge_peak_intermediate(g),
                stats.nodes,
            )
        )
    print_table(
        "E20: working set — DFS (one partial) vs Berge (whole family)",
        ["instance", "|tr|", "DFS peak |partial|", "Berge peak family", "DFS nodes"],
        rows,
    )


def test_decider_agreement_on_workloads():
    for name, g, h in dual_workloads():
        gg, hh = ordered(g, h)
        assert decide_by_dfs_enumeration(gg, hh).is_dual, name
        if len(hh) > 1:
            broken = perturb_drop_edge(hh, index=0)
            fast = decide_by_dfs_enumeration(gg, broken)
            slow = decide_duality(gg, broken, method="transversal")
            assert fast.is_dual == slow.is_dual, name


def test_early_stop_bound():
    g, h = matching_dual_pair(6)
    gg, hh = ordered(g, h)
    result = decide_by_dfs_enumeration(gg, hh)
    assert result.is_dual
    # the decider enumerated exactly |H| transversals — never more
    assert result.stats.extra["peak_partial"] <= len(gg.vertices)


@pytest.mark.parametrize("k", (4, 6))
def test_benchmark_dfs_enumeration(benchmark, k):
    g = matching(k)
    out = benchmark(lambda: list(transversal_hypergraph_dfs(g).edges))
    assert len(out) == 2 ** k


@pytest.mark.parametrize("k", (4, 6))
def test_benchmark_berge_enumeration(benchmark, k):
    g = matching(k)
    out = benchmark(lambda: list(transversal_hypergraph(g).edges))
    assert len(out) == 2 ** k


def test_benchmark_dfs_decider(benchmark):
    g, h = ordered(*threshold_dual_pair(6, 3))
    result = benchmark(decide_by_dfs_enumeration, g, h)
    assert result.is_dual
