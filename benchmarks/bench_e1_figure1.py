"""E1 — regenerate Figure 1 (the paper's only figure).

Re-derives the complexity-class lattice, asserts the figure's structure
(DAG, the two Theorem 5.2 inclusions, the drawn incomparabilities, the
Dual annotations) and benchmarks the full regeneration.
"""

from __future__ import annotations

from repro.complexity import (
    default_lattice,
    figure1_dual_annotations,
    figure1_edge_table,
    figure1_report,
    render_figure1,
)


def test_figure1_structure_matches_paper():
    lattice = default_lattice()
    assert lattice.is_dag()

    # Theorem 5.2: the new class sits below both previous bounds.
    assert lattice.includes("GC_LOG2_ITLOGSPACE", "DSPACE_LOG2")
    assert lattice.includes("GC_LOG2_ITLOGSPACE", "BETA2P")

    # The figure's key open separations.
    assert lattice.incomparable("DSPACE_LOG2", "BETA2P")
    assert lattice.incomparable("DSPACE_LOG2", "PTIME")
    assert lattice.incomparable("DSPACE_LOG2", "NP")

    # The tightest class containing Dual is exactly the Theorem 5.1 one.
    assert lattice.minimal_classes_containing_dual() == ["GC_LOG2_ITLOGSPACE"]

    # Ascent to PSPACE from everything.
    for key in lattice.classes:
        assert lattice.includes(key, "PSPACE")


def test_figure1_rendering_in_sync():
    diagram = render_figure1()
    for cls in ("PSPACE", "NP", "DSPACE[log2n]", "GC(log2n,PTIME)=B2P",
                "GC(log2n,[[LOGSPACEpol]]log)", "GC(log2n,LOGSPACE)",
                "PTIME", "LOGSPACE"):
        assert cls in diagram
    table = figure1_edge_table()
    assert len(table) == 9
    annotations = figure1_dual_annotations()
    assert sum(1 for a in annotations if a["contains_dual"]) == 5


def test_print_figure1(capsys):
    with capsys.disabled():
        print()
        print(figure1_report(), end="")


def test_benchmark_figure1_regeneration(benchmark):
    report = benchmark(figure1_report)
    assert "Theorem 5.2" in report
