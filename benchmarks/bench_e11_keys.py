"""E11 — Proposition 1.2: the additional-key problem via Dual.

* the transversal characterisation agrees with brute force on random
  and Armstrong-constructed instances;
* the additional-key oracle answers correctly for complete and partial
  claimed key sets, with genuine new-key witnesses;
* incremental enumeration recovers every minimal key;
* benchmarks: key mining, one oracle query, full enumeration.
"""

from __future__ import annotations

import random

import pytest

from repro.hypergraph import Hypergraph
from repro.keys import (
    FDSchema,
    RelationalInstance,
    armstrong_relation,
    decide_additional_key,
    enumerate_minimal_keys_incrementally,
    fd,
    minimal_keys,
    minimal_keys_brute_force,
)

from benchmarks.conftest import print_table


def _random_instance(n_rows: int, n_attrs: int, domain: int, seed: int) -> RelationalInstance:
    rng = random.Random(seed)
    attrs = [f"A{i}" for i in range(n_attrs)]
    rows = set()
    while len(rows) < n_rows:
        rows.add(tuple(rng.randrange(domain) for _ in attrs))
    return RelationalInstance([dict(zip(attrs, row)) for row in rows])


INSTANCES = [
    ("random-5x4", lambda: _random_instance(5, 4, 2, seed=1)),
    ("random-6x5", lambda: _random_instance(6, 5, 3, seed=2)),
    ("random-8x4", lambda: _random_instance(8, 4, 3, seed=3)),
    (
        "armstrong-ABCD",
        lambda: armstrong_relation(FDSchema("ABCD", [fd("A", "B"), fd("BC", "D")])),
    ),
]


def test_characterisation_matches_brute_force():
    rows = []
    for name, maker in INSTANCES:
        instance = maker()
        via_tr = minimal_keys(instance)
        via_bf = minimal_keys_brute_force(instance)
        assert via_tr == via_bf, name
        rows.append((name, len(instance), len(instance.attributes), len(via_tr)))
    print_table(
        "E11: minimal keys (tr-characterisation ≡ brute force per row)",
        ["instance", "rows", "attrs", "#keys"],
        rows,
    )


@pytest.mark.parametrize("method", ("bm", "fk-b", "logspace"))
def test_additional_key_oracle(method):
    for name, maker in INSTANCES:
        instance = maker()
        keys = minimal_keys(instance)
        complete = decide_additional_key(instance, keys, method=method)
        assert not complete.exists, (name, method)
        if len(keys) > 1:
            partial = Hypergraph(
                list(keys.edges)[:-1], vertices=instance.attributes
            )
            outcome = decide_additional_key(instance, partial, method=method)
            assert outcome.exists, (name, method)
            assert outcome.new_key in set(keys.edges)


def test_incremental_enumeration():
    for name, maker in INSTANCES:
        instance = maker()
        enumerated = enumerate_minimal_keys_incrementally(instance)
        assert set(enumerated) == set(minimal_keys(instance).edges), name


def test_benchmark_minimal_keys(benchmark):
    instance = _random_instance(8, 5, 3, seed=9)
    keys = benchmark(minimal_keys, instance)
    assert len(keys) >= 1


def test_benchmark_additional_key_query(benchmark):
    instance = _random_instance(8, 5, 3, seed=9)
    keys = minimal_keys(instance)
    partial = Hypergraph(list(keys.edges)[:1], vertices=instance.attributes)
    outcome = benchmark(
        decide_additional_key, instance, partial, "bm", False
    )
    assert outcome.exists or len(keys) == 1


def test_benchmark_key_enumeration(benchmark):
    instance = _random_instance(7, 4, 3, seed=11)
    keys = benchmark(enumerate_minimal_keys_incrementally, instance)
    assert len(keys) >= 1
