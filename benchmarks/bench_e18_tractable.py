"""E18 — Section 6 extension: the tractable-case fast paths, measured.

* the dispatcher classifies the workload families as Section 6's
  discussion describes and every fast path agrees with the reference
  oracle on dual and perturbed instances;
* the graph decider's work is exactly ``|H|`` enumerated covers (its
  early stop in action); the threshold decider does no enumeration at
  all on dual inputs;
* the GYO-ordered Berge keeps intermediate families at ``≤ |tr|`` on
  α-acyclic inputs, against the worst canonical-order blow-up;
* benchmarks: fast path vs the general BM engine on each class.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import (
    acyclic_chain,
    cycle_graph_edges,
    matching_dual_pair,
    path_graph_edges,
    perturb_drop_edge,
    threshold,
)
from repro.hypergraph.transversal import berge_peak_intermediate
from repro.duality import decide_duality
from repro.duality.boros_makino import decide_boros_makino
from repro.duality.tractable import (
    classify_instance,
    decide_duality_acyclic,
    decide_duality_graph,
    decide_duality_threshold,
    decide_duality_tractable,
)

from benchmarks.conftest import print_table


CLASSED_WORKLOADS = [
    ("path-7", lambda: Hypergraph(path_graph_edges(7).edges), "graph"),
    ("cycle-7", lambda: Hypergraph(cycle_graph_edges(7).edges), "graph"),
    ("matching-5", lambda: matching_dual_pair(5)[0], "graph"),
    ("threshold-6-3", lambda: threshold(6, 3), "threshold"),
    ("threshold-7-4", lambda: threshold(7, 4), "threshold"),
    ("acyclic-chain-4", lambda: acyclic_chain(4), "acyclic"),
]


def test_classification_matches_section6():
    rows = []
    for name, maker, expected_class in CLASSED_WORKLOADS:
        g = maker()
        h = transversal_hypergraph(g)
        got = classify_instance(g, h)
        assert got == expected_class, name
        rows.append((name, len(g), len(h), got))
    print_table(
        "E18: Section 6 classification of the workloads",
        ["instance", "|G|", "|tr(G)|", "class"],
        rows,
    )


def test_fast_paths_agree_with_oracle():
    for name, maker, expected_class in CLASSED_WORKLOADS:
        g = maker()
        h = transversal_hypergraph(g)
        fast = decide_duality_tractable(g, h)
        assert fast.is_dual, name
        assert fast.stats.extra["class"] == expected_class, name
        broken = perturb_drop_edge(h, index=min(1, len(h) - 1))
        fast_no = decide_duality_tractable(g, broken)
        slow_no = decide_duality(g, broken, method="transversal")
        assert fast_no.is_dual == slow_no.is_dual is False, name


def test_graph_decider_work_is_h_bounded():
    rows = []
    for name, maker, expected_class in CLASSED_WORKLOADS:
        if expected_class != "graph":
            continue
        g = maker()
        h = transversal_hypergraph(g)
        result = decide_duality_graph(g, h)
        assert result.stats.nodes == len(h), name
        rows.append((name, len(h), result.stats.nodes))
    print_table(
        "E18: graph fast path — enumerated covers = |H| (early stop)",
        ["instance", "|H|", "covers enumerated"],
        rows,
    )


def test_gyo_order_caps_acyclic_intermediates():
    rows = []
    for k in (2, 3, 4, 5):
        g = acyclic_chain(k)
        h = transversal_hypergraph(g)
        result = decide_duality_acyclic(g, h)
        peak_gyo = result.stats.extra["peak_intermediate"]
        peak_canonical = berge_peak_intermediate(g, order="canonical")
        assert peak_gyo <= max(len(h), 1) , k
        rows.append((k, len(h), peak_gyo, peak_canonical))
    print_table(
        "E18: acyclic chains — GYO-ordered Berge intermediate families",
        ["k", "|tr|", "peak (GYO order)", "peak (canonical)"],
        rows,
    )


def test_cyclic_instances_can_overshoot_final_tr():
    # The contrast for the acyclic cap: on cyclic inputs a Berge order can
    # materialise more intermediate transversals than the final family
    # holds (instance found by randomized search, pinned here).
    g = Hypergraph(
        [frozenset(e) for e in ({0, 1, 3}, {0, 4}, {1, 2}, {2, 3}, {2, 4, 5})]
    )
    from repro.hypergraph.structure import is_alpha_acyclic

    assert not is_alpha_acyclic(g)
    tr = transversal_hypergraph(g)
    peak = berge_peak_intermediate(g, order="large-first")
    assert peak > len(tr)
    print(
        f"\n[E18: cyclic overshoot] |tr| = {len(tr)}, "
        f"large-first peak = {peak} (> |tr|; impossible on the acyclic "
        "chains above)"
    )


@pytest.mark.parametrize(
    "name,maker",
    [(n, m) for n, m, _c in CLASSED_WORKLOADS[:3]],
)
def test_benchmark_graph_fast_path(benchmark, name, maker):
    g = maker()
    h = transversal_hypergraph(g)
    result = benchmark(decide_duality_graph, g, h)
    assert result.is_dual


def test_benchmark_threshold_fast_path(benchmark):
    g = threshold(7, 4)
    h = transversal_hypergraph(g)
    result = benchmark(decide_duality_threshold, g, h)
    assert result.is_dual


def test_benchmark_general_engine_same_instance(benchmark):
    # the comparison point for the fast paths above
    g = threshold(7, 4)
    h = transversal_hypergraph(g)
    result = benchmark(decide_boros_makino, g, h)
    assert result.is_dual


def test_benchmark_acyclic_fast_path(benchmark):
    g = acyclic_chain(4)
    h = transversal_hypergraph(g)
    result = benchmark(decide_duality_acyclic, g, h)
    assert result.is_dual
