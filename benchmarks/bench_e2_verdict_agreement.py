"""E2 — Proposition 2.1(1): tree verdict ⟺ duality, across all engines.

Asserts that every engine answers every workload exactly like the
transversal oracle (the definitional ground truth), with valid
certificates on refutations, and benchmarks each engine on a shared
mid-size dual instance.
"""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import matching_dual_pair
from repro.duality import available_methods, check_result_witness, decide_duality

from benchmarks.conftest import dual_workloads, nondual_workloads, print_table

ENGINES = [m for m in available_methods() if m != "truth-table"]


def test_verdict_agreement_table():
    rows = []
    for name, g, h in dual_workloads() + nondual_workloads():
        expected = decide_duality(g, h, method="transversal").is_dual
        verdicts = []
        for method in ENGINES:
            result = decide_duality(g, h, method=method)
            assert result.is_dual == expected, (name, method)
            if not result.is_dual:
                assert check_result_witness(g, h, result), (name, method)
            verdicts.append("dual" if result.is_dual else "refuted+witness")
        assert len(set(verdicts)) == 1
        rows.append((name, len(g), len(h), verdicts[0]))
    print_table(
        "E2: engine agreement (all engines concur on every row)",
        ["instance", "|G|", "|H|", "unanimous verdict"],
        rows,
    )


@pytest.mark.parametrize("method", ENGINES)
def test_benchmark_engine(benchmark, method):
    g, h = matching_dual_pair(4)
    result = benchmark(decide_duality, g, h, method=method)
    assert result.is_dual
