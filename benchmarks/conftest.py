"""Shared workloads and reporting helpers for the experiment harness.

Every ``bench_e*.py`` module regenerates one artefact of the experiment
index in DESIGN.md: it *asserts* the paper's claim on a parameter sweep
(so a regression fails the suite, not just slows it) and *benchmarks*
the operation the claim is about.  Sweep tables are printed to stdout —
run with ``pytest benchmarks/ --benchmark-only -s`` to see them; the
recorded numbers live in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import (
    graph_cover_pair,
    hard_nondual_pair,
    matching_dual_pair,
    path_graph_edges,
    perturb_drop_edge,
    random_dual_pair,
    threshold_dual_pair,
)


def ordered(g, h):
    """Apply the paper's ``|H| ≤ |G|`` input convention."""
    return (h, g) if len(h) > len(g) else (g, h)


def dual_workloads():
    """Named dual instances spanning the structural families."""
    loads = []
    for k in (2, 3, 4):
        loads.append((f"matching-{k}", *matching_dual_pair(k)))
    for n, k in ((5, 3), (6, 3), (7, 4)):
        loads.append((f"threshold-{n}-{k}", *threshold_dual_pair(n, k)))
    loads.append(("path-6", *graph_cover_pair(path_graph_edges(6))))
    for seed in (1, 2):
        loads.append((f"random-7-5-s{seed}", *random_dual_pair(7, 5, seed=seed)))
    return loads


def nondual_workloads():
    """Named non-dual instances with a known missing transversal."""
    loads = []
    for k in (2, 3, 4):
        g, h = matching_dual_pair(k)
        loads.append((f"matching-{k}-dropped", g, perturb_drop_edge(h, k)))
    for n, k in ((5, 3), (6, 3)):
        g, h = threshold_dual_pair(n, k)
        loads.append((f"threshold-{n}-{k}-dropped", g, perturb_drop_edge(h)))
    loads.append(("hard-3", *hard_nondual_pair(3)))
    return loads


def print_table(title: str, header: list[str], rows: list[tuple]) -> None:
    """Uniform sweep-table rendering for the experiment logs."""
    print(f"\n[{title}]")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def duals():
    return dual_workloads()


@pytest.fixture(scope="session")
def nonduals():
    return nondual_workloads()
