"""E10 — the Fredman–Khachiyan baseline and its n^{4χ(n)+O(1)} envelope.

The paper's "known complexity results": FK-B runs in
``DTIME[n^{4χ(n)+O(1)}]`` with ``χ(χ) = n``.  This experiment measures
the recursion work of both algorithms on the classical matching family
and checks it stays under the envelope; it also tabulates ``χ(n)`` —
the reason the bound is "quasi-polynomial" — and benchmarks A vs B.
"""

from __future__ import annotations

import math

import pytest

from repro.complexity import chi, chi_table, fk_time_bound_log
from repro.hypergraph.generators import matching_dual_pair, threshold_dual_pair
from repro.duality.fredman_khachiyan import decide_fk_a, decide_fk_b

from benchmarks.conftest import ordered, print_table


def test_recursion_work_under_envelope():
    rows = []
    for k in (2, 3, 4, 5):
        g, h = ordered(*matching_dual_pair(k))
        volume = max(2, len(g) * len(h))
        result_a = decide_fk_a(g, h)
        result_b = decide_fk_b(g, h)
        assert result_a.is_dual and result_b.is_dual
        # The envelope in log2: work ≤ v^(4χ(v)+1).
        envelope_log = fk_time_bound_log(volume)
        assert math.log2(max(result_a.stats.nodes, 1)) <= envelope_log
        assert math.log2(max(result_b.stats.nodes, 1)) <= envelope_log
        rows.append(
            (
                k,
                volume,
                result_a.stats.nodes,
                result_b.stats.nodes,
                f"{envelope_log:.1f}",
            )
        )
    print_table(
        "E10: FK recursion nodes vs the n^(4χ+1) envelope (log2 shown)",
        ["k", "volume v", "A nodes", "B nodes", "log2 envelope"],
        rows,
    )


def test_chi_growth_table():
    rows = [
        (n, f"{c:.3f}", f"{e:.2f}")
        for n, c, e in chi_table([10, 100, 10**4, 10**8, 10**12, 10**16])
    ]
    print_table(
        "E10: χ(n) and the FK exponent 4χ(n)+1 — o(log n) growth",
        ["n", "chi(n)", "4chi+1"],
        rows,
    )
    # χ is asymptotically below log₂: by n = 10^8 it is under half.
    assert chi(10**8) < math.log2(10**8) / 2


def test_tree_shape_comparison():
    # §2's opening contrast: FK's trees are "skinny" and deep, the
    # Boros–Makino tree is logarithmic-depth.  Record both shapes.
    from repro.duality.boros_makino import tree_for

    rows = []
    for k in (2, 3, 4, 5):
        g, h = ordered(*matching_dual_pair(k))
        bm_tree = tree_for(g, h)
        result_a = decide_fk_a(g, h)
        result_b = decide_fk_b(g, h)
        bound = math.log2(len(h)) if len(h) > 1 else 0
        assert bm_tree.depth() <= bound + 1e-9
        rows.append(
            (
                k,
                bm_tree.depth(),
                result_a.stats.max_depth,
                result_b.stats.max_depth,
                f"{bound:.1f}",
            )
        )
    print_table(
        "E10: decomposition depth — BM (log-bounded) vs FK recursions",
        ["k", "BM depth", "FK-A depth", "FK-B depth", "log2|H|"],
        rows,
    )


def test_fk_depth_is_polylog():
    for k in (3, 4, 5):
        g, h = ordered(*matching_dual_pair(k))
        result = decide_fk_b(g, h)
        volume = max(2, len(g) * len(h))
        assert result.stats.max_depth <= 4 * math.log2(volume) ** 2 + 8


@pytest.mark.parametrize("algo", ["fk-a", "fk-b"])
@pytest.mark.parametrize("k", (3, 4))
def test_benchmark_fk(benchmark, algo, k):
    g, h = ordered(*matching_dual_pair(k))
    decide = decide_fk_a if algo == "fk-a" else decide_fk_b
    result = benchmark(decide, g, h)
    assert result.is_dual


def test_benchmark_fk_threshold(benchmark):
    g, h = ordered(*threshold_dual_pair(7, 4))
    result = benchmark(decide_fk_b, g, h)
    assert result.is_dual
