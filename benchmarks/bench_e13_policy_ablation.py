"""E13 (ablation) — the decomposition's free choices (Section 2).

The paper notes ``T(G, H)`` is not unique and fixes the free choices one
way; correctness is choice-independent (Prop. 2.1), but tree size and
witness identity are not.  This ablation quantifies the effect of four
deterministic tie-break policies on tree size, depth and verdict —
verdicts must agree, sizes may differ — and benchmarks tree building
under each policy.
"""

from __future__ import annotations

import math

import pytest

from repro.hypergraph.generators import (
    matching_dual_pair,
    perturb_drop_edge,
    threshold_dual_pair,
)
from repro.duality.boros_makino import decide_boros_makino, tree_for
from repro.duality.policies import ALL_POLICIES, policy_by_name

from benchmarks.conftest import dual_workloads, ordered, print_table


def test_policies_agree_on_verdicts():
    for name, g, h in dual_workloads():
        for policy in ALL_POLICIES:
            assert decide_boros_makino(g, h, policy=policy).is_dual, (
                name,
                policy.name,
            )
    for k in (2, 3):
        g, h = matching_dual_pair(k)
        broken = perturb_drop_edge(h)
        for policy in ALL_POLICIES:
            result = decide_boros_makino(g, broken, policy=policy)
            assert not result.is_dual, (k, policy.name)


def test_policies_respect_prop_21_bounds():
    # Any resolution keeps depth ≤ log|H| and κ ≤ |V||G|.
    for name, g, h in dual_workloads():
        g, h = ordered(g, h)
        if len(h) <= 1:
            continue
        bound_depth = math.log2(len(h))
        bound_branch = len(g.vertices | h.vertices) * len(g)
        for policy in ALL_POLICIES:
            tree = tree_for(g, h, policy=policy)
            assert tree.depth() <= bound_depth + 1e-9, (name, policy.name)
            assert tree.max_branching() <= bound_branch, (name, policy.name)


def test_tree_size_ablation_table():
    rows = []
    for name, g, h in dual_workloads():
        g, h = ordered(g, h)
        sizes = []
        for policy in ALL_POLICIES:
            sizes.append(tree_for(g, h, policy=policy).node_count())
        rows.append((name, *sizes))
    print_table(
        "E13: tree size by tie-break policy (verdicts identical)",
        ["instance"] + [p.name for p in ALL_POLICIES],
        rows,
    )


@pytest.mark.parametrize("policy_name", [p.name for p in ALL_POLICIES])
def test_benchmark_tree_build_by_policy(benchmark, policy_name):
    g, h = ordered(*threshold_dual_pair(7, 4))
    policy = policy_by_name(policy_name)
    tree = benchmark(tree_for, g, h, policy)
    assert tree.all_done()
