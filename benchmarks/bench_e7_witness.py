"""E7 — Corollary 4.1: decision and witness in quadratic logspace.

* the logspace decider agrees with the oracle on every workload;
* on refutations, ``find_new_transversal_logspace`` returns a genuine
  new transversal (Cor. 4.1(2));
* the linear-space post-pass minimalises it to a *missing minimal
  transversal* (the discussion after Cor. 4.1);
* benchmarks: decision, witness extraction, minimalisation.
"""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import matching_dual_pair, perturb_drop_edge
from repro.hypergraph import transversal_hypergraph
from repro.hypergraph.transversal import is_new_transversal
from repro.duality.logspace import decide_logspace, find_new_transversal_logspace
from repro.duality.witness import extract_missing_minimal_transversal

from benchmarks.conftest import dual_workloads, nondual_workloads, print_table


def test_logspace_decider_agreement():
    for name, g, h in dual_workloads():
        assert decide_logspace(g, h).is_dual, name
    for name, g, h in nondual_workloads():
        assert not decide_logspace(g, h).is_dual, name


def test_witness_extraction_and_minimalisation():
    rows = []
    for k in (2, 3, 4, 5):
        g, h = matching_dual_pair(k)
        broken = perturb_drop_edge(h, index=1)
        witness = find_new_transversal_logspace(g, broken)
        universe = g.vertices
        assert witness is not None
        assert is_new_transversal(
            witness, g.with_vertices(universe), broken.with_vertices(universe)
        )
        minimal = extract_missing_minimal_transversal(g, broken, witness)
        assert minimal in set(transversal_hypergraph(g).edges)
        assert minimal not in set(broken.edges)
        rows.append((k, len(witness), len(minimal)))
    print_table(
        "E7: witness size before/after the linear-space minimalisation pass",
        ["k", "|t(α)|", "|minimalised|"],
        rows,
    )


def test_dual_instances_have_no_witness():
    for name, g, h in dual_workloads():
        assert find_new_transversal_logspace(g, h) is None, name


@pytest.mark.parametrize("k", (3, 4))
def test_benchmark_logspace_decide(benchmark, k):
    g, h = matching_dual_pair(k)
    result = benchmark(decide_logspace, g, h)
    assert result.is_dual


def test_benchmark_witness_extraction(benchmark):
    g, h = matching_dual_pair(4)
    broken = perturb_drop_edge(h, index=2)
    witness = benchmark(find_new_transversal_logspace, g, broken)
    assert witness is not None


def test_benchmark_minimalisation(benchmark):
    g, h = matching_dual_pair(4)
    broken = perturb_drop_edge(h, index=2)
    witness = find_new_transversal_logspace(g, broken)
    minimal = benchmark(extract_missing_minimal_transversal, g, broken, witness)
    assert minimal is not None
