"""E16 — ref [26] extension: membership-query learning via Dual.

* the GKMT learner is exact on all structural workload families
  (borders match brute force);
* the bill scales as the theory predicts: one duality check per border
  point (plus the final YES) and ≤ (|V| + 1) queries per point;
* engine ablation: the completeness checks can run on BM, FK-B or the
  paper's quadratic-logspace algorithm with identical learned output;
* benchmarks: learning a matching function, a threshold function, and
  an itemset-infrequency oracle.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import matching, threshold
from repro.itemsets.borders import borders
from repro.itemsets.datasets import market_basket
from repro.learning import MembershipOracle, learn_monotone_function

from benchmarks.conftest import print_table


FUNCTIONS = [
    ("matching-2", lambda: matching(2)),
    ("matching-3", lambda: matching(3)),
    ("matching-4", lambda: matching(4)),
    ("threshold-5-3", lambda: threshold(5, 3)),
    ("threshold-6-3", lambda: threshold(6, 3)),
    ("threshold-7-4", lambda: threshold(7, 4)),
]


def test_learner_exactness_across_families():
    for name, maker in FUNCTIONS:
        hg = maker()
        oracle = MembershipOracle.from_hypergraph(hg)
        learned = learn_monotone_function(oracle)
        assert learned.minimal_true_points == hg, name
        # false border = complements of tr (the CNF side)
        expected_false = Hypergraph(
            (hg.vertices - t for t in transversal_hypergraph(hg).edges),
            vertices=hg.vertices,
        )
        assert learned.maximal_false_points == expected_false, name


def test_bill_scales_with_border_size():
    rows = []
    for name, maker in FUNCTIONS:
        hg = maker()
        oracle = MembershipOracle.from_hypergraph(hg)
        learned = learn_monotone_function(oracle)
        n = len(oracle.universe)
        border = len(learned.minimal_true_points) + len(
            learned.maximal_false_points
        )
        assert learned.duality_checks == border - 2 + 1, name
        assert learned.queries <= (n + 1) * border + 2, name
        rows.append((name, n, border, learned.queries, learned.duality_checks))
    print_table(
        "E16: learning bill vs border size (ref [26])",
        ["function", "|V|", "|MTP|+|MFP|", "queries", "Dual checks"],
        rows,
    )


@pytest.mark.parametrize("method", ("bm", "fk-b", "logspace", "tractable"))
def test_engine_ablation_identical_output(method):
    hg = threshold(5, 3)
    learned = learn_monotone_function(
        MembershipOracle.from_hypergraph(hg), method=method
    )
    assert learned.minimal_true_points == hg


def test_itemset_borders_from_queries():
    relation = market_basket(n_items=7, n_rows=40, seed=13)
    z = 12
    oracle = MembershipOracle.from_infrequency(relation, z)
    learned = learn_monotone_function(oracle)
    is_plus, is_minus = borders(relation, z)
    assert learned.minimal_true_points == is_minus
    assert learned.maximal_false_points == is_plus
    # the principled bound: (|items| + 1) queries per border set, far
    # below the 2^|items| lattice scan the levelwise miner walks
    border = len(is_plus) + len(is_minus)
    assert learned.queries <= (len(relation.items) + 1) * border + 2
    assert learned.queries < 2 ** len(relation.items)


@pytest.mark.parametrize("k", (3, 4))
def test_benchmark_learn_matching(benchmark, k):
    def run():
        oracle = MembershipOracle.from_hypergraph(matching(k))
        return learn_monotone_function(oracle)

    learned = benchmark(run)
    assert len(learned.minimal_true_points) == k


def test_benchmark_learn_threshold(benchmark):
    def run():
        oracle = MembershipOracle.from_hypergraph(threshold(6, 3))
        return learn_monotone_function(oracle)

    learned = benchmark(run)
    assert len(learned.minimal_true_points) == 20


def test_benchmark_learn_infrequency(benchmark):
    relation = market_basket(n_items=6, n_rows=30, seed=11)

    def run():
        oracle = MembershipOracle.from_infrequency(relation, 9)
        return learn_monotone_function(oracle)

    learned = benchmark(run)
    assert len(learned.minimal_true_points) >= 1
