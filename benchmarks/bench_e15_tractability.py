"""E15 — the §6 tractability landscape, applied to the workload families.

Section 6: ``Dual`` is tractable for acyclic hypergraphs (hypertree
width 1) and for bounded degeneracy, while hypertree width ≥ 2 is as
hard as the general case.  This experiment classifies every workload
family with the structural analysers (GYO α-acyclicity, conformality,
primal degeneracy, rank) and benchmarks the classifiers.
"""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import (
    cycle_graph_edges,
    matching,
    path_graph_edges,
    random_simple,
    threshold,
)
from repro.hypergraph.structure import (
    is_alpha_acyclic,
    is_conformal,
    primal_degeneracy,
    tractability_report,
)

from benchmarks.conftest import print_table

FAMILIES = [
    ("matching-4", lambda: matching(4)),
    ("path-7", lambda: path_graph_edges(7)),
    ("cycle-7", lambda: cycle_graph_edges(7)),
    ("threshold-6-3", lambda: threshold(6, 3)),
    ("threshold-7-4", lambda: threshold(7, 4)),
    ("random-8-6", lambda: random_simple(8, 6, seed=5)),
]


def test_classification_table():
    rows = []
    for name, maker in FAMILIES:
        hg = maker()
        report = tractability_report(hg)
        rows.append(
            (
                name,
                "yes" if report.alpha_acyclic else "no",
                "yes" if report.conformal else "no",
                report.degeneracy,
                report.rank,
                report.verdict.split(":")[0],
            )
        )
    print_table(
        "E15: §6 tractability classification of the workload families",
        ["family", "acyclic", "conformal", "degeneracy", "rank", "class"],
        rows,
    )


def test_expected_classifications():
    assert is_alpha_acyclic(matching(4))
    assert is_alpha_acyclic(path_graph_edges(7))
    assert not is_alpha_acyclic(cycle_graph_edges(7))
    assert not is_alpha_acyclic(threshold(6, 3))
    assert primal_degeneracy(path_graph_edges(7)) == 1
    assert primal_degeneracy(cycle_graph_edges(7)) == 2
    # Thresholds are dense: primal graph is complete.
    assert primal_degeneracy(threshold(6, 3)) == 5


def test_acyclic_implies_conformal_on_families():
    for name, maker in FAMILIES:
        hg = maker()
        if is_alpha_acyclic(hg):
            assert is_conformal(hg), name


@pytest.mark.parametrize(
    "name, maker", FAMILIES, ids=[name for name, _ in FAMILIES]
)
def test_benchmark_classifier(benchmark, name, maker):
    hg = maker()
    report = benchmark(tractability_report, hg)
    assert report.verdict
