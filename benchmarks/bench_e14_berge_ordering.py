"""E14 (ablation) — Berge multiplication order vs intermediate blow-up.

The practical baseline every engine is compared against multiplies edges
one at a time; its peak intermediate family depends heavily on the
order.  This ablation measures the peak for four orders on structured
and random inputs (results are always identical — only the peak moves)
and benchmarks ``tr()`` under each order.  The blow-up contrast is the
operational motivation for the paper's space-efficient method.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.generators import random_simple, threshold
from repro.hypergraph.transversal import berge_peak_intermediate

from benchmarks.conftest import print_table

ORDERS = ("canonical", "small-first", "large-first", "interleaved")


def _workloads() -> list[tuple[str, Hypergraph]]:
    loads: list[tuple[str, Hypergraph]] = [
        ("threshold-7-3", threshold(7, 3)),
        ("threshold-8-4", threshold(8, 4)),
    ]
    for seed in (1, 2, 3):
        loads.append((f"random-9-7-s{seed}", random_simple(9, 7, seed=seed)))
    return loads


def test_result_is_order_invariant():
    for name, hg in _workloads():
        reference = transversal_hypergraph(hg)
        for order in ORDERS[1:]:
            assert transversal_hypergraph(hg, order=order) == reference, (
                name,
                order,
            )


def test_peak_ablation_table():
    rows = []
    for name, hg in _workloads():
        final = len(transversal_hypergraph(hg))
        peaks = [berge_peak_intermediate(hg, order) for order in ORDERS]
        rows.append((name, final, *peaks))
    print_table(
        "E14: Berge peak intermediate family by multiplication order",
        ["instance", "|tr|"] + list(ORDERS),
        rows,
    )


def test_peak_at_least_final_size():
    for name, hg in _workloads():
        final = len(transversal_hypergraph(hg))
        for order in ORDERS:
            assert berge_peak_intermediate(hg, order) >= min(final, 1), (
                name,
                order,
            )


@pytest.mark.parametrize("order", ORDERS)
def test_benchmark_tr_by_order(benchmark, order):
    hg = random_simple(9, 7, seed=2)
    result = benchmark(transversal_hypergraph, hg, order)
    assert result.is_simple()
