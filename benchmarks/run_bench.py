"""Perf-trajectory harness: before/after timings → ``BENCH_core.json``.

Runs the two pytest experiment modules the bitset refactor touches most
(E1 figure regeneration, E9 itemset borders) for wall-clock context, then
times the refactored kernels directly — each one both through its bitset
fast path ("after") and through the retained frozenset reference path
("before": ``transversal_hypergraph_reference``, ``use_bitset=False``,
``use_bitset_kernels(False)``, ``frequency_scan``) — and writes a
machine-readable report so future PRs can diff the perf trajectory.
(Exception: the bm rows' "before" only reverts the restriction
operators — see the note at their construction — so they understate the
refactor's full effect.)  Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # smaller sweep
    PYTHONPATH=src python benchmarks/run_bench.py --out /tmp/bench.json

The JSON layout:

* ``suites``  — wall time and exit status of the pytest benchmark files;
* ``engines`` — per engine/instance: before_s, after_s, speedup;
* ``itemsets`` — frequency-counting kernels at ≥ 20 items / ≥ 200 rows;
* ``parallel`` — serial vs multi-process rows (batch ``solve_many``,
  sharded single-instance solving, portfolio racing, warm-pool
  amortization, the ``server-concurrent`` scheduler-saturation row:
  4 TCP clients with a fast/slow mix vs the same requests serialized,
  and the ``server-async`` event-loop row: the same 4-client numbers
  plus a 1000-connection sweep with ping latency percentiles, against
  the recorded pre-deletion threaded baseline, and the ``store-flush``
  row: per-verdict persistence cost of the durable store's journal
  append vs the legacy full-file ``cache.json`` rewrite at ≥ 1k
  entries, the ``distributed-shard`` row: one instance sharded over a
  2-peer fleet of real servers via ``solve_shard`` against serial and
  local sharding, and the ``hedge-tail`` row: p99 solve time with one
  delay-proxied slow peer, hedging off vs a 50 ms hedge deadline).

Each run also **appends** a compact summary entry to a history file
(``BENCH_trend.json`` by default, ``--trend``/``--label`` to steer), so
the perf trajectory accumulates across PRs instead of being overwritten
per snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.duality.boros_makino import decide_boros_makino  # noqa: E402
from repro.duality.fredman_khachiyan import decide_fk_a, decide_fk_b  # noqa: E402
from repro.hypergraph.generators import (  # noqa: E402
    matching_dual_pair,
    threshold,
    threshold_dual_pair,
)
from repro.hypergraph.operations import use_bitset_kernels  # noqa: E402
from repro.hypergraph.transversal import (  # noqa: E402
    transversal_hypergraph,
    transversal_hypergraph_reference,
)
from repro.itemsets.datasets import dense_random  # noqa: E402
from repro.itemsets.frequency import frequency, frequency_scan, support_map  # noqa: E402
from repro.itemsets.relation import BooleanRelation  # noqa: E402
from repro.duality import decide_duality  # noqa: E402
from repro.parallel import race_portfolio, solve_many  # noqa: E402
from repro.service import EnginePool  # noqa: E402


def best_of(fn, repeats: int = 3) -> float:
    """Minimum wall time of ``repeats`` runs (the usual benchmark floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_pytest_suite(module: str) -> dict:
    """One pytest benchmark module, timed end to end."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", f"benchmarks/{module}", "-q"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    wall = time.perf_counter() - start
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    return {"wall_s": round(wall, 3), "exit_code": proc.returncode, "summary": tail}


def engine_rows(quick: bool) -> list[dict]:
    """Before/after rows for the duality engines."""
    rows = []

    def row(engine, instance, g, h, before, after, repeats):
        before_s = best_of(before, repeats)
        after_s = best_of(after, repeats)
        rows.append(
            {
                "engine": engine,
                "instance": instance,
                "n_vertices": len(g.vertices | h.vertices),
                "volume": len(g) * len(h),
                "before_s": round(before_s, 4),
                "after_s": round(after_s, 4),
                "speedup": round(before_s / after_s, 2) if after_s else None,
            }
        )

    # transversal engine: tr(G) itself is the engine's whole cost.
    tr_instances = [("threshold-9", threshold(9))]
    if not quick:
        tr_instances += [("threshold-11", threshold(11)), ("matching-9", matching_dual_pair(9)[0])]
    for name, g in tr_instances:
        row(
            "transversal",
            name,
            g,
            g,
            lambda g=g: transversal_hypergraph_reference(g),
            lambda g=g: transversal_hypergraph(g),
            repeats=2 if not quick else 1,
        )

    # Fredman–Khachiyan A and B: mask recursion vs frozenset recursion.
    fk_instances = [("threshold-9-5", threshold_dual_pair(9, 5))]
    if not quick:
        fk_instances += [
            ("threshold-11-6", threshold_dual_pair(11, 6)),
            ("matching-8", matching_dual_pair(8)),
        ]
    for name, (g, h) in fk_instances:
        row(
            "fk-a",
            name,
            g,
            h,
            lambda g=g, h=h: decide_fk_a(g, h, use_bitset=False),
            lambda g=g, h=h: decide_fk_a(g, h, use_bitset=True),
            repeats=3,
        )
        row(
            "fk-b",
            name,
            g,
            h,
            lambda g=g, h=h: decide_fk_b(g, h, use_bitset=False),
            lambda g=g, h=h: decide_fk_b(g, h, use_bitset=True),
            repeats=3,
        )

    # Boros–Makino.  NOTE: use_bitset_kernels only reverts the
    # restriction operators (project / restrict_to_subsets / contract);
    # majority_vertices, marksmall and process_children run their mask
    # inner loops unconditionally.  The bm "before" is therefore a
    # partial revert — an underestimate of the full refactor's effect —
    # which the per-row "before_scope" field records.
    bm_instances = [("matching-6", matching_dual_pair(6))]
    if not quick:
        bm_instances.append(("matching-7", matching_dual_pair(7)))
    for name, (g, h) in bm_instances:

        def before(g=g, h=h):
            use_bitset_kernels(False)
            try:
                decide_boros_makino(g, h)
            finally:
                use_bitset_kernels(True)

        row(
            "bm",
            name,
            g,
            h,
            before,
            lambda g=g, h=h: decide_boros_makino(g, h),
            repeats=2 if not quick else 1,
        )
        rows[-1]["before_scope"] = "restriction-ops-only"
    return rows


def itemset_rows(quick: bool) -> list[dict]:
    """Before/after rows for frequency counting (≥ 20 items, ≥ 200 rows)."""
    rows = []
    shapes = [(24, 300, 0.5)]
    if not quick:
        shapes.append((32, 500, 0.4))
    for n_items, n_rows, density in shapes:
        relation = dense_random(
            n_items=n_items, n_rows=n_rows, density=density, seed=42
        )
        # Re-wrap so cached bitmaps from generation don't skew the scan side.
        relation = BooleanRelation(relation.rows, items=relation.items)
        items = sorted(relation.items, key=repr)
        import random as _random

        rng = _random.Random(7)
        queries = [
            frozenset(rng.sample(items, rng.randint(1, 6))) for _ in range(200)
        ]

        def scan_all():
            for u in queries:
                frequency_scan(relation, u)

        def bitmap_all():
            for u in queries:
                frequency(relation, u)

        relation.vertical_bitmaps()  # build once; steady-state is what we time
        before_s = best_of(scan_all, 3)
        after_s = best_of(bitmap_all, 3)
        rows.append(
            {
                "kernel": "frequency",
                "instance": f"dense-{n_items}x{n_rows}",
                "n_items": n_items,
                "n_rows": n_rows,
                "queries": len(queries),
                "before_s": round(before_s, 4),
                "after_s": round(after_s, 4),
                "speedup": round(before_s / after_s, 2) if after_s else None,
            }
        )

        def support_bitmap():
            support_map(relation, queries)

        def support_scan():
            for u in queries:
                frequency_scan(relation, u)

        before_s = best_of(support_scan, 3)
        after_s = best_of(support_bitmap, 3)
        rows.append(
            {
                "kernel": "support_map",
                "instance": f"dense-{n_items}x{n_rows}",
                "n_items": n_items,
                "n_rows": n_rows,
                "queries": len(queries),
                "before_s": round(before_s, 4),
                "after_s": round(after_s, 4),
                "speedup": round(before_s / after_s, 2) if after_s else None,
            }
        )
    return rows


def _batch_workload(quick: bool) -> list[tuple]:
    """A multi-instance batch of *distinct* dual pairs (``solve_many``
    dedupes repeats, so the workload must not contain any)."""
    pairs = [
        threshold_dual_pair(10, 5),
        threshold_dual_pair(11, 6),
        threshold_dual_pair(11, 5),
        threshold_dual_pair(9, 5),
        matching_dual_pair(8),
        matching_dual_pair(7),
    ]
    if not quick:
        pairs += [
            threshold_dual_pair(12, 6),
            threshold_dual_pair(10, 6),
            threshold_dual_pair(12, 5),
            matching_dual_pair(6),
        ]
    return pairs


def parallel_rows(quick: bool) -> list[dict]:
    """Serial vs parallel rows for the PR-2 subsystem.

    * ``solve_many`` — the batch front end, one serial engine per
      worker: the row the ROADMAP's "parallel speedup" trend tracks.
    * ``decide_duality(n_jobs=2)`` — sharded solving of one instance.
    * ``portfolio`` — racing wall time vs the slowest racer's serial
      time (the cost an unlucky fixed engine choice would pay).
    """
    rows = []
    repeats = 1 if quick else 2

    pairs = _batch_workload(quick)
    serial_s = best_of(lambda: solve_many(pairs, method="fk-b", n_jobs=1), repeats)
    parallel_s = best_of(lambda: solve_many(pairs, method="fk-b", n_jobs=2), repeats)
    rows.append(
        {
            "kernel": "solve_many",
            "instance": f"batch-{len(pairs)}x-fk-b",
            "n_instances": len(pairs),
            "n_jobs": 2,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        }
    )

    g, h = threshold_dual_pair(11, 6) if quick else threshold_dual_pair(12, 6)
    serial_s = best_of(lambda: decide_duality(g, h, method="fk-b"), repeats)
    parallel_s = best_of(
        lambda: decide_duality(g, h, method="fk-b", n_jobs=2), repeats
    )
    rows.append(
        {
            "kernel": "sharded-fk-b",
            "instance": f"threshold-{len(g.vertices)}",
            "n_jobs": 2,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        }
    )

    engines = ("fk-b", "bm", "logspace")
    per_engine = {
        engine: best_of(lambda e=engine: decide_duality(g, h, method=e), 1)
        for engine in engines
    }
    race_s = best_of(lambda: race_portfolio(g, h, engines=engines, n_jobs=3), 1)
    worst = max(per_engine.values())
    rows.append(
        {
            "kernel": "portfolio",
            "instance": f"threshold-{len(g.vertices)}",
            "n_jobs": 3,
            "serial_s": round(worst, 4),
            "serial_scope": "slowest racer",
            "parallel_s": round(race_s, 4),
            "speedup": round(worst / race_s, 2) if race_s else None,
            "per_engine_s": {e: round(t, 4) for e, t in per_engine.items()},
        }
    )

    # Batch portfolio: the same multi-instance batch under
    # method="portfolio", serial fallback (n_jobs=1 runs every racer to
    # completion) vs per-instance process racing.  Racing wins even on a
    # single core — concurrency hedges the engine choice, so the batch
    # finishes in about the fastest racer's time instead of the sum.
    race_pairs = [
        matching_dual_pair(7),
        threshold_dual_pair(10, 5),
        threshold_dual_pair(11, 6),
    ]

    def batch_sequential():
        for pg, ph in race_pairs:
            race_portfolio(pg, ph, engines=engines, n_jobs=1)

    def batch_raced():
        for pg, ph in race_pairs:
            race_portfolio(pg, ph, engines=engines, n_jobs=3)

    serial_s = best_of(batch_sequential, 1)
    parallel_s = best_of(batch_raced, 1)
    rows.append(
        {
            "kernel": "batch-portfolio",
            "instance": f"batch-{len(race_pairs)}x-portfolio",
            "n_instances": len(race_pairs),
            "n_jobs": 3,
            "serial_s": round(serial_s, 4),
            "serial_scope": "n_jobs=1 fallback (all racers run)",
            "parallel_s": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        }
    )
    # Persistent pool vs per-call spawn: many small batches of small
    # instances — the service workload.  "serial" pays a fresh worker
    # pool per batch (the PR-2 behaviour); "parallel" spawns an
    # EnginePool once and streams every batch through the warm workers.
    small_pairs = [
        matching_dual_pair(k) for k in (2, 3, 4, 5)
    ] + [
        threshold_dual_pair(n, k)
        for n, k in ((5, 3), (6, 3), (7, 4), (8, 4), (7, 3), (6, 4), (8, 5), (9, 4))
    ]
    small_batches = [small_pairs[i : i + 2] for i in range(0, len(small_pairs), 2)]

    def per_call_pools():
        for batch in small_batches:
            solve_many(batch, method="fk-b", n_jobs=2)

    def persistent_pool():
        with EnginePool(2) as pool:
            for batch in small_batches:
                solve_many(batch, method="fk-b", pool=pool)

    serial_s = best_of(per_call_pools, repeats)
    parallel_s = best_of(persistent_pool, repeats)
    rows.append(
        {
            "kernel": "service-pool",
            "instance": f"{len(small_batches)}-batches-of-2-fk-b",
            "n_instances": len(small_pairs),
            "n_jobs": 2,
            "serial_s": round(serial_s, 4),
            "serial_scope": "fresh WorkerPool per batch",
            "parallel_s": round(parallel_s, 4),
            "parallel_scope": "one warm EnginePool for every batch",
            "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        }
    )
    # Scheduler saturation: 4 concurrent clients (one of them on a
    # deliberately slow instance) against one warm TCP server, vs the
    # same requests serialized through one client at a time.  The PR-5
    # row: with no solve lock, fast requests overtake the slow one, so
    # concurrency wins wall-clock wherever cores exist (and costs
    # nothing on one core).  No cache — every request computes, both
    # sides.
    from repro.net import DualityClient, DualityServer

    slow_pair = (
        threshold_dual_pair(11, 6) if quick else threshold_dual_pair(12, 6)
    )
    client_workloads = [
        [slow_pair],
        [matching_dual_pair(7), threshold_dual_pair(9, 5)],
        [threshold_dual_pair(10, 5), matching_dual_pair(6)],
        [threshold_dual_pair(10, 6), threshold_dual_pair(8, 4)],
    ]

    with DualityServer(method="fk-b", n_jobs=2) as server:
        host, port = server.address

        def run_client(workload):
            with DualityClient(host, port, timeout=600) as client:
                client.solve_many(workload)

        def serialized():
            for workload in client_workloads:
                run_client(workload)

        def concurrent():
            import threading

            threads = [
                threading.Thread(target=run_client, args=(workload,))
                for workload in client_workloads
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        run_client(client_workloads[1])  # warm the pool off the clock
        # Per-pass noise on a small box is ±15%, well above the effect
        # being measured (the serial/concurrent ratio sits near 1.0 on
        # one core), and independent best-of floors turn that noise
        # into a coin flip.  Pair the passes instead — serialized and
        # concurrent alternate back to back, so drift hits both sides
        # of each pair — and report the median paired ratio.
        import statistics

        server_passes = 2 if quick else 8
        ser_times, con_times = [], []
        for _ in range(server_passes):
            start = time.perf_counter()
            serialized()
            ser_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            concurrent()
            con_times.append(time.perf_counter() - start)
        serial_s = statistics.median(ser_times)
        parallel_s = statistics.median(con_times)
        paired_speedup = statistics.median(
            s / c for s, c in zip(ser_times, con_times)
        )
    rows.append(
        {
            "kernel": "server-concurrent",
            "instance": f"{len(client_workloads)}-clients-mixed-fk-b",
            "n_instances": sum(len(w) for w in client_workloads),
            "n_jobs": 2,
            "serial_s": round(serial_s, 4),
            "serial_scope": "one client at a time (the old solve-lock shape)",
            "parallel_s": round(parallel_s, 4),
            "parallel_scope": "4 concurrent clients, shared scheduler",
            "speedup": round(paired_speedup, 2),
            "speedup_method": f"median paired ratio over {server_passes} passes",
        }
    )
    # Event-loop saturation (PR 6).  The server the rows above just
    # drove *is* the asyncio server — the threaded one is deleted — so
    # its 4-client numbers carry over verbatim for the throughput
    # comparison against the recorded threaded baseline; what this row
    # adds is the part no thread-per-connection design did cheaply: a
    # four-digit connection sweep, every connection live at once on one
    # event loop, with ping latency percentiles under that load.
    rows.append(
        {
            "kernel": "server-async",
            "instance": f"{len(client_workloads)}-clients-mixed-fk-b+conn-sweep",
            "n_instances": sum(len(w) for w in client_workloads),
            "n_jobs": 2,
            "serial_s": round(serial_s, 4),
            "serial_scope": "one client at a time, asyncio server",
            "parallel_s": round(parallel_s, 4),
            "parallel_scope": (
                "4 concurrent clients, asyncio server "
                "(same measurement as server-concurrent)"
            ),
            "speedup": round(paired_speedup, 2),
            "speedup_method": f"median paired ratio over {server_passes} passes",
            "connections": _connection_sweep(quick),
            # The threaded server is deleted, so no future run can
            # measure it live; these numbers pin the comparison.  The
            # 4-client figures are the PR-5 trend entry (same machine,
            # same full workload, recorded by the threaded server's own
            # last bench run); absolute wall-clock drifts run to run on
            # this box, so compare the within-run concurrency ratios
            # (speedup vs speedup), which is what
            # ``throughput_vs_threaded`` below does.  The 1000-conn
            # figures were measured by hand at the PR-5 head right
            # before the deletion: the threaded design held 1000
            # connections, but at 2 OS threads each (2002 threads) with
            # ping latency in the hundreds of ms from scheduler
            # pressure.
            "threaded_baseline": {
                "serial_s": 0.3148,
                "parallel_s": 0.3181,
                "speedup": 0.99,
                "source": "BENCH_trend.json PR5 server-concurrent row",
                "os_threads_at_1000_conns": 2002,
                "ping_ms_at_1000_conns": 287.0,
                "conn_figures_measured": "PR-5 head, same container, pre-deletion",
            },
            # ≥ 1.0 means the async server extracts at least as much
            # concurrent throughput from the same 4-client workload as
            # the threaded server did, normalized against each run's
            # own serialized pass to cancel machine drift.
            "throughput_vs_threaded": round(paired_speedup / 0.99, 2),
        }
    )
    # Observability overhead: the same solve_many batch with tracing +
    # a timing log on vs everything off.  The obs layer's contract is
    # zero-cost-when-disabled and a few percent at most when enabled;
    # this row keeps the claim measured, not asserted.
    import statistics
    import tempfile

    from repro.obs import disable_tracing, enable_tracing

    obs_pairs = _batch_workload(quick)

    def obs_off():
        solve_many(obs_pairs, method="fk-b", n_jobs=2)

    def obs_on():
        enable_tracing()
        try:
            with tempfile.TemporaryDirectory() as tmp:
                solve_many(
                    obs_pairs,
                    method="fk-b",
                    n_jobs=2,
                    timings=Path(tmp) / "timings.jsonl",
                )
        finally:
            disable_tracing()

    # Interleaved off/on passes with a median paired ratio, because on
    # this 1-core container absolute wall-clock drifts run to run by
    # more than the overhead being measured (same trick as the
    # server-concurrent row).
    obs_off()  # warm the workload off the clock
    obs_passes = 2 if quick else 3
    off_times: list[float] = []
    on_times: list[float] = []
    paired: list[float] = []
    for _ in range(obs_passes):
        start = time.perf_counter()
        obs_off()
        off_t = time.perf_counter() - start
        start = time.perf_counter()
        obs_on()
        on_t = time.perf_counter() - start
        off_times.append(off_t)
        on_times.append(on_t)
        paired.append(on_t / off_t)
    ratio = statistics.median(paired)
    rows.append(
        {
            "kernel": "obs-overhead",
            "instance": f"batch-{len(obs_pairs)}x-fk-b",
            "n_instances": len(obs_pairs),
            "n_jobs": 2,
            "serial_s": round(min(off_times), 4),
            "serial_scope": "tracing + metrics + timings disabled",
            "parallel_s": round(min(on_times), 4),
            "parallel_scope": "global tracing on + timing log recording",
            "speedup": round(1 / ratio, 2),
            "speedup_method": f"median paired ratio over {obs_passes} passes",
            "overhead_pct": round((ratio - 1) * 100, 1),
        }
    )
    for row in rows:
        row["cpus"] = os.cpu_count()
    return rows


def store_rows(quick: bool) -> list[dict]:
    """The PR-8 ``store-flush`` row: per-verdict persistence cost.

    "serial" is the legacy autosave shape — every new verdict rewrote
    the whole ``cache.json``, so the per-verdict cost grows linearly
    with the cache.  "parallel" is the durable store — one fsync'd
    journal append plus a WAL insert, whatever the store already holds.
    The ``scaling`` sub-table shows the divergence directly: the
    rewrite cost grows ~8x from 128 to 1024 entries while the flush
    cost stays flat.  Sizes are fixed (store operations are cheap
    enough that ``--quick`` does not need to shrink them, and the
    acceptance point is ≥ 1k entries).
    """
    import tempfile

    from repro.parallel import ResultCache
    from repro.parallel.batch import result_from_json, result_to_json
    from repro.store import VerdictStore

    del quick  # sizes are fixed; see the docstring
    g, h = matching_dual_pair(3)
    entry = result_to_json(decide_duality(g, h, method="fk-b"))
    result = result_from_json(dict(entry))

    sizes = (128, 1024)
    scaling: dict[str, dict] = {}
    flush_probes = 16
    with tempfile.TemporaryDirectory() as tmp:
        for n_entries in sizes:
            # Legacy: a cache holding n entries pays a full-file rewrite
            # to persist each new verdict.
            cache = ResultCache()
            for n in range(n_entries):
                cache.put(f"key-{n:06d}", result)
            cache_path = Path(tmp) / f"cache-{n_entries}.json"
            rewrite_s = best_of(lambda: cache.save(cache_path), 3)

            # Store: the same store size, per-verdict journal flush.
            store = VerdictStore(Path(tmp) / f"store-{n_entries}.db")
            for n in range(n_entries):
                store.put_entry(f"key-{n:06d}", entry)
            probe = [0]

            def flush_batch():
                for _ in range(flush_probes):
                    probe[0] += 1
                    store.put_entry(f"probe-{probe[0]:06d}", entry)

            flush_s = best_of(flush_batch, 3) / flush_probes
            store.close()
            scaling[str(n_entries)] = {
                "rewrite_s": round(rewrite_s, 6),
                "flush_s": round(flush_s, 6),
            }

    small, big = (str(n) for n in sizes)
    rewrite_big = scaling[big]["rewrite_s"]
    flush_big = scaling[big]["flush_s"]
    return [
        {
            "kernel": "store-flush",
            "instance": f"{sizes[1]}-entries",
            "n_entries": sizes[1],
            "serial_s": rewrite_big,
            "serial_scope": "legacy autosave: full cache.json rewrite per verdict",
            "parallel_s": flush_big,
            "parallel_scope": "journal append + fsync + WAL insert per verdict",
            "speedup": round(rewrite_big / flush_big, 2) if flush_big else None,
            "scaling": scaling,
            # ~sizes-ratio means linear in the cache; ~1.0 means flat.
            "rewrite_growth": round(
                rewrite_big / scaling[small]["rewrite_s"], 1
            ),
            "flush_growth": round(flush_big / scaling[small]["flush_s"], 1),
            "cpus": os.cpu_count(),
        }
    ]


def auto_select_rows(quick: bool) -> list[dict]:
    """The PR-10 ``auto-select`` row: learned selection vs the portfolio.

    A selector is trained online — sequential portfolio races over a
    training workload record every racer's timing — then a held-out
    workload is decided three ways:

    * **best single engine** (the ``serial_s`` baseline): the fixed
      engine with the lowest total wall in hindsight — the bar the
      learned selection must stay within 1.2x of;
    * **portfolio**: every racer on every instance, whose aggregate
      CPU-seconds (``portfolio_cpu_s``) is the cost ``auto`` exists to
      undercut;
    * **auto** (``parallel_s``): per-instance prediction, reduced race
      on low confidence, with the CPU it actually burned
      (``auto_cpu_s``) summed from its own per-engine timings.
    """
    from repro.hypergraph import mask_payload
    from repro.obs.timings import structural_features
    from repro.select import fit_engine_model

    # The same complement the portfolio row races: the generator
    # families here are all paper §6 tractable classes, so including
    # the ``tractable`` recognizer would degenerate every race (and the
    # learned problem with it) to structural dispatch.
    engines = ("fk-b", "bm", "logspace")

    train_pairs = _batch_workload(quick)
    train_rows = []
    for pg, ph in train_pairs:
        result = race_portfolio(pg, ph, engines=engines, n_jobs=1)
        features = structural_features(mask_payload(pg), mask_payload(ph))
        race = result.stats.extra["portfolio"]
        for engine, elapsed in race["timings_s"].items():
            if elapsed is not None:
                train_rows.append(
                    {"engine": engine, "elapsed_s": elapsed, **features}
                )
    model = fit_engine_model(train_rows)

    eval_pairs = [
        threshold_dual_pair(11, 5),
        threshold_dual_pair(10, 6),
        threshold_dual_pair(9, 4),
        matching_dual_pair(7),
    ]
    if not quick:
        eval_pairs += [threshold_dual_pair(12, 7), matching_dual_pair(6)]

    # Every fixed engine choice, timed sequentially over the held-out
    # workload: the per-engine totals are each engine's wall AND its
    # CPU-seconds (single-threaded), so their sum is the aggregate CPU
    # a sequential portfolio burns on this workload.
    per_engine_total = {
        engine: sum(
            best_of(
                lambda e=engine, a=pg, b=ph: decide_duality(a, b, method=e), 1
            )
            for pg, ph in eval_pairs
        )
        for engine in engines
    }
    portfolio_cpu = sum(per_engine_total.values())
    best_engine = min(per_engine_total, key=lambda e: per_engine_total[e])
    best_single_s = per_engine_total[best_engine]

    modes: dict[str, int] = {}
    auto_cpu = 0.0
    # Warm the selector path (imports, feature kernels) off the clock,
    # exactly like the per-engine baselines were warmed by the races.
    decide_duality(*eval_pairs[0], method="auto", model=model)
    auto_wall = 0.0
    results = []
    for pg, ph in eval_pairs:
        start = time.perf_counter()
        results.append(decide_duality(pg, ph, method="auto", model=model))
        auto_wall += time.perf_counter() - start
    for result in results:
        auto = result.stats.extra["auto"]
        modes[auto["mode"]] = modes.get(auto["mode"], 0) + 1
        auto_cpu += sum(
            t for t in auto["timings_s"].values() if t is not None
        )

    return [
        {
            "kernel": "auto-select",
            "instance": f"batch-{len(eval_pairs)}x-heldout",
            "n_instances": len(eval_pairs),
            "n_jobs": 1,
            "serial_s": round(best_single_s, 4),
            "serial_scope": f"best single engine in hindsight ({best_engine})",
            "parallel_s": round(auto_wall, 4),
            "parallel_scope": "learned selection (predict / reduced race)",
            "speedup": round(best_single_s / auto_wall, 2) if auto_wall else None,
            "wall_ratio_vs_best": round(auto_wall / best_single_s, 3)
            if best_single_s
            else None,
            "auto_cpu_s": round(auto_cpu, 4),
            "portfolio_cpu_s": round(portfolio_cpu, 4),
            "cpu_fraction_of_portfolio": round(auto_cpu / portfolio_cpu, 4)
            if portfolio_cpu
            else None,
            "modes": modes,
            "per_engine_s": {
                engine: round(total, 4)
                for engine, total in per_engine_total.items()
            },
            "train_groups": model.meta["groups"],
            "cpus": os.cpu_count(),
        }
    ]


def _delay_proxy(upstream: tuple, delay_s: float):
    """A TCP proxy that delays every server→client chunk by ``delay_s``
    — a deterministically slow peer for the hedge-tail row.  Returns
    ``(listener, "host:port")``; close the listener to stop it."""
    import socket
    import threading

    listener = socket.create_server(("127.0.0.1", 0))
    address = "127.0.0.1:%d" % listener.getsockname()[1]

    def pump(src, dst, delay):
        try:
            while True:
                chunk = src.recv(65536)
                if not chunk:
                    break
                if delay:
                    time.sleep(delay)
                dst.sendall(chunk)
        except OSError:
            pass
        for sock in (src, dst):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def serve():
        while True:
            try:
                conn, _peer = listener.accept()
            except OSError:
                return
            try:
                up = socket.create_connection(upstream)
            except OSError:
                conn.close()
                continue
            threading.Thread(target=pump, args=(conn, up, 0), daemon=True).start()
            threading.Thread(
                target=pump, args=(up, conn, delay_s), daemon=True
            ).start()

    threading.Thread(target=serve, daemon=True).start()
    return listener, address


def distributed_rows(quick: bool) -> list[dict]:
    """The PR-9 distributed-sharding rows.

    * ``distributed-shard`` — one instance sharded over a 2-peer fleet
      of real duality servers (``solve_shard`` over TCP) vs the serial
      engine, with the local 2-process sharding time for context: the
      row says what the wire costs (or buys) at this instance size.
    * ``hedge-tail`` — the same fleet with one peer behind a delay
      proxy.  "serial" is the p99 solve time with hedging off (the
      slow peer taxes whichever shards land on it); "parallel" is the
      p99 with a 50 ms hedge deadline (duplicates relaunch on the fast
      peer and win).  The row quantifies what hedged retries shave off
      the tail, not average, latency.
    """
    from repro.net.server import DualityServer
    from repro.parallel import PeerBackend, decide_duality_parallel

    rows = []
    repeats = 1 if quick else 2
    g, h = threshold_dual_pair(11, 6) if quick else threshold_dual_pair(12, 6)

    servers = [DualityServer(n_jobs=1).start() for _ in range(2)]
    peers = ["%s:%d" % server.address for server in servers]
    try:
        serial_s = best_of(lambda: decide_duality(g, h, method="fk-b"), repeats)
        local_s = best_of(
            lambda: decide_duality(g, h, method="fk-b", n_jobs=2), repeats
        )
        with PeerBackend(peers, hedge_after=None) as backend:
            reference = decide_duality(g, h, method="fk-b")
            result = decide_duality_parallel(g, h, method="fk-b", backend=backend)
            assert result.verdict == reference.verdict
            distributed_s = best_of(
                lambda: decide_duality_parallel(
                    g, h, method="fk-b", backend=backend
                ),
                repeats,
            )
        rows.append(
            {
                "kernel": "distributed-shard",
                "instance": f"threshold-{len(g.vertices)}",
                "n_peers": 2,
                "serial_s": round(serial_s, 4),
                "parallel_s": round(distributed_s, 4),
                "parallel_scope": "2 peer servers via solve_shard over TCP",
                "local_shard_s": round(local_s, 4),
                "speedup": round(serial_s / distributed_s, 2)
                if distributed_s
                else None,
            }
        )

        # Hedge tail: peer 0 answers late by construction.
        delay_s = 0.25
        listener, slow_address = _delay_proxy(servers[0].address, delay_s)
        solves = 8 if quick else 16
        sg, sh = matching_dual_pair(4)
        tails = {}
        hedges = {}
        try:
            for label, hedge_after in (("off", None), ("on", 0.05)):
                with PeerBackend(
                    [slow_address, peers[1]], hedge_after=hedge_after
                ) as backend:
                    times = []
                    for _ in range(solves):
                        start = time.perf_counter()
                        decide_duality_parallel(
                            sg, sh, method="fk-b", backend=backend
                        )
                        times.append(time.perf_counter() - start)
                    times.sort()
                    tails[label] = times[min(len(times) - 1, int(len(times) * 0.99))]
                    hedges[label] = backend.stats()["hedges_fired"]
        finally:
            listener.close()
        rows.append(
            {
                "kernel": "hedge-tail",
                "instance": f"matching-{len(sg.vertices)}-x{solves}",
                "n_peers": 2,
                "peer_delay_s": delay_s,
                "serial_s": round(tails["off"], 4),
                "serial_scope": "p99 solve, hedging off, one peer delayed",
                "parallel_s": round(tails["on"], 4),
                "parallel_scope": "p99 solve, 50 ms hedge deadline",
                "hedges_fired": hedges["on"],
                "speedup": round(tails["off"] / tails["on"], 2)
                if tails["on"]
                else None,
            }
        )
    finally:
        for server in servers:
            server.shutdown()
    return rows


def _connection_sweep(quick: bool) -> dict:
    """Hold ``target`` live connections on one event loop and ping them
    all concurrently; latency percentiles are per-ping under that load."""
    import asyncio
    import resource

    from repro.net import AsyncDualityClient, DualityServer

    target = 250 if quick else 1000
    wave = 200
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    needed = 4 * target + 256
    if soft < needed:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))
        except (ValueError, OSError):
            pass
        soft = resource.getrlimit(resource.RLIMIT_NOFILE)[0]
    if soft < needed:
        # Fit the sweep to the box instead of failing the whole bench.
        target = max(0, (soft - 256) // 4)
    if target <= 0:
        return {"target": 0, "skipped": "RLIMIT_NOFILE too low"}

    with DualityServer(method="fk-b", n_jobs=1) as server:
        host, port = server.address

        async def drive() -> dict:
            clients: list[AsyncDualityClient] = []
            latencies: list[float] = []
            start = time.perf_counter()
            while len(clients) < target:
                batch = [
                    AsyncDualityClient(host, port, timeout=600)
                    for _ in range(min(wave, target - len(clients)))
                ]
                await asyncio.gather(*(c.connect() for c in batch))
                clients.extend(batch)
            connect_s = time.perf_counter() - start

            async def timed_ping(client: AsyncDualityClient) -> None:
                ping_start = time.perf_counter()
                await client.ping()
                latencies.append(time.perf_counter() - ping_start)

            start = time.perf_counter()
            await asyncio.gather(*(timed_ping(c) for c in clients))
            ping_all_s = time.perf_counter() - start
            stats = await clients[0].stats()
            for index in range(0, len(clients), wave):
                await asyncio.gather(
                    *(c.close() for c in clients[index : index + wave])
                )
            latencies.sort()

            def pct(q: float) -> float:
                position = min(len(latencies) - 1, round(q * (len(latencies) - 1)))
                return latencies[position]

            return {
                "target": target,
                "sustained": stats["connections_open"],
                "connect_s": round(connect_s, 4),
                "ping_all_s": round(ping_all_s, 4),
                "ping_p50_ms": round(pct(0.50) * 1000, 2),
                "ping_p99_ms": round(pct(0.99) * 1000, 2),
            }

        return asyncio.run(drive())


def _git_label() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unversioned"


def append_trend(report: dict, trend_path: Path, label: str) -> None:
    """Append this run's summary to the per-PR history file.

    A corrupt or wrong-shaped history file must not discard a completed
    benchmark run: it is set aside with a warning and a fresh history is
    started.
    """
    history = []
    if trend_path.exists():
        try:
            history = json.loads(trend_path.read_text(encoding="utf-8"))
            if not isinstance(history, list):
                raise ValueError(f"expected a JSON list, got {type(history).__name__}")
        except (ValueError, OSError) as exc:
            backup = trend_path.with_suffix(".json.corrupt")
            trend_path.replace(backup)
            print(
                f"warning: unreadable trend history ({exc}); "
                f"moved to {backup} and starting fresh"
            )
            history = []
    entry = {
        "label": label,
        "generated_at": report["generated_at"],
        "python": report["python"],
        "quick": report["quick"],
        "engines": {
            f"{row['engine']}/{row['instance']}": row["speedup"]
            for row in report["engines"]
        },
        "itemsets": {
            f"{row['kernel']}/{row['instance']}": row["speedup"]
            for row in report["itemsets"]
        },
        "parallel": report["parallel"],
    }
    history.append(entry)
    trend_path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="output path (default: BENCH_core.json at the repo root)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweep for smoke runs"
    )
    parser.add_argument(
        "--skip-suites",
        action="store_true",
        help="skip the pytest E1/E9 wall-time runs",
    )
    parser.add_argument(
        "--trend",
        type=Path,
        default=REPO_ROOT / "BENCH_trend.json",
        help="history file to append to (default: BENCH_trend.json)",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="history entry label (default: the current git short hash)",
    )
    args = parser.parse_args(argv)

    report = {
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "quick": args.quick,
        "suites": {},
        "engines": [],
        "itemsets": [],
        "parallel": [],
    }

    if not args.skip_suites:
        for module in ("bench_e1_figure1.py", "bench_e9_itemsets.py"):
            print(f"running pytest {module} ...", flush=True)
            report["suites"][module.removesuffix(".py")] = run_pytest_suite(module)

    print("timing duality engines (before = frozenset, after = bitset) ...")
    report["engines"] = engine_rows(args.quick)
    print("timing itemset frequency kernels ...")
    report["itemsets"] = itemset_rows(args.quick)
    print("timing parallel subsystem (serial vs n_jobs=2 / racing) ...")
    report["parallel"] = parallel_rows(args.quick)
    print("timing verdict persistence (full rewrite vs journal flush) ...")
    report["parallel"] += store_rows(args.quick)
    print("timing learned engine selection (auto vs best single / portfolio) ...")
    report["parallel"] += auto_select_rows(args.quick)
    print("timing distributed sharding (2-peer fleet, hedge tail) ...")
    report["parallel"] += distributed_rows(args.quick)

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    append_trend(report, args.trend, args.label or _git_label())
    print(f"appended trend entry to {args.trend}")

    width = max(
        len(f"{r['engine']}/{r['instance']}") for r in report["engines"]
    )
    for r in report["engines"]:
        label = f"{r['engine']}/{r['instance']}"
        print(
            f"  {label:<{width}}  before {r['before_s']:8.4f}s"
            f"  after {r['after_s']:8.4f}s  x{r['speedup']}"
        )
    for r in report["itemsets"]:
        label = f"{r['kernel']}/{r['instance']}"
        print(
            f"  {label:<{width}}  before {r['before_s']:8.4f}s"
            f"  after {r['after_s']:8.4f}s  x{r['speedup']}"
        )
    for r in report["parallel"]:
        label = f"{r['kernel']}/{r['instance']}"
        print(
            f"  {label:<{width}}  serial {r['serial_s']:8.4f}s"
            f"  parallel {r['parallel_s']:8.4f}s  x{r['speedup']}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
