"""E17 — refs [41, 24] extension: model-based diagnosis via Dual.

* Reiter's hitting-set theorem holds on every injected circuit fault:
  HS-tree diagnoses = tr(minimal conflicts) = brute force;
* the Dual completeness check accepts exactly the full diagnosis sets
  (and refutes every one-short subset), across engines;
* the Greiner counterexample: Reiter's subset rule loses a diagnosis on
  non-minimal labels, the corrected tree does not;
* benchmarks: conflict learning, the HS-tree, and the Dual check.
"""

from __future__ import annotations

import pytest

from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.diagnosis import (
    CircuitDiagnosisProblem,
    full_adder,
    hs_tree_diagnoses,
    minimal_conflicts,
    minimal_conflicts_brute_force,
    minimal_diagnoses,
    one_bit_comparator,
    two_bit_adder,
    verify_diagnosis_completeness,
)
from repro.diagnosis.hstree import (
    greiner_counterexample,
    hs_tree_reiter_subset_rule,
)

from benchmarks.conftest import print_table


FAULT_SCENARIOS = [
    (
        "adder/x1-low",
        full_adder,
        {"a": 1, "b": 0, "cin": 0},
        {"x1": False},
    ),
    (
        "adder/o1-high",
        full_adder,
        {"a": 0, "b": 0, "cin": 0},
        {"o1": True},
    ),
    (
        "comparator/x-high",
        one_bit_comparator,
        {"a": 1, "b": 1},
        {"x": True},
    ),
    (
        "2bit/c0-low",
        two_bit_adder,
        {"a0": 1, "b0": 1, "a1": 0, "b1": 1, "cin": 0},
        {"c0": False},
    ),
    (
        "2bit/double-fault",
        two_bit_adder,
        {"a0": 1, "b0": 1, "a1": 1, "b1": 1, "cin": 0},
        {"c0": False, "x2": True},
    ),
]


def scenario_problem(maker, inputs, faults) -> CircuitDiagnosisProblem:
    return CircuitDiagnosisProblem.observe_fault(maker(), inputs, faults)


def faulty_scenarios():
    for name, maker, inputs, faults in FAULT_SCENARIOS:
        problem = scenario_problem(maker, inputs, faults)
        if problem.is_faulty_observation():
            yield name, maker, inputs, faults


def test_hitting_set_theorem_on_all_scenarios():
    rows = []
    for name, maker, inputs, faults in faulty_scenarios():
        conflicts = minimal_conflicts(scenario_problem(maker, inputs, faults))
        assert conflicts == minimal_conflicts_brute_force(
            scenario_problem(maker, inputs, faults)
        ), name
        tree, stats = hs_tree_diagnoses(scenario_problem(maker, inputs, faults))
        brute = minimal_diagnoses(
            scenario_problem(maker, inputs, faults), "brute-force"
        )
        assert tree == brute, name
        expected = transversal_hypergraph(conflicts).with_vertices(
            tree.vertices
        )
        assert tree == expected, name
        # the injected fault set is a hitting set, so some minimal
        # diagnosis sits inside it
        assert any(d <= set(faults) for d in tree.edges), name
        rows.append(
            (
                name,
                len(conflicts),
                len(tree),
                stats.nodes_expanded,
                stats.labels_reused,
            )
        )
    print_table(
        "E17: Reiter's theorem on injected circuit faults",
        ["scenario", "conflicts", "diagnoses", "tree nodes", "label reuse"],
        rows,
    )


@pytest.mark.parametrize("method", ("bm", "fk-b", "logspace", "tractable"))
def test_completeness_dual_check(method):
    for name, maker, inputs, faults in faulty_scenarios():
        problem = scenario_problem(maker, inputs, faults)
        conflicts = minimal_conflicts(problem)
        diagnoses = minimal_diagnoses(
            scenario_problem(maker, inputs, faults), "hstree"
        )
        assert verify_diagnosis_completeness(
            conflicts, diagnoses, method=method
        ).is_dual, name
        if len(diagnoses) > 1:
            partial = Hypergraph(
                list(diagnoses.edges)[:-1], vertices=diagnoses.vertices
            )
            refuted = verify_diagnosis_completeness(
                conflicts, partial, method=method
            )
            assert not refuted.is_dual, name


def test_greiner_correction_demonstration():
    problem_factory, provider_factory, expected = greiner_counterexample()
    buggy, stats = hs_tree_reiter_subset_rule(
        problem_factory(), conflict_provider=provider_factory()
    )
    assert stats.subset_rule_firings > 0
    assert set(buggy.edges) < set(expected.edges)
    sound, _ = hs_tree_diagnoses(
        problem_factory(), conflict_provider=provider_factory()
    )
    assert sound == expected


def test_benchmark_minimal_conflicts(benchmark):
    name, maker, inputs, faults = FAULT_SCENARIOS[0]

    def run():
        return minimal_conflicts(scenario_problem(maker, inputs, faults))

    conflicts = benchmark(run)
    assert len(conflicts) >= 1


def test_benchmark_hstree(benchmark):
    name, maker, inputs, faults = FAULT_SCENARIOS[3]

    def run():
        return hs_tree_diagnoses(scenario_problem(maker, inputs, faults))[0]

    diagnoses = benchmark(run)
    assert len(diagnoses) >= 1


def test_benchmark_completeness_check(benchmark):
    name, maker, inputs, faults = FAULT_SCENARIOS[3]
    problem = scenario_problem(maker, inputs, faults)
    conflicts = minimal_conflicts(problem)
    diagnoses = minimal_diagnoses(
        scenario_problem(maker, inputs, faults), "hstree"
    )
    result = benchmark(verify_diagnosis_completeness, conflicts, diagnoses)
    assert result.is_dual
