"""Market-basket border mining: Proposition 1.1 end to end.

The data-mining story from the paper's introduction: a retailer wants
the *maximal frequent itemsets* of a basket relation.  Computing IS⁺
alone admits no polynomial-delay enumeration (unless NP collapses), so
practical algorithms compute IS⁺ ∪ IS⁻ jointly, checking at each step —
via the ``Dual`` problem — whether the borders found so far are already
complete.

This example mines a synthetic basket relation with the
dualize-and-advance loop, shows the per-step duality checks, and
validates the [26] identity ``IS⁻ = tr(IS⁺ᶜ)`` on the result.

Run with ``python examples/market_basket_borders.py``.
"""

from __future__ import annotations

from repro._util import format_set
from repro.hypergraph import complement_family, transversal_hypergraph
from repro.itemsets import (
    decide_identification,
    enumerate_borders,
    frequency,
    levelwise_borders,
)
from repro.itemsets.datasets import market_basket


def main() -> None:
    relation = market_basket(
        n_items=9, n_rows=40, n_patterns=3, pattern_size=4, seed=2024
    )
    z = 6
    print(f"relation: {len(relation)} baskets over {len(relation.items)} items")
    print(f"threshold: frequent means support > {z} (the paper's strict convention)\n")

    # ------------------------------------------------------------------
    # Incremental enumeration with duality checks at every step
    # ------------------------------------------------------------------
    is_plus, is_minus, trace = enumerate_borders(relation, z, method="fk-b")
    print(f"dualize-and-advance finished after {trace.additions()} advances:")
    for kind, new_set, engine_nodes in trace.steps:
        print(
            f"  +{kind:<10} {format_set(new_set):<30} "
            f"(duality check explored {engine_nodes} subproblems)"
        )

    print(f"\nIS+ — {len(is_plus)} maximal frequent itemsets:")
    for u in is_plus.edges:
        print(f"  {format_set(u)}  support={frequency(relation, u)}")
    print(f"IS- — {len(is_minus)} minimal infrequent itemsets:")
    for u in is_minus.edges:
        print(f"  {format_set(u)}  support={frequency(relation, u)}")

    # ------------------------------------------------------------------
    # Cross-checks: levelwise miner and the [26] transversal identity
    # ------------------------------------------------------------------
    lv_plus, lv_minus = levelwise_borders(relation, z)
    assert (lv_plus, lv_minus) == (is_plus, is_minus)
    print("\nlevelwise (Mannila–Toivonen) agrees with the incremental miner")

    derived_minus = transversal_hypergraph(complement_family(is_plus))
    assert derived_minus == is_minus
    print("the [26] identity IS- = tr(IS+^c) holds on the mined borders")

    # ------------------------------------------------------------------
    # The identification question itself (Prop. 1.1), on partial borders
    # ------------------------------------------------------------------
    from repro.hypergraph import Hypergraph

    partial = Hypergraph(list(is_plus.edges)[:-1], vertices=relation.items)
    outcome = decide_identification(
        relation, z, is_minus, partial, method="logspace"
    )
    missing = outcome.new_maximal_frequent or outcome.new_minimal_infrequent
    print(
        "\nhiding one maximal frequent set and asking the paper's "
        "logspace engine:\n  complete?",
        outcome.complete,
        "— recovered border set:",
        format_set(missing),
    )


if __name__ == "__main__":
    main()
