"""Observability in one walkthrough: traces, metrics, timing capture.

The three layers of :mod:`repro.obs` on a live serving stack:

1. **tracing** — a traced :class:`EngineService` request: one
   ``trace_id`` through cache lookup, queue wait, and the worker-side
   solve (in another process), rendered as a span tree and exported
   as Chrome trace-event JSON,
2. **end-to-end over TCP** — a ``DualityClient(trace=True)`` against a
   live server: the client mints the trace id, the server's span tree
   comes back on the response and nests under the client edge span,
3. **metrics** — the server's unified registry scraped over the
   ``metrics`` wire op as Prometheus text exposition, and the per-op /
   per-origin accounting in ``stats``,
4. **timing capture** — a JSONL log of every computed solve with
   structural features, the raw material for learned engine selection.

Run me::

    PYTHONPATH=src python examples/obs_demo.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    threshold_dual_pair,
)
from repro.net import DualityClient, DualityServer
from repro.obs import (
    SpanContext,
    TraceSink,
    dump_chrome,
    format_tree,
    load_timings,
    new_trace_id,
    parse_exposition,
)
from repro.parallel import ResultCache
from repro.service import EngineService

workdir = Path(tempfile.mkdtemp(prefix="obs-demo-"))

# ---------------------------------------------------------------------------
# 1. A traced service request: one trace id into the worker and back
# ---------------------------------------------------------------------------

print("— a traced EngineService request —")
sink = TraceSink()
trace_id = new_trace_id()
with EngineService(method="fk-b", n_jobs=2, cache=ResultCache()) as service:
    ticket = service.submit(
        threshold_dual_pair(7, 4), trace=SpanContext(trace_id, None, sink)
    )
    response = ticket.result()
print(f"verdict: {response.result.verdict.value} (origin={response.origin})")
print(format_tree(sink.spans(trace_id)))
chrome_path = workdir / "service_trace.json"
dump_chrome(sink.spans(trace_id), chrome_path)
events = json.loads(chrome_path.read_text())["traceEvents"]
print(f"chrome export: {len(events)} events -> {chrome_path}\n")

# ---------------------------------------------------------------------------
# 2. End to end over TCP: client-minted ids, server spans merged under
#    the client edge
# ---------------------------------------------------------------------------

print("— tracing over the wire —")
instances = [
    threshold_dual_pair(6, 3),
    matching_dual_pair(3),
    hard_nondual_pair(3),
]
with DualityServer(method="fk-b", n_jobs=2, cache=ResultCache()) as server:
    with DualityClient(*server.address, trace=True) as client:
        responses = client.solve_many(instances)
        repeat = client.solve(*matching_dual_pair(3))  # a cache hit
        print(
            "verdicts:",
            ", ".join(r["verdict"] for r in responses),
            f"+ repeat (origin={repeat['origin']})",
        )
        print(format_tree(client.trace_sink.spans()))

    # ------------------------------------------------------------------
    # 3. Metrics: Prometheus exposition + per-op / per-origin stats
    # ------------------------------------------------------------------

    print("— metrics scrape —")
    with DualityClient(*server.address) as client:
        exposition = client.metrics()
        stats = client.stats()
    parsed = parse_exposition(exposition)  # validates as it parses
    for name in (
        "requests_total",
        "cache_hits_total",
        "solve_latency_seconds_count",
    ):
        print(f"  {name}: {parsed[name]}")
    print(f"  requests_by_op: {stats['requests_by_op']}")
    print(f"  responses_by_origin: {stats['responses_by_origin']}")
    print()

# ---------------------------------------------------------------------------
# 4. Timing capture: one featured JSONL row per computed solve
# ---------------------------------------------------------------------------

print("— timing capture —")
timings_path = workdir / "timings.jsonl"
with EngineService(method="fk-b", n_jobs=1, timings=timings_path) as service:
    for pair in instances:
        service.submit(pair).result()
rows = load_timings(timings_path)
print(f"{len(rows)} rows in {timings_path}:")
for row in rows:
    print(
        f"  engine={row['engine']} elapsed={row['elapsed_s'] * 1000:7.2f}ms "
        f"n={row['n_vertices']} |G|={row['g_edges']} |H|={row['h_edges']} "
        f"volume={row['volume']}"
    )
