"""The engine scheduler: warm workers, tickets, cached verdicts, JSON out.

PRs 3 and 5 in one walkthrough:

1. an :class:`EnginePool` with an explicit lifecycle — workers spawn
   once and answer several batches (``generations`` stays at 1),
2. an :class:`EngineService` session: submit/drain over the warm pool
   with a result cache in front, and JSON verdict lines,
3. a second service session over the same cache file — every answer is
   a cache hit, no worker ever runs,
4. sharded single-instance solving and recursive shard plans routed
   through the same persistent pool,
5. the PR-5 scheduler: tickets resolving out of submission order (a
   slow instance never delays a fast one) and cache hits resolving at
   submit time.

Run me::

    PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.duality import decide_duality
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    threshold_dual_pair,
)
from repro.parallel import decide_duality_parallel, solve_many
from repro.service import EnginePool, EngineService, response_to_json

# ---------------------------------------------------------------------------
# 1. One pool, many batches
# ---------------------------------------------------------------------------

print("— persistent EnginePool —")
with EnginePool(n_jobs=2) as pool:
    batches = [
        [matching_dual_pair(3), threshold_dual_pair(7, 4)],
        [hard_nondual_pair(3), matching_dual_pair(2)],
        [threshold_dual_pair(9, 5)],
    ]
    for i, pairs in enumerate(batches):
        items = solve_many(pairs, method="fk-b", pool=pool)
        verdicts = ", ".join(item.result.verdict.value for item in items)
        print(f"batch {i}: {verdicts}")
    print(
        f"worker generations: {pool.generations} "
        f"(3 batches, workers spawned once)"
    )

# ---------------------------------------------------------------------------
# 2 + 3. A service session, then a warm-cache replay session
# ---------------------------------------------------------------------------

print("\n— EngineService with a persistent cache —")
with tempfile.TemporaryDirectory() as tmp:
    cache_path = Path(tmp) / "verdicts.json"
    instance_dir = Path(tmp)
    for name, pair in {
        "m3": matching_dual_pair(3),
        "t74": threshold_dual_pair(7, 4),
        "bad": hard_nondual_pair(3),
    }.items():
        hgio.dump_many(pair, instance_dir / f"{name}.hg")

    with EngineService(method="bm", n_jobs=1, cache=cache_path) as service:
        for path in sorted(instance_dir.glob("*.hg")):
            service.submit(path)
        for response in service.drain():
            line = response_to_json(response)
            print(json.dumps({k: line[k] for k in ("source", "verdict", "cached")}))
        print(f"session 1 stats: {service.stats()['cache_misses']} misses")

    with EngineService(method="bm", n_jobs=1, cache=cache_path) as replay:
        for path in sorted(instance_dir.glob("*.hg")):
            replay.submit(path)
        responses = replay.drain()
        assert all(r.cached for r in responses)
        assert replay.pool.tasks_completed == 0
        print(
            f"session 2: {len(responses)} answers, all cache hits, "
            "no worker ran"
        )

# ---------------------------------------------------------------------------
# 4. Sharded solving through the same warm pool
# ---------------------------------------------------------------------------

print("\n— recursive shard plans over the warm pool —")
g, h = threshold_dual_pair(9, 5)
with EnginePool(n_jobs=2) as pool:
    for method in ("fk-b", "bm", "logspace"):
        sharded = decide_duality_parallel(g, h, method=method, pool=pool)
        serial = decide_duality(g, h, method=method)
        assert sharded.certificate == serial.certificate
        print(
            f"{method:<9} {sharded.verdict.value}  "
            f"shards={sharded.stats.extra['n_shards']}  "
            f"(identical certificate to serial)"
        )
    print(f"worker generations: {pool.generations}")

# ---------------------------------------------------------------------------
# 5. The concurrent scheduler: tickets complete out of order
# ---------------------------------------------------------------------------

print("\n— tickets: out-of-order completion, submission-order drain —")
from repro.parallel import ResultCache  # noqa: E402

completed: list[str] = []
with EngineService(method="fk-b", n_jobs=2, cache=ResultCache()) as service:
    slow = service.submit(threshold_dual_pair(12, 6))   # ~100x the fast one
    fast = service.submit(matching_dual_pair(3))
    slow.add_done_callback(lambda t: completed.append("slow"))
    fast.add_done_callback(lambda t: completed.append("fast"))
    # Each ticket is an int request id *and* a future:
    print(f"request ids: slow={int(slow)}, fast={int(fast)}")
    print(f"fast verdict: {fast.result().result.verdict.value}")
    responses = service.drain()                         # submission order
    assert [r.request_id for r in responses] == [slow, fast]
    print(f"completion order: {completed} (drain order: [slow, fast])")

    # A repeat of an answered instance resolves at submit time — no
    # drain, no worker run.
    solved_before = service.pool.tasks_completed
    hit = service.submit(matching_dual_pair(3), collect=False)
    assert hit.done() and hit.result().cached
    assert service.pool.tasks_completed == solved_before
    print("repeat instance: resolved at submit, straight from the cache")
