"""Parallel duality solving: sharding, portfolio racing, batch caching.

PR 2's subsystem in one walkthrough:

1. solve one instance with worker-pool sharding (``n_jobs``),
2. race an engine portfolio and inspect the per-engine timings,
3. stream a batch of ``.hg`` instance files through ``solve_many`` with
   a canonical-hash result cache, twice — the second pass is all hits.

Run me::

    PYTHONPATH=src python examples/parallel_batch_portfolio.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.duality import decide_duality
from repro.hypergraph import io as hgio
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    threshold_dual_pair,
)
from repro.parallel import ResultCache, race_portfolio, solve_many

# ---------------------------------------------------------------------------
# 1. Sharded solving: same verdict, same certificate, more cores
# ---------------------------------------------------------------------------

g, h = threshold_dual_pair(10, 5)
serial = decide_duality(g, h, method="fk-b")
sharded = decide_duality(g, h, method="fk-b", n_jobs=2)
print("— sharded fk-b —")
print(f"serial   : {serial.verdict.value} ({serial.stats.nodes} nodes)")
print(
    f"sharded  : {sharded.verdict.value} "
    f"({sharded.stats.extra['n_shards']} shards over "
    f"{sharded.stats.extra['n_jobs']} workers)"
)
assert sharded.certificate == serial.certificate

# ---------------------------------------------------------------------------
# 2. Portfolio racing: don't choose an engine, race them
# ---------------------------------------------------------------------------

print("\n— portfolio —")
result = race_portfolio(g, h, engines=("fk-b", "bm", "logspace"), n_jobs=1)
race = result.stats.extra["portfolio"]
print(f"winner: {race['winner']} (mode: {race['mode']})")
for engine, elapsed in race["timings_s"].items():
    shown = f"{elapsed * 1000:7.1f} ms" if elapsed is not None else "   (cancelled)"
    print(f"  {engine:<10} {shown}")

# ---------------------------------------------------------------------------
# 3. Batch front end with a persistent result cache
# ---------------------------------------------------------------------------

print("\n— batch + cache —")
with tempfile.TemporaryDirectory() as tmp:
    base = Path(tmp)
    for name, pair in {
        "matching-4": matching_dual_pair(4),
        "threshold-9-5": threshold_dual_pair(9, 5),
        "broken-3": hard_nondual_pair(3),
    }.items():
        hgio.dump_many(pair, base / f"{name}.hg")
    instance_files = sorted(base.glob("*.hg"))

    cache = ResultCache()
    for sweep in (1, 2):
        items = solve_many(instance_files, method="fk-b", n_jobs=1, cache=cache)
        print(f"sweep {sweep}:")
        for item in items:
            verdict = "dual" if item.is_dual else "NOT dual"
            note = "cached" if item.cached else f"{item.elapsed_s * 1000:.1f} ms"
            print(f"  {Path(item.source).name:<18} {verdict:<8} [{note}]")
    print(f"cache: {cache.hits} hits / {cache.misses} misses")

    # The cache persists: a JSON file keyed by canonical instance hashes.
    cache_file = base / "results.json"
    saved = cache.save(cache_file)
    reloaded = ResultCache.load(cache_file)
    print(f"persisted {saved} entries, reloaded {len(reloaded)}")
