"""The space/time spectrum of monotone dualization — the paper's theme.

The paper's research question is *space*: can ``Dual`` be decided in
polylogarithmic workspace?  This walkthrough places three concrete
algorithms from this repository on the space/time spectrum, on one
instance family:

1. **Berge multiplication** — one pass over the edges, but the whole
   intermediate transversal family lives in memory (exponential peak);
2. **DFS enumeration** (the ref [44] style) — polynomial working set
   (one partial transversal + stack), paying with tree-node
   recomputation;
3. **the paper's quadratic-logspace algorithm** — ``pathnode`` resolves
   any node of the Boros–Makino tree from ``O(log² n)`` metered bits of
   model state, paying with massive recomputation (Lemma 3.1's
   pipeline never stores intermediate outputs).

Run with ``python examples/space_time_tradeoffs.py``.
"""

from __future__ import annotations

import math

from repro.hypergraph.generators import matching, matching_dual_pair
from repro.hypergraph.dfs_enumeration import dfs_enumeration_stats
from repro.hypergraph.transversal import berge_peak_intermediate
from repro.duality import decide_duality
from repro.duality.logspace import (
    descriptor_bits,
    instance_size,
    model_space_bits,
)


def main() -> None:
    print("space/time spectrum on the matching family M_k")
    print("(the classical hard family for dualization algorithms)\n")

    header = (
        f"{'k':>2}  {'|tr|':>5}  {'Berge peak (sets)':>18}  "
        f"{'DFS peak (verts)':>17}  {'DFS nodes':>9}  "
        f"{'logspace bits':>13}  {'log2^2(n)':>9}"
    )
    print(header)
    for k in (3, 4, 5, 6, 7):
        g = matching(k)
        berge_peak = berge_peak_intermediate(g)
        dfs = dfs_enumeration_stats(g)
        g_side, h_side = matching_dual_pair(k)
        gg, hh = (
            (h_side, g_side)
            if len(h_side) > len(g_side)
            else (g_side, h_side)
        )
        bits = model_space_bits(gg, hh)
        n = instance_size(gg, hh)
        print(
            f"{k:>2}  {2 ** k:>5}  {berge_peak:>18}  "
            f"{dfs.peak_partial:>17}  {dfs.nodes:>9}  "
            f"{bits:>13}  {math.log2(n) ** 2:>9.1f}"
        )

    print(
        "\nreading the table:"
        "\n  * Berge's working set grows with the output (2^k sets);"
        "\n  * DFS holds ONE partial transversal (k vertices) — "
        "polynomial space,\n    more visited nodes;"
        "\n  * the paper's algorithm stores only a path descriptor and "
        "the Lemma 3.1\n    registers — the metered bits track "
        "O(log² n), far below both."
    )

    # The three deciders agree, of course — on a dual and a broken pair.
    g, h = matching_dual_pair(4)
    gg, hh = (h, g) if len(h) > len(g) else (g, h)
    verdicts = {
        method: decide_duality(gg, hh, method=method).is_dual
        for method in ("berge", "dfs-enum", "logspace")
    }
    print(f"\nagreement on M_4 (dual): {verdicts}")
    assert all(verdicts.values())

    from repro.hypergraph import Hypergraph

    broken = Hypergraph(list(hh.edges)[:-1], vertices=hh.vertices)
    verdicts = {
        method: decide_duality(gg, broken, method=method).is_dual
        for method in ("berge", "dfs-enum", "logspace")
    }
    print(f"agreement on M_4 (one transversal dropped): {verdicts}")
    assert not any(verdicts.values())

    bits = descriptor_bits(gg, hh)
    print(
        f"\na NOT-DUAL certificate is one path descriptor: {bits} bits "
        f"for this instance\n(Theorem 5.1's guess — the object that makes "
        "the problem sit in GC(log² n, ·))"
    )


if __name__ == "__main__":
    main()
