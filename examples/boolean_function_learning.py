"""Exact learning of monotone functions with membership queries (ref [26]).

The Section 1 application "learning monotone Boolean CNFs and DNFs with
membership queries": an unknown monotone function is reconstructed by
querying single points, with a ``Dual`` check deciding when the learned
borders are complete.  This walkthrough:

1. learns a hidden DNF and recovers both normal forms,
2. shows the per-iteration trace and the query bill,
3. learns the *infrequency* function of a market-basket relation —
   recovering the itemset borders ``IS⁺``/``IS⁻`` of Prop. 1.1 from
   membership queries alone,
4. cross-checks the learned CNF/DNF pair with the quadratic-logspace
   duality engine.

Run with ``python examples/boolean_function_learning.py``.
"""

from __future__ import annotations

from repro.dnf import parse_dnf
from repro.itemsets.borders import borders
from repro.itemsets.datasets import market_basket
from repro.learning import MembershipOracle, learn_monotone_function
from repro.logic import decide_cnf_dnf_equivalence


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Learn a hidden monotone DNF
    # ------------------------------------------------------------------
    hidden = parse_dnf("a b | b c d | a d")
    oracle = MembershipOracle.from_dnf(hidden)
    learned = learn_monotone_function(oracle, method="bm")
    print("hidden function:  ", hidden)
    print("learned DNF:      ", learned.dnf())
    print("learned CNF:      ", learned.cnf().to_text())
    assert learned.dnf().equivalent(hidden)

    # ------------------------------------------------------------------
    # 2. The trace: one border point per duality check
    # ------------------------------------------------------------------
    print("\nlearning trace (after the two seeds):")
    for kind, point, cost in learned.trace.steps:
        print(f"  +{kind:<10} {sorted(map(str, point))}  ({cost} queries)")
    border = len(learned.minimal_true_points) + len(learned.maximal_false_points)
    print(
        f"borders: {len(learned.minimal_true_points)} minimal true + "
        f"{len(learned.maximal_false_points)} maximal false points"
    )
    print(
        f"bill: {learned.queries} membership queries, "
        f"{learned.duality_checks} duality checks "
        f"(= border size {border} − seeds + final YES)"
    )

    # ------------------------------------------------------------------
    # 3. The Prop. 1.1 instance: learning itemset borders from queries
    # ------------------------------------------------------------------
    relation = market_basket(n_items=6, n_rows=30, seed=11)
    z = 9
    infreq_oracle = MembershipOracle.from_infrequency(relation, z)
    mined = learn_monotone_function(infreq_oracle)
    is_plus, is_minus = borders(relation, z)
    assert mined.minimal_true_points == is_minus
    assert mined.maximal_false_points == is_plus
    print(
        f"\nmarket basket ({len(relation)} rows, z = {z}): learned "
        f"IS⁻ ({len(is_minus)} sets) and IS⁺ ({len(is_plus)} sets) "
        f"with {mined.queries} frequency queries"
    )
    print("IS⁺ =", [sorted(e) for e in is_plus.edges][:4], "…")

    # ------------------------------------------------------------------
    # 4. The learned normal forms are duals — checked in quadratic logspace
    # ------------------------------------------------------------------
    check = decide_cnf_dnf_equivalence(
        learned.cnf(), learned.dnf(), method="logspace"
    )
    print("\nCNF ≡ DNF by the quadratic-logspace engine:", check.is_dual)
    assert check.is_dual


if __name__ == "__main__":
    main()
