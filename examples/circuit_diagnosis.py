"""Model-based diagnosis: find the broken gates of a ripple-carry adder.

Reproduces the Section 1 application chain "model-based diagnosis
[41, 24]" end to end:

1. build a 2-bit ripple-carry adder (10 gates) and inject a fault,
2. extract the minimal conflict sets from the consistency oracle,
3. compute the minimal diagnoses three independent ways — Reiter's
   HS-tree, minimal transversals of the conflicts (Reiter's theorem:
   ``diagnoses = tr(conflicts)``), and brute force,
4. re-check completeness of the diagnosis set as a literal ``Dual``
   instance with the paper's quadratic-logspace engine,
5. replay the Greiner–Smith–Wilkerson counterexample showing why
   Reiter's original subset-pruning rule needed their correction.

Run with ``python examples/circuit_diagnosis.py``.
"""

from __future__ import annotations

from repro.diagnosis import (
    CircuitDiagnosisProblem,
    hs_tree_diagnoses,
    minimal_conflicts,
    minimal_diagnoses,
    two_bit_adder,
    verify_diagnosis_completeness,
)
from repro.diagnosis.hstree import (
    greiner_counterexample,
    hs_tree_reiter_subset_rule,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A faulty adder: the carry gate c0 is stuck low
    # ------------------------------------------------------------------
    circuit = two_bit_adder()
    inputs = {"a0": 1, "b0": 1, "a1": 0, "b1": 1, "cin": 0}
    problem = CircuitDiagnosisProblem.observe_fault(
        circuit, inputs, actual_faults={"c0": False}
    )
    print("circuit:", circuit)
    print("applied inputs:   ", inputs)
    print("observed outputs: ", problem.observed_outputs)
    print("fault detected:   ", problem.is_faulty_observation())

    # ------------------------------------------------------------------
    # 2. Minimal conflicts (learned through the consistency oracle)
    # ------------------------------------------------------------------
    conflicts = minimal_conflicts(problem)
    print("\nminimal conflict sets:")
    for c in conflicts.edges:
        print("  ", sorted(c))
    print("consistency-oracle calls so far:", problem.oracle_calls)

    # ------------------------------------------------------------------
    # 3. Minimal diagnoses, three ways
    # ------------------------------------------------------------------
    by_tree, stats = hs_tree_diagnoses(problem)
    by_tr = minimal_diagnoses(problem, method="transversal")
    by_brute = minimal_diagnoses(problem, method="brute-force")
    assert by_tree == by_tr == by_brute
    print("\nminimal diagnoses (HS-tree = tr(conflicts) = brute force):")
    for d in by_tree.edges:
        print("  ", sorted(d))
    print(
        f"HS-tree work: {stats.nodes_expanded} nodes expanded, "
        f"{stats.labels_computed} conflicts computed, "
        f"{stats.labels_reused} labels reused"
    )
    injected = frozenset({"c0"})
    assert any(d <= injected for d in by_tree.edges)
    print("the injected fault {'c0'} is covered by a minimal diagnosis ✓")

    # ------------------------------------------------------------------
    # 4. "Are these all the diagnoses?" is the paper's Dual problem
    # ------------------------------------------------------------------
    for method in ("bm", "fk-b", "logspace"):
        check = verify_diagnosis_completeness(conflicts, by_tree, method=method)
        print(f"completeness via Dual engine {method!r}: {check.is_dual}")

    # ------------------------------------------------------------------
    # 5. Why the Greiner correction matters (ref [24])
    # ------------------------------------------------------------------
    print("\n--- the Greiner–Smith–Wilkerson pitfall ---")
    problem_factory, provider_factory, expected = greiner_counterexample()
    buggy, bug_stats = hs_tree_reiter_subset_rule(
        problem_factory(), conflict_provider=provider_factory()
    )
    sound, _ = hs_tree_diagnoses(
        problem_factory(), conflict_provider=provider_factory()
    )
    print("true minimal diagnoses:      ", sorted(sorted(d) for d in expected.edges))
    print("Reiter + subset rule finds:  ", sorted(sorted(d) for d in buggy.edges))
    print("sound HS-tree finds:         ", sorted(sorted(d) for d in sound.edges))
    print(
        f"subset rule fired {bug_stats.subset_rule_firings}× on non-minimal "
        "labels and lost a diagnosis — the correction of [24] in action"
    )
    assert sound == expected and buggy != expected


if __name__ == "__main__":
    main()
