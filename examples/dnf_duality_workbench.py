"""A DNF duality workbench: engines, certificates and classical families.

Plays with monotone-DNF duality the way a theoretician would: parse
formulas, dualise them, compare every engine's verdict and work counters
on the classical instance families (matchings, thresholds, self-dual
majorities), and inspect what happens at the degenerate corners
(constants TRUE/FALSE).

Run with ``python examples/dnf_duality_workbench.py``.
"""

from __future__ import annotations

from repro.dnf import MonotoneDNF, parse_dnf
from repro.hypergraph.generators import (
    matching_dual_pair,
    self_dual_majority,
    threshold_dual_pair,
)
from repro.duality import available_methods, decide_dnf_duality, decide_duality


def formula_playground() -> None:
    print("== formulas and their duals ==")
    for text in ("a b | c", "a | b | c", "a b c", "a b | b c | a c"):
        f = parse_dnf(text)
        d = f.dual_formula()
        marker = "  (self-dual!)" if d == f else ""
        print(f"  ({f.to_text()})^d = {d.to_text()}{marker}")

    # Duality of constants: FALSE^d = TRUE.
    false, true = MonotoneDNF(), MonotoneDNF([frozenset()])
    print(
        "  FALSE dual TRUE:",
        false.semantically_dual_to(true),
        "| TRUE dual TRUE:",
        true.semantically_dual_to(true),
    )


def engine_comparison() -> None:
    print("\n== engine comparison on classical families ==")
    workloads = [
        ("matching k=4", *matching_dual_pair(4)),
        ("threshold (7,4)", *threshold_dual_pair(7, 4)),
        ("majority n=5 (self-dual)", self_dual_majority(5), self_dual_majority(5)),
    ]
    methods = [m for m in available_methods() if m != "truth-table"]
    header = f"  {'instance':<26}" + "".join(f"{m:>13}" for m in methods)
    print(header)
    for name, g, h in workloads:
        cells = []
        for method in methods:
            result = decide_duality(g, h, method=method)
            work = result.stats.nodes
            cells.append(f"{'ok' if result.is_dual else 'NO'}/{work:>5}")
        print(f"  {name:<26}" + "".join(f"{c:>13}" for c in cells))
    print("  (cell = verdict / subproblems-or-nodes explored)")


def certificates_demo() -> None:
    print("\n== certificates on a non-dual DNF pair ==")
    f = parse_dnf("a b | c d")
    g_wrong = parse_dnf("a c | a d | b c")  # misses the term b d
    result = decide_dnf_duality(f, g_wrong, method="fk-b")
    print(f"  f = {f.to_text()}")
    print(f"  g = {g_wrong.to_text()}  (one prime implicant of f^d missing)")
    print(f"  verdict: {'dual' if result.is_dual else 'NOT dual'}")
    witness = result.certificate.witness
    print(f"  witness: {sorted(map(str, witness))} — {result.certificate.kind.value}")

    # The witness contains the missing minimal transversal:
    from repro.duality.witness import extract_missing_minimal_transversal

    missing = extract_missing_minimal_transversal(
        f.hypergraph(), g_wrong.hypergraph(), witness
    )
    print(f"  minimalised to the missing dual term: {sorted(map(str, missing))}")


def main() -> None:
    formula_playground()
    engine_comparison()
    certificates_demo()


if __name__ == "__main__":
    main()
