"""Inside the quadratic-logspace algorithm (Sections 3–5).

A guided tour of the paper's actual construction:

* Lemma 3.1 — self-composition without storing intermediates, with the
  space meter watching and the recomputation blow-up made visible;
* Lemma 4.1/4.2 — the ``next`` step and ``pathnode`` resolving path
  descriptors, checked against the materialised tree;
* Theorem 4.1 — ``decompose`` reproducing the tree from descriptors
  alone, plus the measured ``O(log² n)`` scaling of the metered space;
* Theorem 5.1 — a guessed certificate refuting duality.

Run with ``python examples/space_efficient_duality.py``.
"""

from __future__ import annotations

import math

from repro.hypergraph.generators import hard_nondual_pair, matching_dual_pair
from repro.machine import FunctionTransducer, self_composition
from repro.duality.boros_makino import tree_for
from repro.duality.guess_and_check import certificate_for, check_certificate
from repro.duality.logspace import (
    decide_logspace,
    decompose,
    descriptor_bits,
    instance_size,
    pathnode,
    pathnode_metered,
    pathnode_pipeline,
)


def lemma_31_demo() -> None:
    print("== Lemma 3.1: composition without intermediate storage ==")

    def rotate(text: str) -> str:
        return text[1:] + text[:1] if text else text

    # Recomputation costs ~L^stages stage runs — the faithful time price
    # of never storing intermediates — so the input stays short here.
    for stages in (2, 3, 4):
        pipeline = self_composition(FunctionTransducer(rotate, name="rot"), stages)
        out = pipeline.compute_recomputed("abcdef")
        report = pipeline.report()
        print(
            f"  rot^{stages}('abcdef') = {out!r}: peak {report['peak_bits']} bits, "
            f"{report['stage_invocations']} stage invocations "
            f"(recomputation is the price of the space bound)"
        )


def section_4_demo() -> None:
    print("\n== Section 4: pathnode and decompose ==")
    g, h = matching_dual_pair(3)
    g, h = (h, g) if len(h) > len(g) else (g, h)
    tree = tree_for(g, h)
    print(
        f"  instance: |V|={len(g.vertices)}, |G|={len(g)}, |H|={len(h)}; "
        f"tree has {tree.node_count()} nodes, depth {tree.depth()}"
    )

    # Resolve every tree label through pathnode and compare.
    agreements = sum(
        pathnode(g, h, node.attrs.label) == node.attrs for node in tree.nodes()
    )
    print(f"  pathnode agrees with the built tree on {agreements}/{tree.node_count()} labels")

    # The metered run: the paper's O(log² n) register budget.
    deepest = max((n.attrs for n in tree.nodes()), key=lambda a: a.depth)
    _, meter = pathnode_metered(g, h, deepest.label)
    n = instance_size(g, h)
    print(
        f"  deepest path {list(deepest.label)}: peak {meter.peak_bits} metered bits "
        f"(log2^2(n) = {math.log2(n) ** 2:.0f} for n = {n})"
    )

    # The same resolution through the genuine recomputation pipeline.
    _, pipeline = pathnode_pipeline(g, h, deepest.label)
    print(
        f"  pipeline variant: peak {pipeline.meter.peak_bits} bits, "
        f"{pipeline.invocations} stage invocations"
    )

    out = decompose(g, h)
    print(
        f"  decompose lists {len(out['vertices'])} vertices and "
        f"{len(out['edges'])} edges — identical to the built tree"
    )


def scaling_demo() -> None:
    print("\n== Theorem 4.1: measured space vs log²n ==")
    print(f"  {'k':>3} {'n':>6} {'peak bits':>10} {'log2^2(n)':>10}")
    for k in (2, 3, 4, 5, 6):
        g, h = matching_dual_pair(k)
        g, h = (h, g) if len(h) > len(g) else (g, h)
        result = decide_logspace(g, h)
        n = instance_size(g, h)
        print(
            f"  {k:>3} {n:>6} {result.stats.peak_space_bits:>10} "
            f"{math.log2(n) ** 2:>10.1f}"
        )


def theorem_51_demo() -> None:
    print("\n== Theorem 5.1: guess-and-check certificates ==")
    g, h = hard_nondual_pair(3)
    g, h = (h, g) if len(h) > len(g) else (g, h)
    pi = certificate_for(g, h)
    print(
        f"  non-dual instance: certificate descriptor {list(pi)} "
        f"({descriptor_bits(g, h)} guessable bits)"
    )
    print(f"  checker accepts it: {check_certificate(g, h, pi)}")
    print(f"  checker rejects a wrong guess (42,): {check_certificate(g, h, (42,))}")

    g2, h2 = matching_dual_pair(3)
    g2, h2 = (h2, g2) if len(h2) > len(g2) else (g2, h2)
    print(f"  dual instance has no certificate: {certificate_for(g2, h2)}")


def main() -> None:
    lemma_31_demo()
    section_4_demo()
    scaling_demo()
    theorem_51_demo()


if __name__ == "__main__":
    main()
