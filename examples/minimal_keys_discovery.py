"""Key discovery on relational instances: Proposition 1.2 end to end.

The "additional key for instance" problem: a profiler has found some
minimal keys of a table and wants to know whether more exist — the
paper notes this is logspace-equivalent to ``Dual`` and of renewed
interest for Big-Data table analysis.

This example profiles a small employee table, discovers all minimal keys
incrementally via duality checks, cross-validates against the
difference-hypergraph characterisation, and finishes with an Armstrong
relation for an FD schema — the companion construction from the same
problem family ([7, 23, 6]).

Run with ``python examples/minimal_keys_discovery.py``.
"""

from __future__ import annotations

from repro._util import format_set
from repro.hypergraph import Hypergraph
from repro.keys import (
    FDSchema,
    RelationalInstance,
    armstrong_relation,
    decide_additional_key,
    difference_hypergraph,
    enumerate_minimal_keys_incrementally,
    fd,
    minimal_keys,
    satisfied_closure_matches,
)


def main() -> None:
    employees = RelationalInstance(
        [
            {"emp_id": 1, "email": "ada@x",  "dept": "db",  "desk": 101, "badge": "A1"},
            {"emp_id": 2, "email": "bob@x",  "dept": "db",  "desk": 102, "badge": "B7"},
            {"emp_id": 3, "email": "cyn@x",  "dept": "ml",  "desk": 101, "badge": "C3"},
            {"emp_id": 4, "email": "dan@x",  "dept": "ml",  "desk": 103, "badge": "A1"},
            {"emp_id": 5, "email": "eve@x",  "dept": "ops", "desk": 102, "badge": "B7"},
        ]
    )
    print(f"relation: {len(employees)} tuples over {employees.attributes}\n")

    # ------------------------------------------------------------------
    # The difference hypergraph and its minimal transversals = keys
    # ------------------------------------------------------------------
    diff = difference_hypergraph(employees)
    print(f"difference hypergraph: {len(diff)} minimal difference sets")
    for edge in diff.edges:
        print(f"  {format_set(edge)}")

    keys = minimal_keys(employees)
    print(f"\nminimal keys = tr(min(D(R))) — {len(keys)} of them:")
    for key in keys.edges:
        print(f"  {format_set(key)}")

    # ------------------------------------------------------------------
    # Incremental discovery via the additional-key oracle (Prop. 1.2)
    # ------------------------------------------------------------------
    print("\nincremental discovery via Dual (engine: bm):")
    discovered = enumerate_minimal_keys_incrementally(employees, method="bm")
    for index, key in enumerate(discovered, start=1):
        print(f"  key #{index}: {format_set(key)}")
    assert set(discovered) == set(keys.edges)

    partial = Hypergraph(discovered[:1], vertices=employees.attributes)
    outcome = decide_additional_key(employees, partial, method="logspace")
    print(
        "\nknowing only the first key, the paper's logspace engine says "
        f"additional keys exist: {outcome.exists}; witness key: "
        f"{format_set(outcome.new_key)}"
    )

    # ------------------------------------------------------------------
    # Armstrong relation for an FD schema (same problem family)
    # ------------------------------------------------------------------
    schema = FDSchema(
        ["emp_id", "email", "dept", "desk"],
        [
            fd({"emp_id"}, {"email", "dept", "desk"}),
            fd({"email"}, {"emp_id"}),
            fd({"desk"}, {"dept"}),
        ],
    )
    arm = armstrong_relation(schema)
    print(
        f"\nArmstrong relation for the FD schema: {len(arm)} tuples; "
        "satisfies exactly the implied FDs:",
        satisfied_closure_matches(arm, schema),
    )
    print("its minimal keys:", [format_set(k) for k in minimal_keys(arm).edges])
    print("schema candidate keys:", [format_set(k) for k in schema.candidate_keys().edges])


if __name__ == "__main__":
    main()
