"""Inverse frequent-itemset mining: design data with prescribed borders.

Section 6 of the paper points at inverse frequent itemset mining
(Saccà–Serra) as a related problem.  This example runs the direction
data engineers actually use for test-data generation: *choose* the
maximal frequent family, synthesise a relation realising it exactly,
and confirm — via the [26] bridge and the identification machinery —
that the constructed dataset has precisely the prescribed borders.

Run with ``python examples/inverse_border_design.py``.
"""

from __future__ import annotations

from repro._util import format_set
from repro.hypergraph import Hypergraph
from repro.itemsets import (
    decide_identification,
    expected_minimal_infrequent,
    levelwise_borders,
    mine_rules,
    realize_maximal_frequent,
    verify_realization,
)


def main() -> None:
    items = {"bread", "milk", "eggs", "jam", "tea"}
    prescribed = Hypergraph(
        [
            {"bread", "milk", "eggs"},
            {"bread", "jam"},
            {"milk", "tea"},
        ],
        vertices=items,
    )
    z = 2
    print("prescribed maximal frequent family IS+:")
    for edge in prescribed.edges:
        print(f"  {format_set(edge)}")

    # ------------------------------------------------------------------
    # Synthesis and verification
    # ------------------------------------------------------------------
    relation = realize_maximal_frequent(prescribed, z=z, padding_rows=3)
    print(
        f"\nsynthesised relation: {len(relation)} rows over "
        f"{len(relation.items)} items (z = {z}, strict)"
    )
    assert verify_realization(relation, z, prescribed)
    print("exhaustive check: IS+(M, z) equals the prescription")

    predicted_minus = expected_minimal_infrequent(prescribed)
    is_plus, is_minus = levelwise_borders(relation, z)
    assert is_plus == prescribed.with_vertices(relation.items)
    assert is_minus == predicted_minus.with_vertices(relation.items)
    print("the [26] prediction IS- = tr(IS+^c) matches the mined border:")
    for edge in is_minus.edges:
        print(f"  {format_set(edge)}")

    # ------------------------------------------------------------------
    # The identification question on the designed data
    # ------------------------------------------------------------------
    outcome = decide_identification(relation, z, is_minus, is_plus, method="fk-b")
    print(f"\nidentification (Prop. 1.1) confirms completeness: {outcome.complete}")

    # ------------------------------------------------------------------
    # Downstream: association rules of the designed dataset
    # ------------------------------------------------------------------
    rules = mine_rules(relation, z, min_confidence=0.8)
    print(f"\ntop association rules (confidence ≥ 0.8): {min(5, len(rules))} of {len(rules)}")
    for rule in rules[:5]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
