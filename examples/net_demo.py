"""The TCP front end: one warm server, many concurrent clients.

The network subsystem in one walkthrough:

1. a :class:`DualityServer` (the asyncio event-loop server — every
   connection is a coroutine, not a thread) on a loopback port, one
   warm :class:`EnginePool` and one crash-safe result cache shared by
   every connection,
2. several concurrent :class:`DualityClient` sessions shipping
   instances inline through the lossless codec (no shared filesystem
   needed), verdicts bit-for-bit identical to serial ``decide_duality``,
3. per-request engine overrides and a pipelined ``solve_many`` batch,
4. the cache answering repeats across *different* clients, and
5. a graceful ``shutdown`` request: in-flight work drains, the cache is
   flushed atomically, the pool closes.

Run me::

    PYTHONPATH=src python examples/net_demo.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.duality import decide_duality
from repro.hypergraph.generators import (
    hard_nondual_pair,
    matching_dual_pair,
    threshold_dual_pair,
)
from repro.net import DualityClient, DualityServer

INSTANCES = [
    ("matching-3", *matching_dual_pair(3)),
    ("threshold-7-4", *threshold_dual_pair(7, 4)),
    ("hard-nondual-3", *hard_nondual_pair(3)),
]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "net-cache.json"

        print("== one server, one warm pool, one crash-safe cache ==")
        with DualityServer(method="fk-b", cache=cache_path) as server:
            host, port = server.address
            print(f"serving on {host}:{port}")

            # -- several clients at once, each checking its verdicts ----
            def one_client(order: int) -> None:
                with DualityClient(host, port) as client:
                    for name, g, h in INSTANCES[order:] + INSTANCES[:order]:
                        response = client.solve(g, h)
                        reference = decide_duality(g, h, method="fk-b")
                        agree = response["dual"] == reference.is_dual
                        print(
                            f"  client {order}: {name:<16} dual={response['dual']!s:<5} "
                            f"cached={response['cached']!s:<5} serial-agrees={agree}"
                        )

            threads = [
                threading.Thread(target=one_client, args=(order,))
                for order in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            # -- per-request engine override and a pipelined batch ------
            with DualityClient(host, port) as client:
                name, g, h = INSTANCES[0]
                bm = client.solve(g, h, method="bm")
                print(f"override: {name} via {bm['method']} -> dual={bm['dual']}")
                batch = client.solve_many([(g, h) for _n, g, h in INSTANCES])
                print(f"solve_many: {[r['dual'] for r in batch]}")
                stats = client.stats()
                print(
                    f"server stats: requests={stats['requests_served']} "
                    f"cache hits/misses={stats['cache_hits']}/{stats['cache_misses']} "
                    f"pool generations={stats['pool_generations']}"
                )
                client.shutdown_server()
            server.wait()
        print(f"shut down gracefully; cache on disk: {cache_path.exists()}")

        print("\n== a second server generation over the same cache ==")
        with DualityServer(method="fk-b", cache=cache_path) as server:
            with DualityClient(*server.address) as client:
                for name, g, h in INSTANCES:
                    response = client.solve(g, h)
                    print(f"  {name:<16} cached={response['cached']}")


if __name__ == "__main__":
    main()
