"""Quickstart: monotone duality in five minutes.

Walks through the library's core loop:

1. build hypergraphs / monotone DNFs,
2. compute minimal transversals,
3. decide duality with several engines — including the paper's
   quadratic-logspace algorithm — and inspect certificates,
4. peek at the Boros–Makino decomposition tree behind the answer.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.dnf import parse_dnf
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.duality import decide_duality, explain
from repro.duality.boros_makino import tree_for
from repro.duality.logspace import descriptor_bits, pathnode


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Hypergraphs and their minimal transversals
    # ------------------------------------------------------------------
    g = Hypergraph([{0, 1}, {2, 3}], vertices=range(4))
    tr_g = transversal_hypergraph(g)
    print("G      =", g)
    print("tr(G)  =", tr_g)

    # ------------------------------------------------------------------
    # 2. Duality: H = tr(G)?
    # ------------------------------------------------------------------
    result = decide_duality(g, tr_g, method="bm")
    print("\nBoros–Makino verdict:", explain(g, tr_g, result))

    # Break the pair and look at the certificate.
    broken = Hypergraph(list(tr_g.edges)[:-1], vertices=tr_g.vertices)
    refuted = decide_duality(g, broken, method="logspace")
    print("after dropping one transversal:", explain(g, broken, refuted))
    print("fail-leaf path descriptor:", refuted.certificate.path)
    print(
        "metered model space:",
        refuted.stats.peak_space_bits,
        "bits (the paper's O(log² n) object)",
    )

    # ------------------------------------------------------------------
    # 3. The same thing in DNF clothing
    # ------------------------------------------------------------------
    f = parse_dnf("a b | b c | a c")  # 2-out-of-3 majority
    print("\nf       =", f.to_text())
    print("f^d     =", f.dual_formula().to_text(), "(self-dual)")
    print("dual to itself?", f.semantically_dual_to(f.dual_formula()))

    # ------------------------------------------------------------------
    # 4. The decomposition tree (Section 2) and pathnode (Section 4)
    # ------------------------------------------------------------------
    g2, h2 = tr_g, g  # paper convention: |H| <= |G|
    tree = tree_for(g2, h2)
    print(
        f"\nT(G,H): {tree.node_count()} nodes, depth {tree.depth()} "
        f"(bound: log2|H| = {max(1, len(h2)).bit_length() - 1}), "
        f"max branching {tree.max_branching()}"
    )
    print(
        "a path descriptor costs",
        descriptor_bits(g2, h2),
        "bits; resolving the root via pathnode:",
    )
    root = pathnode(g2, h2, ())
    print("  pathnode(()) ->", root.mark.value, "scope size", len(root.scope))

    for method in ("truth-table", "transversal", "fk-a", "fk-b", "bm",
                   "logspace", "guess-check"):
        verdict = decide_duality(g, tr_g, method=method)
        print(f"  engine {method:<12} says: {'dual' if verdict.is_dual else 'NOT dual'}")


if __name__ == "__main__":
    main()
