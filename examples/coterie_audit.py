"""Auditing quorum systems: Proposition 1.3 end to end.

A distributed database replicates over a handful of sites and wants a
quorum system (coterie) for updates [35].  Dominated coteries are
strictly worse — some other coterie is available whenever they are, and
more.  Prop. 1.3: a coterie is non-dominated iff it equals its own
minimal-transversal family, i.e. iff it is *self-dual* — one more face
of the ``Dual`` problem.

This example audits the classical constructions, exhibits an explicit
dominating coterie for the dominated ones, and quantifies the damage
with exact availability numbers.

Run with ``python examples/coterie_audit.py``.
"""

from __future__ import annotations

from repro._util import format_set
from repro.coteries import (
    availability,
    coterie_from_votes,
    dominating_coterie,
    grid_coterie,
    majority_coterie,
    singleton_coterie,
    tree_coterie,
    wheel_coterie,
)


def main() -> None:
    systems = [
        ("majority(5)", majority_coterie(5)),
        ("singleton(5)", singleton_coterie(5)),
        ("wheel(5)", wheel_coterie(5)),
        ("tree(depth 3)", tree_coterie(3)),
        ("grid(2x2)", grid_coterie(2, 2)),
        ("votes a:2 b:1 c:1", coterie_from_votes({"a": 2, "b": 1, "c": 1})),
    ]

    print(f"{'coterie':<20} {'quorums':>7} {'ND?':>5}   A(p=0.9)")
    print("-" * 50)
    for name, coterie in systems:
        nd = coterie.is_nondominated(method="bm")
        avail = availability(coterie, 0.9)
        print(f"{name:<20} {len(coterie):>7} {'yes' if nd else 'NO':>5}   {avail:.4f}")

    # ------------------------------------------------------------------
    # Repairing a dominated coterie
    # ------------------------------------------------------------------
    grid = grid_coterie(2, 2)
    print("\nthe 2x2 grid coterie is dominated; its quorums:")
    for q in grid.quorums:
        print(f"  {format_set(q)}")
    better = dominating_coterie(grid, method="logspace")
    print("a dominating coterie found via the logspace engine's witness:")
    for q in better.quorums:
        print(f"  {format_set(q)}")
    for p in (0.5, 0.7, 0.9):
        print(
            f"  availability at p={p}: grid {availability(grid, p):.4f}  "
            f"-> dominating {availability(better, p):.4f}"
        )
    assert better.dominates(grid)
    assert better.is_nondominated() or True  # may itself be improvable

    # ------------------------------------------------------------------
    # The self-duality statement, explicitly
    # ------------------------------------------------------------------
    maj = majority_coterie(5)
    result = maj.self_duality_result(method="guess-check")
    print(
        "\nmajority(5) self-duality via guess-and-check:",
        "tr(H) = H" if result.is_dual else "tr(H) != H",
        f"(guessed {result.stats.guessed_bits} certificate bits)",
    )


if __name__ == "__main__":
    main()
