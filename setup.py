"""Setup shim: lets ``pip install -e .`` work offline via the legacy path.

The environment has no network and no ``wheel`` package, so PEP 517
editable wheels cannot be built; ``pip install -e . --no-use-pep517
--no-build-isolation`` (or ``python setup.py develop``) uses this shim
instead.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
