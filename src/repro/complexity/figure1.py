"""Renderer that regenerates Figure 1 from the verified lattice.

The output is a fixed-layout text diagram matching the paper's figure —
ascending lines are inclusions — derived from
:mod:`repro.complexity.classes`, plus a tabular form listing every edge
with its justification.  Experiment E1 asserts the rendered structure
and the lattice's reachability agree with the paper's reading.
"""

from __future__ import annotations

from repro.complexity.classes import ClassLattice, default_lattice

_DIAGRAM = r"""
                         PSPACE
                        /      \
                      NP        \
                      |          \
          GC(log2n,PTIME)=B2P   DSPACE[log2n]
                      \          /
         PTIME         \        /
              \         \      /
               \   GC(log2n,[[LOGSPACEpol]]log)   <-- Dual (Thm 5.1)
                \         |
                 \  GC(log2n,LOGSPACE)            <-- conjecture (Sec. 6)
                  \       |
                   LOGSPACE
"""


def render_figure1(lattice: ClassLattice | None = None) -> str:
    """The Figure 1 diagram with the paper's annotations.

    The drawing is static (layout is aesthetic), but the function
    verifies it against the lattice before returning: every edge drawn
    corresponds to a recorded inclusion and vice versa, so the rendering
    cannot drift from the verified structure.
    """
    lattice = lattice or default_lattice()
    if not lattice.is_dag():
        raise ValueError("inclusion structure is not acyclic")
    drawn_edges = {
        ("LOGSPACE", "GC_LOG2_LOGSPACE"),
        ("GC_LOG2_LOGSPACE", "GC_LOG2_ITLOGSPACE"),
        ("GC_LOG2_ITLOGSPACE", "DSPACE_LOG2"),
        ("GC_LOG2_ITLOGSPACE", "BETA2P"),
        ("LOGSPACE", "PTIME"),
        ("PTIME", "BETA2P"),
        ("BETA2P", "NP"),
        ("NP", "PSPACE"),
        ("DSPACE_LOG2", "PSPACE"),
    }
    recorded = {(inc.lower, inc.upper) for inc in lattice.inclusions}
    if drawn_edges != recorded:
        raise ValueError(
            "rendered figure out of sync with the verified lattice: "
            f"missing {recorded - drawn_edges}, extra {drawn_edges - recorded}"
        )
    return _DIAGRAM


def figure1_edge_table(lattice: ClassLattice | None = None) -> list[dict]:
    """Every figure edge with display names and its justification."""
    lattice = lattice or default_lattice()
    return [
        {
            "lower": lattice.classes[inc.lower].display,
            "upper": lattice.classes[inc.upper].display,
            "reason": inc.reason,
        }
        for inc in lattice.inclusions
    ]


def figure1_dual_annotations(lattice: ClassLattice | None = None) -> list[dict]:
    """Which classes contain Dual/co-Dual and by which result."""
    lattice = lattice or default_lattice()
    return [
        {
            "class": c.display,
            "contains_dual": c.contains_dual,
            "reference": c.dual_reference,
        }
        for c in lattice.classes.values()
        if c.contains_dual or c.dual_reference
    ]


def figure1_report(lattice: ClassLattice | None = None) -> str:
    """The full regenerated artefact: diagram + edge table + annotations."""
    lattice = lattice or default_lattice()
    lines = [render_figure1(lattice).rstrip(), "", "Inclusions (ascending lines):"]
    for row in figure1_edge_table(lattice):
        lines.append(f"  {row['lower']} ⊆ {row['upper']}  — {row['reason']}")
    lines.append("")
    lines.append("Dual membership:")
    for row in figure1_dual_annotations(lattice):
        marker = "∈" if row["contains_dual"] else "∈? (conjectured)"
        lines.append(f"  Dual {marker} {row['class']}  — {row['reference']}")
    lines.append("")
    lines.append("Key open separations drawn in the figure:")
    for a, b in (("DSPACE_LOG2", "BETA2P"), ("DSPACE_LOG2", "PTIME")):
        if lattice.incomparable(a, b):
            lines.append(
                f"  {lattice.classes[a].display} vs "
                f"{lattice.classes[b].display}: incomparable in the figure"
            )
    return "\n".join(lines) + "\n"
