"""Complexity-theoretic artefacts: Figure 1's lattice and the χ(n) bounds."""

from repro.complexity.bounds import (
    chi,
    chi_asymptotic,
    chi_table,
    fk_time_bound,
    fk_time_bound_log,
    guess_bits_bound,
    quadratic_logspace_bits,
    quasi_polynomial_exponent,
)
from repro.complexity.classes import (
    CLASSES,
    INCLUSIONS,
    ClassLattice,
    ComplexityClass,
    Inclusion,
    default_lattice,
)
from repro.complexity.figure1 import (
    figure1_dual_annotations,
    figure1_edge_table,
    figure1_report,
    render_figure1,
)

__all__ = [
    "CLASSES",
    "INCLUSIONS",
    "ClassLattice",
    "ComplexityClass",
    "Inclusion",
    "chi",
    "chi_asymptotic",
    "chi_table",
    "default_lattice",
    "figure1_dual_annotations",
    "figure1_edge_table",
    "figure1_report",
    "fk_time_bound",
    "fk_time_bound_log",
    "guess_bits_bound",
    "quadratic_logspace_bits",
    "quasi_polynomial_exponent",
    "render_figure1",
]
