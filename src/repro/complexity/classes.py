"""The complexity-class lattice of Figure 1, as a verified DAG.

Figure 1 of the paper relates the classes around the two new upper
bounds for ``Dual``.  "Set-inclusion is visualized by ascending lines"
— this module encodes each drawn line as a directed edge with the
*reason* it holds (theorem number or standard fact), exposes reachability
(= derivable inclusion) queries, and records which classes contain
``Dual``/``co-Dual`` by the paper's results.

Classes (bottom to top of the figure)::

    LOGSPACE
    GC(log²n, LOGSPACE)              (conjectured home of Dual, §6)
    GC(log²n, [[LOGSPACE_pol]]^log)  (Theorem 5.1 — the tightest bound)
    PTIME
    DSPACE[log²n]                    (Theorem 4.1 / Corollary 4.1)
    GC(log²n, PTIME) = β₂P           (Eiter–Gottlob–Makino / K–S)
    NP
    PSPACE

The DAG is *not* a total order — the figure's whole point is that
``DSPACE[log²n]`` and ``β₂P`` are most likely incomparable, with the new
class below both.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ComplexityClass:
    """A named complexity class with its description and role in the paper."""

    key: str
    display: str
    description: str
    contains_dual: bool = False
    dual_reference: str = ""


@dataclass(frozen=True)
class Inclusion:
    """A drawn (ascending) line of Figure 1: ``lower ⊆ upper``, with reason."""

    lower: str
    upper: str
    reason: str


CLASSES: tuple[ComplexityClass, ...] = (
    ComplexityClass(
        "LOGSPACE",
        "LOGSPACE",
        "deterministic logarithmic space",
    ),
    ComplexityClass(
        "GC_LOG2_LOGSPACE",
        "GC(log²n, LOGSPACE)",
        "guess O(log² n) bits, check in logspace",
        contains_dual=False,
        dual_reference="conjectured home of Dual (Section 6)",
    ),
    ComplexityClass(
        "GC_LOG2_ITLOGSPACE",
        "GC(log²n, [[LOGSPACE_pol]]^log)",
        "guess O(log² n) bits, check by a log-fold self-composition of a "
        "poly-size-intermediate logspace function followed by a logspace test",
        contains_dual=True,
        dual_reference="Theorem 5.1",
    ),
    ComplexityClass(
        "PTIME",
        "PTIME",
        "deterministic polynomial time",
    ),
    ComplexityClass(
        "DSPACE_LOG2",
        "DSPACE[log²n]",
        "deterministic quadratic logspace",
        contains_dual=True,
        dual_reference="Theorem 4.1 / Corollary 4.1",
    ),
    ComplexityClass(
        "BETA2P",
        "GC(log²n, PTIME) = β₂P",
        "polynomial time with O(log² n) nondeterministic bits",
        contains_dual=True,
        dual_reference="co-Dual ∈ β₂P: Eiter–Gottlob–Makino [9]; "
        "Kavvadias–Stavropoulos [34]",
    ),
    ComplexityClass(
        "NP",
        "NP",
        "nondeterministic polynomial time",
        contains_dual=True,
        dual_reference="via β₂P ⊆ NP (co-Dual)",
    ),
    ComplexityClass(
        "PSPACE",
        "PSPACE",
        "polynomial space",
        contains_dual=True,
        dual_reference="via DSPACE[log²n] ⊆ PSPACE",
    ),
)

INCLUSIONS: tuple[Inclusion, ...] = (
    Inclusion(
        "LOGSPACE",
        "GC_LOG2_LOGSPACE",
        "trivial: guess nothing",
    ),
    Inclusion(
        "GC_LOG2_LOGSPACE",
        "GC_LOG2_ITLOGSPACE",
        "LOGSPACE ⊆ [[LOGSPACE_pol]]^log (one composition step)",
    ),
    Inclusion(
        "GC_LOG2_ITLOGSPACE",
        "DSPACE_LOG2",
        "Theorem 5.2 (first inclusion): enumerate guesses re-using space; "
        "Lemma 3.1 bounds the checker",
    ),
    Inclusion(
        "GC_LOG2_ITLOGSPACE",
        "BETA2P",
        "Theorem 5.2 (second inclusion): [[LOGSPACE_pol]]^log ⊆ PTIME",
    ),
    Inclusion(
        "LOGSPACE",
        "PTIME",
        "standard: DSPACE[log n] ⊆ DTIME[poly]",
    ),
    Inclusion(
        "PTIME",
        "BETA2P",
        "trivial: guess nothing",
    ),
    Inclusion(
        "BETA2P",
        "NP",
        "O(log² n) guessed bits are polynomially many",
    ),
    Inclusion(
        "NP",
        "PSPACE",
        "standard: NP ⊆ PSPACE",
    ),
    Inclusion(
        "DSPACE_LOG2",
        "PSPACE",
        "standard: log² n ≤ poly(n) space",
    ),
)


class ClassLattice:
    """Reachability structure over the Figure 1 classes.

    ``includes(a, b)`` answers "is ``a ⊆ b`` derivable from the drawn
    lines?" via transitive closure.  The lattice also knows which nodes
    the paper places ``Dual`` in, so experiments can re-derive the
    figure's annotations.
    """

    def __init__(
        self,
        classes: tuple[ComplexityClass, ...] = CLASSES,
        inclusions: tuple[Inclusion, ...] = INCLUSIONS,
    ) -> None:
        self.classes = {c.key: c for c in classes}
        self.inclusions = tuple(inclusions)
        for inc in self.inclusions:
            if inc.lower not in self.classes or inc.upper not in self.classes:
                raise ValueError(f"inclusion {inc} mentions unknown class")
        self._successors: dict[str, set[str]] = {k: set() for k in self.classes}
        for inc in self.inclusions:
            self._successors[inc.lower].add(inc.upper)

    def reachable_from(self, key: str) -> set[str]:
        """All classes derivably containing ``key`` (excluding itself)."""
        seen: set[str] = set()
        frontier = [key]
        while frontier:
            node = frontier.pop()
            for succ in self._successors[node]:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def includes(self, lower: str, upper: str) -> bool:
        """Is ``lower ⊆ upper`` derivable (reflexively) from the figure?"""
        if lower == upper:
            return True
        return upper in self.reachable_from(lower)

    def incomparable(self, a: str, b: str) -> bool:
        """Neither inclusion derivable — the figure's open separations."""
        return not self.includes(a, b) and not self.includes(b, a)

    def is_dag(self) -> bool:
        """No derivable cycle (classes drawn at distinct levels)."""
        return all(key not in self.reachable_from(key) for key in self.classes)

    def minimal_classes_containing_dual(self) -> list[str]:
        """The tightest figure classes containing ``Dual``.

        A dual-containing class none of whose derivable subclasses also
        contains ``Dual`` — for the paper's figure, exactly the new
        ``GC(log²n, [[LOGSPACE_pol]]^log)`` bound.
        """
        holders = [k for k, c in self.classes.items() if c.contains_dual]
        return [
            k
            for k in holders
            if not any(
                other != k and self.includes(other, k) for other in holders
            )
        ]

    def upper_bound_frontier(self) -> dict[str, list[str]]:
        """For each dual-containing class, its immediate figure parents."""
        return {
            inc.lower: sorted(
                i.upper for i in self.inclusions if i.lower == inc.lower
            )
            for inc in self.inclusions
            if self.classes[inc.lower].contains_dual
        }

    def topological_order(self) -> list[str]:
        """Bottom-up order consistent with all inclusions."""
        indegree = {k: 0 for k in self.classes}
        for inc in self.inclusions:
            indegree[inc.upper] += 1
        ready = sorted(k for k, d in indegree.items() if d == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self._successors[node]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.classes):
            raise ValueError("inclusion structure has a cycle")
        return order


def default_lattice() -> ClassLattice:
    """The Figure 1 lattice."""
    return ClassLattice()
