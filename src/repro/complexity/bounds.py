"""Quantitative bounds from the paper: ``χ(n)``, FK runtime, log²-space curves.

Section 1 (known complexity results) recalls that Fredman and Khachiyan
showed ``Dual ∈ DTIME[n^{4χ(n)+O(1)}]``, where ``χ(n)`` is defined by

    χ(n)^χ(n) = n,

and notes ``χ(n) ∼ log n / log log n = o(log n)``.  This module computes
these quantities exactly enough for the experiment harness to plot the
paper's bound envelopes against measured work.
"""

from __future__ import annotations

import math


def chi(n: float) -> float:
    """The inverse of ``x ↦ x^x`` at ``n``: the unique ``x ≥ 1`` with ``x^x = n``.

    Defined for ``n ≥ 1``; ``chi(1) = 1``.  Solved by bisection on the
    strictly increasing function ``x log x`` (50 iterations give far more
    than double precision needs).
    """
    if n < 1:
        raise ValueError("chi(n) is defined for n >= 1")
    if n == 1:
        return 1.0
    target = math.log(n)
    lo, hi = 1.0, 2.0
    while hi * math.log(hi) < target:
        hi *= 2.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if mid * math.log(mid) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def chi_asymptotic(n: float) -> float:
    """The first-order asymptotic ``log n / log log n`` (for comparison plots)."""
    if n <= math.e:
        raise ValueError("asymptotic form needs log log n > 0, i.e. n > e")
    return math.log(n) / math.log(math.log(n))


def fk_time_bound(n: float, constant: float = 1.0) -> float:
    """The Fredman–Khachiyan envelope ``n^{4χ(n) + c}``.

    Returned as a float; for large ``n`` use :func:`fk_time_bound_log`
    to avoid overflow.
    """
    return n ** (4.0 * chi(n) + constant)


def fk_time_bound_log(n: float, constant: float = 1.0) -> float:
    """``log₂`` of the FK envelope — overflow-safe for plotting."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return 0.0
    return (4.0 * chi(n) + constant) * math.log2(n)


def quasi_polynomial_exponent(n: float) -> float:
    """The ``o(log n)`` exponent ``4χ(n)+O(1)`` itself (with the O(1) as 1)."""
    return 4.0 * chi(n) + 1.0


def quadratic_logspace_bits(n: int, a: float = 0.0, b: float = 1.0) -> float:
    """The space envelope ``a + b·log₂²(n)`` of Theorem 4.1 (in bits)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return a + b * (math.log2(n) ** 2)


def guess_bits_bound(n_vertices: int, n_g_edges: int, n_h_edges: int) -> int:
    """Exact bit count to guess one path descriptor (Theorem 5.1's guess).

    A path descriptor is a sequence of ≤ ``⌊log₂ |H|⌋`` integers, each in
    ``[1, |V|·|G|]``, so ``⌊log₂ |H|⌋ · ⌈log₂(|V|·|G| + 1)⌉`` bits suffice
    — which is ``O(log² n)``.
    """
    if n_h_edges <= 0 or n_g_edges <= 0 or n_vertices <= 0:
        return 0
    depth = int(math.floor(math.log2(n_h_edges))) if n_h_edges > 1 else 0
    per_level = math.ceil(math.log2(n_vertices * n_g_edges + 1))
    return depth * per_level


def chi_table(values: list[int] | None = None) -> list[tuple[int, float, float]]:
    """Rows ``(n, χ(n), 4χ(n)+1)`` for the paper's bound discussion.

    Default sample spans the instance sizes the experiments use up to
    astronomically large ``n`` to show how slowly ``χ`` grows.
    """
    if values is None:
        values = [2, 10, 100, 10**3, 10**6, 10**9, 10**12, 10**15]
    return [(n, chi(n), quasi_polynomial_exponent(n)) for n in values]
