"""Vote assignments: the weighted-majority route to coteries.

Garcia-Molina & Barbara [16] introduced *vote assignments* as a compact
way to define quorum systems: give each site a non-negative vote weight,
fix a total threshold, and let the quorums be the minimal site sets
whose votes exceed half the total (or an explicit threshold).  Every
vote assignment yields a coterie, but not every coterie is
vote-definable — the wheel on ≥ 6 sites is the standard counterexample
family; :func:`is_vote_definable` searches small integer assignments so
tests can exhibit both sides.
"""

from __future__ import annotations

from collections.abc import Mapping
from itertools import product

from repro._util import minimize_family, powerset, vertex_key
from repro.errors import NotACoterieError
from repro.coteries.coterie import Coterie


def coterie_from_votes(
    votes: Mapping, threshold: int | None = None
) -> Coterie:
    """The coterie of minimal vote-winning site sets.

    ``threshold`` defaults to strict majority: ``⌊total/2⌋ + 1``.  The
    quorums are all inclusion-minimal sets with vote sum ≥ threshold.
    Raises :class:`NotACoterieError` when the threshold is unreachable or
    permits two disjoint winning sets (then the family is no coterie).
    """
    if any(v < 0 for v in votes.values()):
        raise NotACoterieError("votes must be non-negative")
    total = sum(votes.values())
    if threshold is None:
        threshold = total // 2 + 1
    if threshold <= 0 or threshold > total:
        raise NotACoterieError(
            f"threshold {threshold} unreachable with total vote {total}"
        )
    if 2 * threshold <= total:
        raise NotACoterieError(
            "threshold permits two disjoint winning sets — not a coterie"
        )
    winning = [
        s
        for s in powerset(votes.keys())
        if sum(votes[x] for x in s) >= threshold
    ]
    return Coterie(minimize_family(winning), universe=votes.keys())


def is_vote_definable(
    coterie: Coterie, max_vote: int = 3
) -> tuple[bool, dict | None]:
    """Search small integer vote assignments defining the given coterie.

    Exhaustive over assignments with per-site votes in ``[0, max_vote]``
    and all meaningful thresholds — exponential, for test-sized systems
    only.  Returns ``(found, assignment)`` with the votes dict (plus
    key ``"threshold"``) when found.
    """
    sites = sorted(coterie.universe, key=vertex_key)
    for combo in product(range(max_vote + 1), repeat=len(sites)):
        votes = dict(zip(sites, combo))
        total = sum(combo)
        if total == 0:
            continue
        for threshold in range(total // 2 + 1, total + 1):
            try:
                candidate = coterie_from_votes(votes, threshold)
            except NotACoterieError:
                continue
            if candidate == coterie:
                assignment = dict(votes)
                assignment["threshold"] = threshold
                return True, assignment
    return False, None
