"""Quorum availability: why non-dominated coteries matter operationally.

A coterie is *available* under a failure pattern if some quorum is fully
alive.  With independent site up-probability ``p``, availability is

    ``A(C, p) = P[∃ quorum Q : all sites of Q up]``.

Domination is exactly availability dominance: if ``C`` dominates ``D``,
then every failure pattern leaving a ``D``-quorum alive leaves a
``C``-quorum alive, so ``A(C, p) ≥ A(D, p)`` for every ``p`` — the
operational content of Prop. 1.3's preference for ND coteries, and a
property the tests verify numerically.
"""

from __future__ import annotations

from itertools import combinations

from repro._util import vertex_key
from repro.coteries.coterie import Coterie


def alive_quorum_exists(coterie: Coterie, up_sites) -> bool:
    """Is some quorum fully contained in the alive-site set?"""
    alive = frozenset(up_sites)
    return any(q <= alive for q in coterie.quorums)


def availability(coterie: Coterie, p: float) -> float:
    """Exact availability under independent site up-probability ``p``.

    Picks the cheaper of two exact strategies: scanning the ``2^|sites|``
    up/down patterns (sites are few in a quorum system) or
    inclusion–exclusion over the ``2^|quorums|`` quorum unions (when the
    coterie has fewer quorums than sites, e.g. singleton coteries over a
    large universe).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    if len(coterie.universe) <= len(coterie.quorums):
        return availability_by_enumeration(coterie, p)
    return _availability_inclusion_exclusion(coterie, p)


def _availability_inclusion_exclusion(coterie: Coterie, p: float) -> float:
    """Inclusion–exclusion over quorum unions (exponential in |quorums|)."""
    quorums = coterie.quorums
    total = 0.0
    for r in range(1, len(quorums) + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        for subset in combinations(quorums, r):
            union: frozenset = frozenset()
            for q in subset:
                union |= q
            total += sign * (p ** len(union))
    return total


def availability_by_enumeration(coterie: Coterie, p: float) -> float:
    """Availability by scanning all up/down patterns (tests only)."""
    sites = sorted(coterie.universe, key=vertex_key)
    total = 0.0
    for mask in range(2 ** len(sites)):
        up = frozenset(
            s for bit, s in enumerate(sites) if (mask >> bit) & 1
        )
        if alive_quorum_exists(coterie, up):
            prob = 1.0
            for s in sites:
                prob *= p if s in up else (1.0 - p)
            total += prob
    return total


def availability_curve(
    coterie: Coterie, points: int = 11
) -> list[tuple[float, float]]:
    """``(p, A(C, p))`` samples across ``p ∈ [0, 1]`` (for reports)."""
    return [
        (k / (points - 1), availability(coterie, k / (points - 1)))
        for k in range(points)
    ]
