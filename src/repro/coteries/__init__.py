"""Coteries for quorum-based replication (Prop. 1.3 and refs [16, 30, 35])."""

from repro.coteries.availability import (
    alive_quorum_exists,
    availability,
    availability_by_enumeration,
    availability_curve,
)
from repro.coteries.coterie import (
    Coterie,
    dominating_coterie,
    grid_coterie,
    is_coterie,
    majority_coterie,
    nd_closure,
    singleton_coterie,
    tree_coterie,
    wheel_coterie,
)
from repro.coteries.votes import coterie_from_votes, is_vote_definable

__all__ = [
    "Coterie",
    "alive_quorum_exists",
    "availability",
    "availability_by_enumeration",
    "availability_curve",
    "coterie_from_votes",
    "dominating_coterie",
    "grid_coterie",
    "is_coterie",
    "is_vote_definable",
    "majority_coterie",
    "nd_closure",
    "singleton_coterie",
    "tree_coterie",
    "wheel_coterie",
]
