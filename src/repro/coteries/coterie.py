"""Coteries and non-domination (paper, Section 1 and Prop. 1.3).

For quorum-based updates in distributed databases [35], a *coterie* over
a universe ``U`` is a family of pairwise-intersecting, inclusion-minimal
*quorums* (Garcia-Molina & Barbara [16]; Ibaraki & Kameda [30]).  A
coterie ``C`` *dominates* ``D`` (``C ≠ D``) if every quorum of ``D``
contains a quorum of ``C`` — dominated coteries are strictly worse for
availability, so one wants **non-dominated (ND)** coteries.

Proposition 1.3 ([30, 7]): a coterie ``H`` is non-dominated iff
``tr(H) = H`` — self-duality, a special case of ``Dual``.  So every
engine of :mod:`repro.duality` answers the ND question, and on a
dominated coterie the duality witness converts into an explicit
*dominating* coterie (:func:`dominating_coterie`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro._util import minimize_family
from repro.errors import NotACoterieError
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.duality.engine import decide_duality
from repro.duality.result import DualityResult


class Coterie:
    """An immutable coterie: pairwise-intersecting minimal quorums.

    Construction validates the coterie axioms and raises
    :class:`repro.errors.NotACoterieError` on violations:

    * at least one quorum, none empty;
    * every two quorums intersect;
    * no quorum contains another (minimality within the family).
    """

    __slots__ = ("_hypergraph",)

    def __init__(
        self, quorums: Iterable[Iterable], universe: Iterable | None = None
    ) -> None:
        hg = Hypergraph(quorums, vertices=universe)
        if len(hg) == 0:
            raise NotACoterieError("a coterie needs at least one quorum")
        if hg.is_trivial_true():
            raise NotACoterieError("quorums must be nonempty")
        if not hg.is_simple():
            raise NotACoterieError("quorums must form an antichain")
        for i, q1 in enumerate(hg.edges):
            for q2 in hg.edges[i + 1:]:
                if not q1 & q2:
                    raise NotACoterieError(
                        f"quorums {sorted(map(str, q1))} and "
                        f"{sorted(map(str, q2))} do not intersect"
                    )
        self._hypergraph = hg

    @property
    def quorums(self) -> tuple[frozenset, ...]:
        """The quorums, canonically ordered."""
        return self._hypergraph.edges

    @property
    def universe(self) -> frozenset:
        """The process/site universe."""
        return self._hypergraph.vertices

    def hypergraph(self) -> Hypergraph:
        """The underlying hypergraph (for the duality machinery)."""
        return self._hypergraph

    def __len__(self) -> int:
        return len(self._hypergraph)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Coterie):
            return NotImplemented
        return self._hypergraph == other._hypergraph

    def __hash__(self) -> int:
        return hash(("Coterie", self._hypergraph))

    def __repr__(self) -> str:
        return f"Coterie({len(self)} quorums over {len(self.universe)} sites)"

    # ------------------------------------------------------------------
    # Domination
    # ------------------------------------------------------------------

    def dominates(self, other: "Coterie") -> bool:
        """Garcia-Molina–Barbara domination: ``self ≠ other`` and every
        quorum of ``other`` contains a quorum of ``self``."""
        if self == other:
            return False
        mine = self.quorums
        return all(
            any(q_mine <= q_other for q_mine in mine)
            for q_other in other.quorums
        )

    def is_dominated_brute_force(self) -> bool:
        """Domination by exhaustive search over candidate coteries.

        Tests-only reference: scans all antichains of subsets (doubly
        exponential) on small universes.
        """
        from itertools import combinations

        from repro._util import powerset

        subsets = [s for s in powerset(self.universe) if s]
        candidates: list[list[frozenset]] = []
        for r in range(1, len(subsets) + 1):
            if r > 4:  # antichain width cap keeps this tractable in tests
                break
            candidates.extend(list(c) for c in combinations(subsets, r))
        for family in candidates:
            try:
                other = Coterie(family, universe=self.universe)
            except NotACoterieError:
                continue
            if other.dominates(self):
                return True
        return False

    def is_nondominated(self, method: str = "bm") -> bool:
        """Proposition 1.3: non-dominated ⟺ ``tr(H) = H`` (self-duality)."""
        return self.self_duality_result(method=method).is_dual

    def self_duality_result(self, method: str = "bm") -> DualityResult:
        """The underlying ``Dual`` run for the ND test (for experiments)."""
        hg = self._hypergraph
        return decide_duality(hg, hg, method=method)


def dominating_coterie(coterie: Coterie, method: str = "bm") -> Coterie | None:
    """A coterie strictly dominating the given one, or ``None`` if ND.

    From the Prop. 1.3 refutation: if ``tr(H) ≠ H``, a new transversal
    ``t`` of ``H`` w.r.t. ``H`` exists; ``min(H ∪ {t'})`` for the
    minimised ``t' ⊆ t`` is a coterie dominating ``H`` (every old quorum
    still contains some quorum; ``t'`` intersects all old quorums by
    transversality and equals none).
    """
    result = coterie.self_duality_result(method=method)
    if result.is_dual:
        return None
    hg = coterie.hypergraph()
    witness = result.certificate.witness
    from repro.hypergraph.transversal import (
        is_new_transversal,
        minimalize_transversal,
    )

    if witness is None or not is_new_transversal(witness, hg, hg):
        exact = transversal_hypergraph(hg)
        extras = [t for t in exact.edges if t not in set(hg.edges)]
        if not extras:
            return None
        witness = extras[0]
    new_quorum = minimalize_transversal(witness, hg)
    merged = minimize_family(tuple(hg.edges) + (new_quorum,))
    return Coterie(merged, universe=coterie.universe)


def nd_closure(
    coterie: Coterie, method: str = "bm", max_rounds: int = 1_000
) -> tuple[Coterie, int]:
    """Iterate domination repair until a non-dominated coterie is reached.

    The transversal-merge idea of Harada–Yamashita [28]: repeatedly add
    a (minimised) new transversal as a quorum and re-minimise.  Each
    round strictly improves the coterie in the domination order, and
    every coterie is dominated by some ND coterie, so the loop
    terminates.  Returns the ND coterie and the number of rounds taken
    (0 when the input was already ND).
    """
    current = coterie
    for rounds in range(max_rounds):
        better = dominating_coterie(current, method=method)
        if better is None:
            return current, rounds
        current = better
    raise RuntimeError(
        f"nd_closure did not converge within {max_rounds} rounds"
    )


def is_coterie(quorums: Iterable[Iterable], universe: Iterable | None = None) -> bool:
    """Non-raising coterie-axioms check."""
    try:
        Coterie(quorums, universe=universe)
    except NotACoterieError:
        return False
    return True


# ---------------------------------------------------------------------------
# Standard constructions
# ---------------------------------------------------------------------------

def majority_coterie(n: int) -> Coterie:
    """Majorities of ``n`` sites (``n`` odd ⟹ non-dominated)."""
    if n < 1 or n % 2 == 0:
        raise NotACoterieError("majority coterie needs an odd universe")
    from itertools import combinations

    k = (n + 1) // 2
    return Coterie(
        (frozenset(c) for c in combinations(range(n), k)), universe=range(n)
    )


def singleton_coterie(n: int, leader: int = 0) -> Coterie:
    """The primary-site coterie ``{{leader}}`` (non-dominated)."""
    if not 0 <= leader < n:
        raise NotACoterieError("leader outside the universe")
    return Coterie([{leader}], universe=range(n))


def wheel_coterie(n: int) -> Coterie:
    """The wheel: hub plus one spoke, or all the rim (ND for n ≥ 4).

    Quorums: ``{hub, r}`` for each rim site ``r``, and the full rim.
    Hub = site 0, rim = 1..n−1.
    """
    if n < 3:
        raise NotACoterieError("a wheel needs at least 3 sites")
    rim = list(range(1, n))
    quorums: list[frozenset] = [frozenset({0, r}) for r in rim]
    quorums.append(frozenset(rim))
    return Coterie(quorums, universe=range(n))


def grid_coterie(rows: int, cols: int) -> Coterie:
    """Row-column grid quorums: one full row plus one site from each row.

    Quorum = a full row ∪ a representative from every other row, reduced
    to the standard "one row + one column crossing" scheme — dominated
    in general (the classical example of a non-ND construction).
    Sites are ``(r, c)`` pairs.
    """
    if rows < 1 or cols < 1:
        raise NotACoterieError("grid needs positive dimensions")
    sites = [(r, c) for r in range(rows) for c in range(cols)]
    quorums = []
    from itertools import product

    for r in range(rows):
        row_sites = frozenset((r, c) for c in range(cols))
        for reps in product(*(range(cols) for _ in range(rows))):
            quorum = row_sites | frozenset(
                (r2, reps[r2]) for r2 in range(rows)
            )
            quorums.append(quorum)
    return Coterie(minimize_family(quorums), universe=sites)


def tree_coterie(depth: int) -> Coterie:
    """Agrawal–El Abbadi style binary-tree quorums (small depths).

    A quorum is a root-to-leaf path's worth of coverage: recursively,
    a quorum of a tree is the root plus a quorum of one child subtree,
    or quorums of both child subtrees.  Depth 1 = single root.
    """
    if depth < 1:
        raise NotACoterieError("depth must be >= 1")

    counter = [0]

    def build(d: int) -> tuple[int, list[frozenset]]:
        node = counter[0]
        counter[0] += 1
        if d == 1:
            return node, [frozenset({node})]
        _, left = build(d - 1)
        _, right = build(d - 1)
        quorums = [frozenset({node}) | q for q in left]
        quorums += [frozenset({node}) | q for q in right]
        quorums += [ql | qr for ql in left for qr in right]
        return node, list(minimize_family(quorums))

    _, quorums = build(depth)
    return Coterie(minimize_family(quorums), universe=range(counter[0]))
