"""Boolean-valued data relations: the data-mining substrate of Section 1.

The paper's setting: "a Boolean-valued data relation ``M`` over a set
``S`` of attributes called *items*", where each tuple ``t`` defines
``items(t) = {A ∈ S : t[A] = 1}``.  :class:`BooleanRelation` stores the
tuples as item sets (the standard transaction view), keeps duplicate
tuples (frequency counts multiplicity), and preserves the item universe
``S`` independently of which items actually occur.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro._util import format_set, vertex_key
from repro.errors import VertexError


class BooleanRelation:
    """An immutable Boolean relation ``M`` over an item universe ``S``.

    Parameters
    ----------
    transactions:
        Iterable of item-iterables (the rows, as their ``items(t)``
        sets).  Duplicates are preserved — ``|M|`` counts rows.
    items:
        Optional explicit universe; defaults to the union of the rows.
    """

    __slots__ = ("_rows", "_items", "_vertical")

    def __init__(
        self,
        transactions: Iterable[Iterable] = (),
        items: Iterable | None = None,
    ) -> None:
        rows = tuple(frozenset(t) for t in transactions)
        used: set = set()
        for row in rows:
            used |= row
        if items is None:
            universe = frozenset(used)
        else:
            universe = frozenset(items)
            if not used <= universe:
                raise VertexError(
                    f"rows use items outside the declared universe: "
                    f"{sorted(used - universe, key=vertex_key)}"
                )
        # Canonical row order — multiset semantics with reproducibility.
        self._rows = tuple(
            sorted(rows, key=lambda r: (len(r), tuple(sorted(r, key=vertex_key))))
        )
        self._items = universe
        self._vertical = None

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    @property
    def items(self) -> frozenset:
        """The item universe ``S``."""
        return self._items

    @property
    def rows(self) -> tuple[frozenset, ...]:
        """The tuples, as item sets, in canonical order (with duplicates)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanRelation):
            return NotImplemented
        return self._rows == other._rows and self._items == other._items

    def __hash__(self) -> int:
        return hash((self._rows, self._items))

    def __repr__(self) -> str:
        preview = ", ".join(format_set(r) for r in self._rows[:4])
        suffix = ", …" if len(self._rows) > 4 else ""
        return (
            f"BooleanRelation({len(self._rows)} rows over "
            f"{len(self._items)} items: {preview}{suffix})"
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def vertical_bitmaps(self) -> tuple[dict, int]:
        """The vertical (item-major) bitmap view: ``(columns, full_mask)``.

        ``columns[A]`` is an ``int`` whose bit ``i`` is set iff row ``i``
        (in canonical row order) contains item ``A``; ``full_mask`` has
        one bit per row.  With this view, ``f(U)`` is the popcount of the
        AND-chain of ``U``'s columns — the frequency kernel of the
        itemset layer.  Built once and cached; a derived view only, the
        row tuples remain the source of truth.  The column mapping is
        an immutable proxy so callers cannot corrupt the cache.
        """
        if self._vertical is None:
            from types import MappingProxyType

            columns = {item: 0 for item in self._items}
            for position, row in enumerate(self._rows):
                bit = 1 << position
                for item in row:
                    columns[item] |= bit
            self._vertical = (
                MappingProxyType(columns),
                (1 << len(self._rows)) - 1,
            )
        return self._vertical

    def as_bitmap(self) -> list[dict]:
        """The relation as explicit 0/1 tuples (dicts item → bool)."""
        ordered = sorted(self._items, key=vertex_key)
        return [{a: (a in row) for a in ordered} for row in self._rows]

    def restrict_items(self, keep: Iterable) -> "BooleanRelation":
        """Project onto a subset of the items (rows keep multiplicity)."""
        scope = frozenset(keep)
        if not scope <= self._items:
            raise VertexError("projection scope must be a subset of the items")
        return BooleanRelation((row & scope for row in self._rows), items=scope)

    def sample_rows(self, indices: Sequence[int]) -> "BooleanRelation":
        """The sub-relation with the selected row indices."""
        return BooleanRelation(
            (self._rows[i] for i in indices), items=self._items
        )

    def distinct(self) -> "BooleanRelation":
        """Collapse duplicate rows (changes frequencies; used by key mining)."""
        return BooleanRelation(set(self._rows), items=self._items)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_bitmap(
        cls, tuples: Iterable[Mapping], items: Iterable | None = None
    ) -> "BooleanRelation":
        """Build from explicit 0/1 tuples (mappings item → truthy)."""
        tuples = list(tuples)
        if items is None:
            universe: set = set()
            for t in tuples:
                universe |= set(t.keys())
        else:
            universe = set(items)
        return cls(
            (frozenset(a for a in t if t[a]) for t in tuples), items=universe
        )

    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Iterable], items: Iterable | None = None
    ) -> "BooleanRelation":
        """Alias constructor matching data-mining vocabulary."""
        return cls(transactions, items=items)
