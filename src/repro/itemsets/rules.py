"""Association rules from mined borders (the intro's motivating use case).

The paper's data-mining motivation ([36]: "association rule mining")
consumes the frequent itemsets the border machinery identifies.  This
module closes that loop: given a relation and threshold, derive the
classical support/confidence association rules ``X → Y`` (Agrawal et
al.) from the frequent sets — where *frequent* follows the paper's
strict convention ``f(U) > z`` — and expose the borders' role: every
frequent set, hence every rule antecedent∪consequent, lies under some
maximal frequent itemset.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations

from repro._util import format_set, vertex_key
from repro.errors import InvalidInstanceError
from repro.itemsets.apriori import frequent_itemsets
from repro.itemsets.frequency import frequency, validate_threshold
from repro.itemsets.relation import BooleanRelation


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``antecedent → consequent`` with its exact statistics.

    ``support`` is the absolute frequency of the union; ``confidence``
    the ratio ``f(X ∪ Y) / f(X)``; ``lift`` the confidence relative to
    the consequent's unconditional relative frequency.
    """

    antecedent: frozenset
    consequent: frozenset
    support: int
    confidence: float
    lift: float

    def __str__(self) -> str:
        return (
            f"{format_set(self.antecedent)} -> {format_set(self.consequent)}"
            f"  (support={self.support}, confidence={self.confidence:.3f}, "
            f"lift={self.lift:.3f})"
        )


def _nonempty_proper_subsets(itemset: frozenset):
    ordered = sorted(itemset, key=vertex_key)
    return (
        frozenset(c)
        for c in chain.from_iterable(
            combinations(ordered, r) for r in range(1, len(ordered))
        )
    )


def mine_rules(
    relation: BooleanRelation,
    z: int,
    min_confidence: float = 0.6,
) -> list[AssociationRule]:
    """All association rules from the frequent itemsets of ``(M, z)``.

    For every frequent itemset ``U`` with ``|U| ≥ 2`` and every
    non-trivial split ``U = X ∪ Y``, emits ``X → Y`` when the confidence
    clears ``min_confidence``.  Rules are ordered deterministically by
    (descending confidence, descending support, canonical antecedent).
    """
    validate_threshold(relation, z)
    if not 0.0 < min_confidence <= 1.0:
        raise InvalidInstanceError("min_confidence must lie in (0, 1]")
    n_rows = len(relation)
    rules: list[AssociationRule] = []
    for itemset in frequent_itemsets(relation, z):
        if len(itemset) < 2:
            continue
        union_support = frequency(relation, itemset)
        for antecedent in _nonempty_proper_subsets(itemset):
            consequent = itemset - antecedent
            antecedent_support = frequency(relation, antecedent)
            confidence = union_support / antecedent_support
            if confidence + 1e-12 < min_confidence:
                continue
            consequent_rate = frequency(relation, consequent) / n_rows
            lift = confidence / consequent_rate if consequent_rate else float("inf")
            rules.append(
                AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=union_support,
                    confidence=confidence,
                    lift=lift,
                )
            )
    rules.sort(
        key=lambda r: (
            -r.confidence,
            -r.support,
            tuple(sorted(map(str, r.antecedent))),
            tuple(sorted(map(str, r.consequent))),
        )
    )
    return rules


def rules_under_border(
    rules: list[AssociationRule], maximal_frequent: "object"
) -> bool:
    """Every rule's item union lies under some maximal frequent itemset.

    The structural link between rule mining and the borders: rule unions
    are frequent, and the frequent sets are exactly the downward closure
    of ``IS⁺``.  ``maximal_frequent`` is the ``IS⁺`` hypergraph.
    """
    border = list(maximal_frequent.edges)
    return all(
        any((rule.antecedent | rule.consequent) <= top for top in border)
        for rule in rules
    )
