"""Levelwise (Apriori-style) border mining — Mannila–Toivonen [39].

The levelwise algorithm walks the itemset lattice breadth-first:
level ``k`` holds the frequent ``k``-item sets; candidates for level
``k+1`` are the sets all of whose ``k``-subsets were frequent.  Its two
outputs are precisely the borders of the "theory" of frequent sets:

* the **positive border** — maximal frequent itemsets (``IS⁺``), and
* the **negative border** — minimal infrequent itemsets that were
  *generated as candidates*; with full candidate generation this equals
  ``IS⁻``.

This is the polynomial-per-level counterpart of the exhaustive reference
in :mod:`repro.itemsets.borders`; the two are cross-checked in tests,
and the experiment harness uses this one on the larger synthetic
relations.
"""

from __future__ import annotations

from itertools import combinations

from repro._util import vertex_key
from repro.hypergraph import Hypergraph
from repro.itemsets.frequency import validate_threshold
from repro.itemsets.relation import BooleanRelation


def _level_candidates(
    previous_frequent: set[frozenset], level: int
) -> set[frozenset]:
    """Join step + prune step of Apriori candidate generation.

    A ``level``-set is a candidate iff **all** its ``(level−1)``-subsets
    are frequent — this completeness is what makes the negative border
    equal ``IS⁻`` exactly (a minimal infrequent set has all proper
    subsets frequent, hence is always generated and rejected).
    """
    items: set = set()
    for s in previous_frequent:
        items |= s
    candidates: set[frozenset] = set()
    ordered = sorted(items, key=vertex_key)
    if level == 1:
        return {frozenset({a}) for a in ordered}
    for combo in combinations(ordered, level):
        candidate = frozenset(combo)
        if all(
            candidate - {a} in previous_frequent for a in candidate
        ):
            candidates.add(candidate)
    return candidates


def levelwise_borders(
    relation: BooleanRelation, z: int
) -> tuple[Hypergraph, Hypergraph]:
    """``(IS⁺, IS⁻)`` by the levelwise algorithm.

    Counts each level's candidates in one pass over the relation.  The
    empty itemset is handled first (frequent iff ``z < |M|``); if it is
    infrequent, the borders are ``(∅, {∅})`` by the paper's conventions.
    """
    validate_threshold(relation, z)
    n_rows = len(relation)
    if n_rows <= z:
        # Even ∅ is infrequent (f(∅) = |M| ≤ z).
        return (
            Hypergraph.empty(relation.items),
            Hypergraph([frozenset()], vertices=relation.items),
        )

    frequent_by_level: list[set[frozenset]] = [{frozenset()}]
    negative_border: set[frozenset] = set()
    level = 1
    universe_items = sorted(relation.items, key=vertex_key)

    current_frequent = {frozenset()}
    while current_frequent:
        if level == 1:
            candidates = {frozenset({a}) for a in universe_items}
        else:
            candidates = _level_candidates(current_frequent, level)
        if not candidates:
            break
        counts = {c: 0 for c in candidates}
        for row in relation.rows:
            for c in counts:
                if c <= row:
                    counts[c] += 1
        next_frequent = {c for c, f in counts.items() if f > z}
        negative_border |= {c for c, f in counts.items() if f <= z}
        frequent_by_level.append(next_frequent)
        current_frequent = next_frequent
        level += 1

    all_frequent: set[frozenset] = set()
    for level_sets in frequent_by_level:
        all_frequent |= level_sets
    positive_border = {
        s
        for s in all_frequent
        if not any(s < other for other in all_frequent)
    }
    return (
        Hypergraph(positive_border, vertices=relation.items),
        Hypergraph(negative_border, vertices=relation.items),
    )


def frequent_itemsets(relation: BooleanRelation, z: int) -> list[frozenset]:
    """All frequent itemsets, levelwise (for reporting/inspection)."""
    validate_threshold(relation, z)
    if len(relation) <= z:
        return []
    out: list[frozenset] = [frozenset()]
    current = {frozenset()}
    level = 1
    while True:
        if level == 1:
            candidates = {frozenset({a}) for a in relation.items}
        else:
            candidates = _level_candidates(current, level)
        if not candidates:
            break
        counts = {c: 0 for c in candidates}
        for row in relation.rows:
            for c in counts:
                if c <= row:
                    counts[c] += 1
        current = {c for c, f in counts.items() if f > z}
        if not current:
            break
        out.extend(sorted(current, key=lambda s: tuple(sorted(s, key=vertex_key))))
        level += 1
    return out
