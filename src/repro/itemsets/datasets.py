"""Synthetic dataset generators (the offline substitute for public data).

The public itemset benchmarks (mushroom, retail, chess, …) are not
reachable in this offline environment, and the paper itself runs no
experiments on them — Proposition 1.1 is purely structural.  These
generators produce Boolean relations that exercise the same code paths,
plus one family real data cannot provide: *planted borders*, where the
exact maximal-frequent family is chosen up front, giving the experiments
a ground truth to compare against.

All generators take explicit seeds; all are documented in DESIGN.md's
substitution table.
"""

from __future__ import annotations

import random

from repro._util import maximize_family
from repro.errors import InvalidInstanceError
from repro.hypergraph import Hypergraph
from repro.itemsets.relation import BooleanRelation


def market_basket(
    n_items: int = 12,
    n_rows: int = 60,
    n_patterns: int = 4,
    pattern_size: int = 4,
    noise: float = 0.05,
    seed: int = 0,
) -> BooleanRelation:
    """A simplified IBM-Quest-style basket generator.

    Draws ``n_patterns`` random "purchase patterns"; each row picks one
    pattern, keeps each of its items with probability 0.9, and adds each
    non-pattern item with probability ``noise``.  Produces the skewed,
    overlapping co-occurrence structure real baskets have.
    """
    if pattern_size > n_items:
        raise InvalidInstanceError("pattern_size cannot exceed n_items")
    rng = random.Random(seed)
    items = [f"i{k:02d}" for k in range(n_items)]
    patterns = [
        rng.sample(items, pattern_size) for _ in range(max(1, n_patterns))
    ]
    rows = []
    for _ in range(n_rows):
        pattern = rng.choice(patterns)
        row = {a for a in pattern if rng.random() < 0.9}
        row |= {a for a in items if a not in pattern and rng.random() < noise}
        rows.append(row)
    return BooleanRelation(rows, items=items)


def dense_random(
    n_items: int = 10,
    n_rows: int = 40,
    density: float = 0.5,
    seed: int = 0,
) -> BooleanRelation:
    """Independent Bernoulli(density) bits — the unstructured control case."""
    if not 0.0 <= density <= 1.0:
        raise InvalidInstanceError("density must lie in [0, 1]")
    rng = random.Random(seed)
    items = [f"i{k:02d}" for k in range(n_items)]
    rows = [
        {a for a in items if rng.random() < density} for _ in range(n_rows)
    ]
    return BooleanRelation(rows, items=items)


def planted_borders(
    maximal_frequent: list[set] | None = None,
    n_items: int = 8,
    z: int = 2,
    seed: int = 0,
) -> tuple[BooleanRelation, int, Hypergraph]:
    """A relation whose maximal frequent family is *chosen in advance*.

    Construction: for each planted set ``P``, add ``z + 1`` identical
    rows equal to ``P``.  Then ``f(U) ≥ z + 1 > z`` iff ``U`` is inside
    some planted set... provided no union effect pushes other sets over
    the threshold, which the construction rules out because distinct
    planted sets contribute to ``f(U)`` only when ``U`` lies inside
    their intersection — already inside a planted set.  Hence
    ``IS⁺ = max(planted)`` exactly.

    Requires ``z + 1`` copies per set to clear the *strict* threshold;
    an itemset not below any planted set has frequency 0.

    Returns ``(relation, z, expected_is_plus)``.
    """
    rng = random.Random(seed)
    items = [f"i{k:02d}" for k in range(n_items)]
    if maximal_frequent is None:
        universe = list(items)
        picks = []
        for _ in range(3):
            size = rng.randint(2, max(2, n_items // 2))
            picks.append(set(rng.sample(universe, size)))
        maximal_frequent = picks
    planted = [frozenset(p) for p in maximal_frequent]
    for p in planted:
        if not p <= set(items):
            raise InvalidInstanceError(
                "planted sets must use items i00..i{n-1} within n_items"
            )
    if z < 1:
        raise InvalidInstanceError("z must be >= 1")

    rows: list[frozenset] = []
    for p in planted:
        rows.extend([p] * (z + 1))
    relation = BooleanRelation(rows, items=items)
    expected = Hypergraph(maximize_family(planted), vertices=items)
    return relation, z, expected


def contrast_pair(
    n_items: int = 8, z: int = 2, seed: int = 0
) -> tuple[BooleanRelation, int]:
    """A relation with both wide and narrow frequent sets (border stress).

    Mixes one broad planted set with several small overlapping ones, so
    the border has members of very different sizes — the shape where the
    complement/transversal bridge is easiest to get wrong.
    """
    rng = random.Random(seed)
    items = [f"i{k:02d}" for k in range(n_items)]
    broad = frozenset(items[: max(3, n_items // 2)])
    narrow = [
        frozenset(rng.sample(items, 2)) for _ in range(3)
    ]
    rows: list[frozenset] = []
    rows.extend([broad] * (z + 1))
    for p in narrow:
        rows.extend([p] * (z + 1))
    return BooleanRelation(rows, items=items), z


def single_pattern(
    n_items: int = 6, z: int = 1
) -> tuple[BooleanRelation, int]:
    """Degenerate relation: all rows identical (border edge cases)."""
    items = [f"i{k:02d}" for k in range(n_items)]
    row = frozenset(items[: n_items // 2])
    return BooleanRelation([row] * (z + 1), items=items), z


def categorical_onehot(
    n_attributes: int = 4,
    n_values: int = 3,
    n_rows: int = 40,
    skew: float = 0.6,
    seed: int = 0,
) -> BooleanRelation:
    """A one-hot-encoded categorical relation (mushroom-style shape).

    Each of ``n_attributes`` categorical attributes takes one of
    ``n_values`` values per row (value 0 drawn with probability
    ``skew``, the rest uniformly), encoded as items ``a{i}={v}`` with
    **exactly one item per attribute group per row**.  This is the shape
    of the classical UCI itemset benchmarks: minimal infrequent sets
    include cross-category value pairs, and no within-group pair is
    ever frequent — structure plain Bernoulli data lacks.
    """
    if n_values < 2:
        raise InvalidInstanceError("categorical data needs >= 2 values")
    if not 0.0 < skew < 1.0:
        raise InvalidInstanceError("skew must lie in (0, 1)")
    rng = random.Random(seed)
    items = [
        f"a{i}={v}" for i in range(n_attributes) for v in range(n_values)
    ]
    rows = []
    for _ in range(n_rows):
        row = set()
        for i in range(n_attributes):
            if rng.random() < skew:
                value = 0
            else:
                value = rng.randint(1, n_values - 1)
            row.add(f"a{i}={value}")
        rows.append(row)
    return BooleanRelation(rows, items=items)
