"""Transaction-file IO: the standard one-basket-per-line format.

Format (compatible with the common FIMI dataset layout)::

    # comments and blank lines ignored
    bread milk
    bread butter eggs
    milk

Tokens are whitespace-separated item names; integer-looking tokens stay
strings (item names are labels, not numbers — this differs from the
hypergraph format, where vertices are often indices).  An optional
``% items:`` directive fixes the universe, needed when some item never
occurs.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ParseError
from repro.itemsets.relation import BooleanRelation

_ITEMS_PREFIX = "% items:"


def loads(text: str) -> BooleanRelation:
    """Parse a transaction file's contents."""
    rows: list[frozenset] = []
    universe: frozenset | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("%"):
            if not line.startswith(_ITEMS_PREFIX):
                raise ParseError(f"line {lineno}: unknown directive {line!r}")
            universe = frozenset(line[len(_ITEMS_PREFIX):].split())
            continue
        rows.append(frozenset(line.split()))
    try:
        return BooleanRelation(rows, items=universe)
    except Exception as exc:
        raise ParseError(f"inconsistent transaction text: {exc}") from exc


def dumps(relation: BooleanRelation, include_items: bool = True) -> str:
    """Serialise a relation to the transaction format (canonical order)."""
    from repro._util import vertex_key

    lines: list[str] = []
    if include_items:
        names = " ".join(str(a) for a in sorted(relation.items, key=vertex_key))
        lines.append(f"{_ITEMS_PREFIX} {names}".rstrip())
    for row in relation.rows:
        lines.append(" ".join(str(a) for a in sorted(row, key=vertex_key)))
    return "\n".join(lines) + "\n"


def load(path: str | Path) -> BooleanRelation:
    """Read a relation from a transaction file."""
    return loads(Path(path).read_text(encoding="utf-8"))


def dump(
    relation: BooleanRelation, path: str | Path, include_items: bool = True
) -> None:
    """Write a relation to a transaction file."""
    Path(path).write_text(dumps(relation, include_items), encoding="utf-8")
