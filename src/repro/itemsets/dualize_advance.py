"""Dualize-and-advance: incremental enumeration of ``IS⁺ ∪ IS⁻``.

The paper (Section 1) describes the algorithmic paradigm built on [26]:

    "These algorithms initialize ``G`` and ``Hᶜ`` with some easy to
    compute subsets of ``IS⁻`` and ``IS⁺ᶜ``, respectively.  Then, at
    each step they check whether for the current sets ``G = tr(Hᶜ)`` is
    true, and if not, compute one or more new transversals from which
    new maximal frequent itemsets or minimal infrequent itemsets can be
    computed easily" ([39, 36, 25, 2, 43]).

:func:`enumerate_borders` implements exactly that loop:

1. seed ``H`` with one maximal frequent itemset (grown greedily from
   ``∅``) — or terminate immediately with ``IS⁻ = {∅}`` if even ``∅``
   is infrequent;
2. decide ``G = tr(Hᶜ)`` with any ``Dual`` engine (Prop. 1.1);
3. on NO, convert the witness into a new border itemset
   (grow/shrink), add it to ``H`` or ``G``, repeat.

Each iteration adds one *new* border set, so the loop runs exactly
``|IS⁺| + |IS⁻| − |seeds|`` more times — quasi-polynomial total delay
with the FK engines, which is the point the paper's Section 1 makes
about computing ``IS⁺ ∪ IS⁻`` instead of ``IS⁺`` alone (the latter has
no polynomial-delay enumeration unless NP collapses, [2, 3]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hypergraph import Hypergraph
from repro.itemsets.frequency import (
    grow_to_maximal_frequent,
    is_frequent,
    validate_threshold,
)
from repro.itemsets.identification import (
    decide_identification,
    IdentificationOutcome,
)
from repro.itemsets.relation import BooleanRelation


@dataclass
class EnumerationTrace:
    """Progress log of the incremental enumeration (for experiments).

    ``steps`` records, per iteration, whether a frequent or infrequent
    border set was added and the duality engine's node count.
    """

    steps: list[tuple[str, frozenset, int]] = field(default_factory=list)

    def additions(self) -> int:
        return len(self.steps)


def seed_maximal_frequent(
    relation: BooleanRelation, z: int
) -> frozenset | None:
    """An "easy to compute" first element of ``IS⁺`` (greedy growth from ∅).

    Returns ``None`` when even the empty itemset is infrequent
    (``z ≥ |M|``) — then ``IS⁺ = ∅`` and ``IS⁻ = {∅}``.
    """
    validate_threshold(relation, z)
    if not is_frequent(relation, frozenset(), z):
        return None
    return grow_to_maximal_frequent(relation, frozenset(), z)


def enumerate_borders(
    relation: BooleanRelation,
    z: int,
    method: str = "bm",
    max_iterations: int | None = None,
) -> tuple[Hypergraph, Hypergraph, EnumerationTrace]:
    """Compute ``(IS⁺, IS⁻)`` exactly, by dualize-and-advance.

    Parameters
    ----------
    relation, z:
        Data relation and strict threshold (paper conventions).
    method:
        Duality engine used for the ``G = tr(Hᶜ)`` checks.
    max_iterations:
        Safety valve for experiments; ``None`` means run to completion
        (termination is guaranteed — every step adds a new border set).

    Returns the complete borders and the per-step trace.
    """
    validate_threshold(relation, z)
    items = relation.items
    trace = EnumerationTrace()

    seed = seed_maximal_frequent(relation, z)
    if seed is None:
        return (
            Hypergraph.empty(items),
            Hypergraph([frozenset()], vertices=items),
            trace,
        )

    known_frequent: set[frozenset] = {seed}
    known_infrequent: set[frozenset] = set()
    iterations = 0
    while True:
        if max_iterations is not None and iterations >= max_iterations:
            raise RuntimeError(
                f"enumeration exceeded {max_iterations} iterations"
            )
        iterations += 1
        outcome: IdentificationOutcome = decide_identification(
            relation,
            z,
            Hypergraph(known_infrequent, vertices=items),
            Hypergraph(known_frequent, vertices=items),
            method=method,
            validate=False,
        )
        if outcome.complete:
            break
        if outcome.new_maximal_frequent is not None:
            new_set = outcome.new_maximal_frequent
            if new_set in known_frequent:
                raise RuntimeError("enumerator repeated a frequent border set")
            known_frequent.add(new_set)
            trace.steps.append(("frequent", new_set, outcome.duality.stats.nodes))
        else:
            new_set = outcome.new_minimal_infrequent
            if new_set in known_infrequent:
                raise RuntimeError("enumerator repeated an infrequent border set")
            known_infrequent.add(new_set)
            trace.steps.append(
                ("infrequent", new_set, outcome.duality.stats.nodes)
            )

    return (
        Hypergraph(known_frequent, vertices=items),
        Hypergraph(known_infrequent, vertices=items),
        trace,
    )


def enumerate_maximal_frequent(
    relation: BooleanRelation, z: int, method: str = "bm"
) -> Hypergraph:
    """``IS⁺`` via the joint enumeration (the practical route of Section 1)."""
    is_plus, _is_minus, _trace = enumerate_borders(relation, z, method=method)
    return is_plus


def enumerate_minimal_infrequent(
    relation: BooleanRelation, z: int, method: str = "bm"
) -> Hypergraph:
    """``IS⁻`` via the joint enumeration."""
    _is_plus, is_minus, _trace = enumerate_borders(relation, z, method=method)
    return is_minus
