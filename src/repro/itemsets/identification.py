"""MaxFreq–MinInfreq identification (Proposition 1.1): itemsets via ``Dual``.

The decision problem, verbatim from the paper:

    Given ``M``, ``z``, a set ``G ⊆ IS⁻(M, z)`` and a set
    ``H ⊆ IS⁺(M, z)``, decide whether ``H = IS⁺(M, z)`` and
    ``G = IS⁻(M, z)`` — i.e. whether there exists no additional maximal
    frequent or minimal infrequent itemset.

By [26], there exists no additional itemset **iff** ``G = tr(Hᶜ)`` — a
``Dual`` instance.  Hence (Proposition 1.1) the identification problem is
logspace-equivalent to ``Dual``, and every engine of
:mod:`repro.duality` — including the paper's quadratic-logspace one —
decides it.

On a NO answer, the duality witness converts into a *concrete new border
itemset*: a new transversal ``W`` of ``Hᶜ`` w.r.t. ``G`` is not covered
by any known maximal frequent set and contains no known minimal
infrequent set, so

* if ``W`` is frequent in ``M`` it grows into a new member of ``IS⁺``;
* otherwise it shrinks into a new member of ``IS⁻``

(:func:`witness_to_new_border_set` — the step the incremental algorithms
[39, 36, 25, 2, 43] iterate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InconsistentBorderError
from repro.hypergraph import Hypergraph, complement_family
from repro.hypergraph.transversal import is_minimal_transversal
from repro.duality.engine import decide_duality
from repro.duality.result import DualityResult
from repro.duality.witness import WitnessRole, classify_witness
from repro.itemsets.frequency import (
    frequency,
    grow_to_maximal_frequent,
    is_frequent,
    shrink_to_minimal_infrequent,
    validate_threshold,
)
from repro.itemsets.relation import BooleanRelation


@dataclass(frozen=True)
class IdentificationOutcome:
    """Answer of the identification problem with its evidence.

    ``complete`` — True iff ``H = IS⁺`` and ``G = IS⁻``.
    ``new_maximal_frequent`` / ``new_minimal_infrequent`` — on a NO
    answer, exactly one is set: a border itemset missing from the claimed
    families.  ``duality`` — the underlying engine result.
    """

    complete: bool
    duality: DualityResult
    new_maximal_frequent: frozenset | None = None
    new_minimal_infrequent: frozenset | None = None


def validate_claimed_borders(
    relation: BooleanRelation,
    z: int,
    claimed_infrequent: Hypergraph,
    claimed_frequent: Hypergraph,
) -> None:
    """Check ``G ⊆ IS⁻`` and ``H ⊆ IS⁺`` (the problem's preconditions).

    Every claimed maximal frequent set must be frequent and maximal;
    every claimed minimal infrequent set must be infrequent and minimal.
    Violations raise :class:`InconsistentBorderError` — they are
    malformed inputs, not NO answers.
    """
    validate_threshold(relation, z)
    items = relation.items
    if not (claimed_frequent.vertices <= items and claimed_infrequent.vertices <= items):
        raise InconsistentBorderError("claimed borders mention unknown items")
    for u in claimed_frequent.edges:
        if not is_frequent(relation, u, z):
            raise InconsistentBorderError(
                f"claimed maximal frequent itemset {sorted(map(str, u))} is infrequent"
            )
        for a in items - u:
            if is_frequent(relation, u | {a}, z):
                raise InconsistentBorderError(
                    f"claimed maximal frequent itemset {sorted(map(str, u))} "
                    f"is not maximal (can add {a!r})"
                )
    for u in claimed_infrequent.edges:
        if is_frequent(relation, u, z):
            raise InconsistentBorderError(
                f"claimed minimal infrequent itemset {sorted(map(str, u))} is frequent"
            )
        for a in u:
            if not is_frequent(relation, u - {a}, z):
                raise InconsistentBorderError(
                    f"claimed minimal infrequent itemset {sorted(map(str, u))} "
                    f"is not minimal (can drop {a!r})"
                )


def identification_instance(
    relation: BooleanRelation,
    claimed_infrequent: Hypergraph,
    claimed_frequent: Hypergraph,
) -> tuple[Hypergraph, Hypergraph]:
    """The ``Dual`` instance ``(Hᶜ, G)`` of [26]: complete iff ``G = tr(Hᶜ)``."""
    items = relation.items
    h_complement = complement_family(
        claimed_frequent.with_vertices(items), universe=items
    )
    return h_complement, claimed_infrequent.with_vertices(items)


def _uncovered_set_from_refutation(
    g_side: Hypergraph,
    h_side: Hypergraph,
    relation: BooleanRelation,
    result: DualityResult,
) -> frozenset:
    """From a ``G ≠ tr(Hᶜ)`` refutation, derive an *uncovered* itemset.

    Returns a set ``W`` with ``W ⊄ h`` for every claimed maximal frequent
    ``h`` and ``g ⊄ W`` for every claimed minimal infrequent ``g`` — the
    property that guarantees grow/shrink yields a *new* border member.
    Engine witnesses are used when they classify cleanly; otherwise the
    exact transversal oracle provides one (non-duality guarantees it
    when the claimed borders are genuine subsets of the true ones).
    """
    witness = result.certificate.witness
    if witness is not None:
        role = classify_witness(g_side, h_side, witness)
        if role is WitnessRole.NEW_TRANSVERSAL_OF_G:
            # Transversal of Hᶜ (⊄ every h) covering no claimed g.
            return frozenset(witness)
        if role is WitnessRole.NEW_TRANSVERSAL_OF_H:
            # Transposed-direction witness: its complement is uncovered.
            return frozenset(relation.items - witness)
        if role is WitnessRole.EXTRA_EDGE_OF_H:
            # A claimed minimal infrequent set that is not a *minimal*
            # transversal of Hᶜ: some one-smaller subset still traverses.
            from repro._util import vertex_key
            from repro.hypergraph.transversal import is_transversal

            for a in sorted(witness, key=vertex_key):
                shrunk = frozenset(witness - {a})
                if is_transversal(shrunk, g_side):
                    return shrunk
    # General fallback: a minimal transversal of Hᶜ outside G exists
    # whenever G ⊊ tr(Hᶜ); otherwise some claimed g shrinks (handled
    # above for engine witnesses, re-derived here via the oracle).
    from repro.hypergraph import transversal_hypergraph
    from repro.hypergraph.transversal import is_transversal

    exact = transversal_hypergraph(g_side)
    claimed = set(h_side.edges)
    for t in exact.edges:
        if t not in claimed:
            return frozenset(t)
    from repro._util import vertex_key

    for g_edge in h_side.edges:
        for a in sorted(g_edge, key=vertex_key):
            shrunk = frozenset(g_edge - {a})
            if is_transversal(shrunk, g_side):
                return shrunk
    raise InconsistentBorderError(
        "refuted duality but no uncovered itemset derivable — claimed "
        "borders are not subsets of the true borders"
    )


def witness_to_new_border_set(
    relation: BooleanRelation, z: int, witness: frozenset
) -> tuple[str, frozenset]:
    """Convert a duality witness into a new border itemset.

    ``witness`` is a new transversal of ``Hᶜ`` w.r.t. ``G``: it is not
    below any claimed maximal frequent set and not above any claimed
    minimal infrequent set.  Returns ``("frequent", U⁺)`` with
    ``U⁺ ∈ IS⁺ − H`` or ``("infrequent", U⁻)`` with ``U⁻ ∈ IS⁻ − G``.
    """
    if is_frequent(relation, witness, z):
        return "frequent", grow_to_maximal_frequent(relation, witness, z)
    return "infrequent", shrink_to_minimal_infrequent(relation, witness, z)


def decide_identification(
    relation: BooleanRelation,
    z: int,
    claimed_infrequent: Hypergraph,
    claimed_frequent: Hypergraph,
    method: str = "bm",
    validate: bool = True,
) -> IdentificationOutcome:
    """Solve MaxFreq–MinInfreq-Identification via a ``Dual`` engine.

    Parameters
    ----------
    relation, z:
        The data relation and the (strict) frequency threshold.
    claimed_infrequent, claimed_frequent:
        The known partial borders ``G ⊆ IS⁻`` and ``H ⊆ IS⁺``.
    method:
        Any :func:`repro.duality.engine.available_methods` name; the
        paper's point is that ``"logspace"`` works here too.
    validate:
        Check the ``⊆``-preconditions first (disable only when the
        caller guarantees them — e.g. the incremental enumerator).
    """
    if validate:
        validate_claimed_borders(relation, z, claimed_infrequent, claimed_frequent)

    g_side, h_side = identification_instance(
        relation, claimed_infrequent, claimed_frequent
    )
    result = decide_duality(g_side, h_side, method=method)
    if result.is_dual:
        return IdentificationOutcome(complete=True, duality=result)

    new_set = _uncovered_set_from_refutation(g_side, h_side, relation, result)
    kind, border_set = witness_to_new_border_set(relation, z, new_set)
    if kind == "frequent":
        return IdentificationOutcome(
            complete=False, duality=result, new_maximal_frequent=border_set
        )
    return IdentificationOutcome(
        complete=False, duality=result, new_minimal_infrequent=border_set
    )


def additional_itemsets_exist(
    relation: BooleanRelation,
    z: int,
    claimed_infrequent: Hypergraph,
    claimed_frequent: Hypergraph,
    method: str = "bm",
) -> bool:
    """Boolean view of :func:`decide_identification` (True = borders incomplete)."""
    outcome = decide_identification(
        relation, z, claimed_infrequent, claimed_frequent, method=method
    )
    return not outcome.complete
