"""Inverse frequent-itemset mining: realise prescribed borders.

Section 6 points to inverse frequent itemset mining ([42], Saccà &
Serra) as a related direction: instead of mining borders from data,
*construct* a relation whose borders are prescribed.  This module
implements the exactly-solvable core:

given an antichain ``F`` over items ``S`` and a threshold ``z``, build a
relation ``M`` with ``IS⁺(M, z) = F`` — and therefore, by the [26]
bridge, ``IS⁻(M, z) = tr(Fᶜ)``.

Construction: ``z + 1`` identical rows per prescribed set (clearing the
paper's *strict* threshold), plus optional all-distinct padding rows
that leave the borders untouched.  Feasibility is exactly "``F`` is a
non-empty antichain" (for ``IS⁺ = ∅`` use ``z ≥ |M|``, i.e. the
degenerate construction).
"""

from __future__ import annotations

from repro._util import is_antichain
from repro.errors import InvalidInstanceError
from repro.hypergraph import Hypergraph, complement_family, transversal_hypergraph
from repro.itemsets.relation import BooleanRelation


def realize_maximal_frequent(
    prescribed: Hypergraph,
    z: int = 1,
    padding_rows: int = 0,
) -> BooleanRelation:
    """A relation whose maximal frequent family equals ``prescribed``.

    Parameters
    ----------
    prescribed:
        The target ``IS⁺``: a simple hypergraph over the item universe.
        The empty *family* is allowed (nothing frequent) and handled by
        the degenerate construction; the empty *edge* means "only the
        empty itemset is frequent".
    z:
        The strict threshold the result is built for (``≥ 1``).
    padding_rows:
        Extra empty rows (no items), which change ``|M|`` but neither
        ``f(U)`` for non-empty ``U`` nor the borders for the same ``z``.

    Raises :class:`InvalidInstanceError` when ``prescribed`` is not an
    antichain (maximal families are antichains by definition).
    """
    if z < 1:
        raise InvalidInstanceError("z must be >= 1")
    if not is_antichain(prescribed.edges):
        raise InvalidInstanceError(
            "the prescribed maximal-frequent family must be an antichain"
        )
    items = prescribed.vertices
    rows: list[frozenset] = []
    if len(prescribed) == 0:
        # Nothing frequent, not even ∅: make |M| = z rows, so f(∅) = z ≤ z.
        rows = [frozenset()] * z
        return BooleanRelation(rows, items=items)
    for edge in prescribed.edges:
        rows.extend([edge] * (z + 1))
    rows.extend([frozenset()] * padding_rows)
    return BooleanRelation(rows, items=items)


def expected_minimal_infrequent(prescribed: Hypergraph) -> Hypergraph:
    """The ``IS⁻`` the realisation will have: ``tr(prescribedᶜ)`` ([26])."""
    return transversal_hypergraph(complement_family(prescribed))


def verify_realization(
    relation: BooleanRelation, z: int, prescribed: Hypergraph
) -> bool:
    """Exhaustively confirm ``IS⁺(relation, z) = prescribed`` (test scale)."""
    from repro.itemsets.borders import maximal_frequent_itemsets

    return maximal_frequent_itemsets(relation, z) == prescribed.with_vertices(
        relation.items
    )


def feasible(prescribed: Hypergraph) -> bool:
    """Is the family realisable as a maximal-frequent family?  (Antichain.)"""
    return is_antichain(prescribed.edges)
