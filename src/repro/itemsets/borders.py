"""The borders ``IS⁺``/``IS⁻`` and the transversal bridge of [26].

``IS⁺(M, z)`` — the maximal frequent itemsets; ``IS⁻(M, z)`` — the
minimal infrequent itemsets.  The fundamental result the paper builds on
(Gunopulos–Khardon–Mannila–Toivonen, reference [26]):

    ``IS⁻ = tr(IS⁺ᶜ)``   and therefore   ``IS⁺ = tr(IS⁻)ᶜ``,

where ``Aᶜ = {S − A : A ∈ A}``.  This module computes both borders
exactly (exponential reference algorithms — the ground truth for the
identification and enumeration machinery) and provides the bridge in
both directions so the identity is testable on arbitrary relations.
"""

from __future__ import annotations

from repro._util import maximize_family, minimize_family, powerset
from repro.hypergraph import Hypergraph, complement_family, transversal_hypergraph
from repro.itemsets.frequency import frequency, validate_threshold
from repro.itemsets.relation import BooleanRelation


def maximal_frequent_itemsets(relation: BooleanRelation, z: int) -> Hypergraph:
    """``IS⁺(M, z)`` by exhaustive scan (reference implementation).

    Maximal frequent sets are intersections-closed upward-closed… they
    are found directly: a frequent set is maximally frequent iff no
    single-item extension stays frequent.  Exhaustive over closed sets
    via row intersections would be faster; the powerset scan is kept for
    its obvious correctness (tests bound the universe size).
    """
    validate_threshold(relation, z)
    frequent = [
        u for u in powerset(relation.items) if frequency(relation, u) > z
    ]
    return Hypergraph(maximize_family(frequent), vertices=relation.items)


def minimal_infrequent_itemsets(relation: BooleanRelation, z: int) -> Hypergraph:
    """``IS⁻(M, z)`` by exhaustive scan (reference implementation)."""
    validate_threshold(relation, z)
    infrequent = [
        u for u in powerset(relation.items) if frequency(relation, u) <= z
    ]
    return Hypergraph(minimize_family(infrequent), vertices=relation.items)


def borders(relation: BooleanRelation, z: int) -> tuple[Hypergraph, Hypergraph]:
    """Both borders ``(IS⁺, IS⁻)`` (reference implementation)."""
    return (
        maximal_frequent_itemsets(relation, z),
        minimal_infrequent_itemsets(relation, z),
    )


def infrequent_border_from_frequent(is_plus: Hypergraph) -> Hypergraph:
    """The [26] bridge: ``IS⁻ = tr(IS⁺ᶜ)``.

    ``is_plus`` must be the *complete* family of maximal frequent
    itemsets over its vertex universe (the item set ``S``).  Degenerate
    conventions carry over: no frequent itemset at all (``IS⁺ = ∅``)
    gives ``tr(∅) = {∅}`` — the empty itemset is the unique minimal
    infrequent one — and ``IS⁺ = {S}`` gives ``tr({∅}) = ∅``.
    """
    return transversal_hypergraph(complement_family(is_plus))


def frequent_border_from_infrequent(is_minus: Hypergraph) -> Hypergraph:
    """The reverse bridge: ``IS⁺ = tr(IS⁻)ᶜ``."""
    return complement_family(transversal_hypergraph(is_minus))


def borders_are_consistent(
    is_plus: Hypergraph, is_minus: Hypergraph
) -> bool:
    """Check the duality identity ``IS⁻ = tr(IS⁺ᶜ)`` for two claimed borders.

    Both hypergraphs must share the item universe.  This is exactly the
    ``Dual`` instance behind Proposition 1.1.
    """
    if is_plus.vertices != is_minus.vertices:
        return False
    return infrequent_border_from_frequent(is_plus) == is_minus


def frequent_closure_check(relation: BooleanRelation, z: int) -> bool:
    """Sanity invariant: frequency is antitone (used by property tests).

    Every subset of a frequent set is frequent; every superset of an
    infrequent set is infrequent.  Scans all pairs in the powerset of a
    (small) universe.
    """
    validate_threshold(relation, z)
    sets = list(powerset(relation.items))
    freq = {u: frequency(relation, u) for u in sets}
    return all(
        freq[u] >= freq[w]
        for u in sets
        for w in sets
        if u <= w
    )
