"""Frequency semantics — exactly the paper's (strict) convention.

Section 1: "the frequency ``f(U)`` for an itemset ``U`` is the number of
tuples ``t`` of ``M`` such that ``U ⊆ items(t)``.  ``U`` is *frequent*
if ``f(U) > z`` and *infrequent* otherwise", with a threshold
``0 < z ≤ |M|``.

Note the strictness: ``f(U) > z``, not ``≥`` — and that ``z = |M|``
makes *every* itemset infrequent (including ``∅``, whose frequency is
``|M|``), while any ``z < |M|`` makes ``∅`` frequent.  These boundary
cases are exercised deliberately by the tests because the border
identities of [26] must hold on them too.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import InvalidInstanceError, VertexError
from repro.itemsets.relation import BooleanRelation


def validate_threshold(relation: BooleanRelation, z: int) -> int:
    """Check ``0 < z ≤ |M|`` (the paper's threshold domain) and return ``z``."""
    if not isinstance(z, int):
        raise InvalidInstanceError(f"threshold must be an integer, got {z!r}")
    if not 0 < z <= len(relation):
        raise InvalidInstanceError(
            f"threshold z = {z} outside (0, |M|] = (0, {len(relation)}]"
        )
    return z


def frequency(relation: BooleanRelation, itemset: Iterable) -> int:
    """``f(U)``: the number of rows whose item set contains ``U``.

    Counted on the relation's vertical bitmaps: the rows containing
    ``U`` are the AND of ``U``'s item columns, and ``f(U)`` is its
    popcount.  Equivalent to scanning the rows (see
    :func:`frequency_scan`), but one machine-word operation per item
    instead of a subset test per row.
    """
    u = frozenset(itemset)
    if not u <= relation.items:
        raise VertexError(
            f"itemset {sorted(map(repr, u))} not within the item universe"
        )
    columns, rows_mask = relation.vertical_bitmaps()
    for item in u:
        rows_mask &= columns[item]
        if not rows_mask:
            return 0
    return rows_mask.bit_count()


def frequency_scan(relation: BooleanRelation, itemset: Iterable) -> int:
    """``f(U)`` by the definitional row scan.

    The pre-bitmap implementation, kept as the oracle for the
    bitmap/scan equivalence tests and the "before" side of the perf
    harness.
    """
    u = frozenset(itemset)
    if not u <= relation.items:
        raise VertexError(
            f"itemset {sorted(map(repr, u))} not within the item universe"
        )
    return sum(1 for row in relation.rows if u <= row)


def is_frequent(relation: BooleanRelation, itemset: Iterable, z: int) -> bool:
    """The paper's strict test: ``f(U) > z``."""
    validate_threshold(relation, z)
    return frequency(relation, itemset) > z


def is_infrequent(relation: BooleanRelation, itemset: Iterable, z: int) -> bool:
    """``f(U) ≤ z`` (infrequent = not frequent; no third state)."""
    return not is_frequent(relation, itemset, z)


def support_map(relation: BooleanRelation, itemsets: Iterable[Iterable]) -> dict:
    """Frequencies for many itemsets via the shared vertical bitmaps."""
    universe = relation.items
    wanted = []
    for itemset in itemsets:
        u = frozenset(itemset)
        if not u <= universe:
            raise VertexError(
                f"itemset {sorted(map(repr, u))} not within the item universe"
            )
        wanted.append(u)
    columns, full = relation.vertical_bitmaps()
    counts = {}
    for u in wanted:
        if u in counts:
            continue
        rows_mask = full
        for item in u:
            rows_mask &= columns[item]
            if not rows_mask:
                break
        counts[u] = rows_mask.bit_count()
    return counts


def item_frequencies(relation: BooleanRelation) -> dict:
    """``f({A})`` for every item ``A`` (the levelwise seed statistics).

    One popcount per vertical bitmap column.
    """
    columns, _full = relation.vertical_bitmaps()
    return {item: column.bit_count() for item, column in columns.items()}


def grow_to_maximal_frequent(
    relation: BooleanRelation, itemset: Iterable, z: int
) -> frozenset:
    """Extend a frequent itemset to a *maximal* frequent one (greedy).

    Items are tried in canonical order, so the result is deterministic.
    This is the standard post-step of the incremental border algorithms
    ([26, 39, 43]): a witness that is frequent gets grown into a new
    member of ``IS⁺``.
    """
    validate_threshold(relation, z)
    current = frozenset(itemset)
    if not is_frequent(relation, current, z):
        raise InvalidInstanceError(
            "grow_to_maximal_frequent needs a frequent starting set"
        )
    from repro._util import vertex_key

    for item in sorted(relation.items - current, key=vertex_key):
        candidate = current | {item}
        if is_frequent(relation, candidate, z):
            current = candidate
    return current


def shrink_to_minimal_infrequent(
    relation: BooleanRelation, itemset: Iterable, z: int
) -> frozenset:
    """Shrink an infrequent itemset to a *minimal* infrequent one (greedy).

    The mirror post-step: a witness that is infrequent gets shrunk into
    a new member of ``IS⁻``.  Deterministic (canonical item order).
    """
    validate_threshold(relation, z)
    current = set(itemset)
    if is_frequent(relation, current, z):
        raise InvalidInstanceError(
            "shrink_to_minimal_infrequent needs an infrequent starting set"
        )
    from repro._util import vertex_key

    for item in sorted(frozenset(current), key=vertex_key):
        current.discard(item)
        if is_frequent(relation, current, z):
            current.add(item)
    return frozenset(current)
