"""Frequent-itemset mining on top of ``Dual`` (paper, Section 1 & Prop. 1.1).

Borders ``IS⁺``/``IS⁻``, the transversal bridge ``IS⁻ = tr(IS⁺ᶜ)`` of
[26], MaxFreq–MinInfreq identification as a ``Dual`` instance, and the
dualize-and-advance enumeration of ``IS⁺ ∪ IS⁻``.
"""

from repro.itemsets.apriori import frequent_itemsets, levelwise_borders
from repro.itemsets.borders import (
    borders,
    borders_are_consistent,
    frequent_border_from_infrequent,
    infrequent_border_from_frequent,
    maximal_frequent_itemsets,
    minimal_infrequent_itemsets,
)
from repro.itemsets.dualize_advance import (
    EnumerationTrace,
    enumerate_borders,
    enumerate_maximal_frequent,
    enumerate_minimal_infrequent,
    seed_maximal_frequent,
)
from repro.itemsets.frequency import (
    frequency,
    frequency_scan,
    grow_to_maximal_frequent,
    is_frequent,
    is_infrequent,
    shrink_to_minimal_infrequent,
    support_map,
)
from repro.itemsets.identification import (
    IdentificationOutcome,
    additional_itemsets_exist,
    decide_identification,
    validate_claimed_borders,
)
from repro.itemsets.inverse import (
    expected_minimal_infrequent,
    realize_maximal_frequent,
    verify_realization,
)
from repro.itemsets.relation import BooleanRelation
from repro.itemsets.rules import AssociationRule, mine_rules

__all__ = [
    "AssociationRule",
    "BooleanRelation",
    "EnumerationTrace",
    "IdentificationOutcome",
    "additional_itemsets_exist",
    "expected_minimal_infrequent",
    "mine_rules",
    "realize_maximal_frequent",
    "verify_realization",
    "borders",
    "borders_are_consistent",
    "decide_identification",
    "enumerate_borders",
    "enumerate_maximal_frequent",
    "enumerate_minimal_infrequent",
    "frequency",
    "frequency_scan",
    "frequent_border_from_infrequent",
    "frequent_itemsets",
    "grow_to_maximal_frequent",
    "infrequent_border_from_frequent",
    "is_frequent",
    "is_infrequent",
    "levelwise_borders",
    "maximal_frequent_itemsets",
    "minimal_infrequent_itemsets",
    "seed_maximal_frequent",
    "shrink_to_minimal_infrequent",
    "support_map",
    "validate_claimed_borders",
]
