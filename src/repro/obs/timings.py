"""Per-solve timing capture: the data feed for learned engine selection.

ROADMAP direction 3 wants to *predict* the winning engine from cheap
structural features instead of racing the whole portfolio.  That model
needs training data, and until now every solve's timing evaporated
when the call returned (the portfolio racer's ``stats.extra`` is the
closest thing, and it is per-call ephemeral).

:class:`TimingLog` is an append-only JSONL recorder: one line per
solve with the engine, elapsed wall time, verdict, and
:func:`structural_features` of the instance — all derivable from the
mask payloads already travelling through the service in **one scan**
(no frozenset materialisation, no extra passes).  Appends are
thread-safe and O(1); the file is a plain log that
:func:`load_timings` reads back tolerantly (corrupt tail lines from a
crash are skipped, like the result cache's loader).
"""

from __future__ import annotations

import json
import os
import threading
import time


def _popcount(mask: int) -> int:
    return mask.bit_count()


def _side_features(masks) -> dict:
    """Edge count, size extremes, and per-vertex max degree of one side.

    A single pass over the edge masks; degrees accumulate in one
    integer-keyed dict built from bit positions, so the cost is
    O(sum of edge sizes) — the same order as merely reading the payload.
    """
    n_edges = 0
    total = 0
    max_size = 0
    min_size = 0
    degrees: dict[int, int] = {}
    for mask in masks:
        n_edges += 1
        size = _popcount(mask)
        total += size
        if size > max_size:
            max_size = size
        if min_size == 0 or size < min_size:
            min_size = size
        remaining = mask
        while remaining:
            low = remaining & -remaining
            bit = low.bit_length() - 1
            degrees[bit] = degrees.get(bit, 0) + 1
            remaining ^= low
    return {
        "edges": n_edges,
        "total_size": total,
        "max_edge": max_size,
        "min_edge": min_size,
        "max_degree": max(degrees.values()) if degrees else 0,
    }


def structural_features(g_payload, h_payload, deep: bool = False) -> dict:
    """Cheap instance features from mask payloads: one scan per side.

    ``g_payload``/``h_payload`` are ``(vertices, masks)`` pairs as
    produced by :func:`repro.hypergraph.canonical.mask_payload`.  The
    returned dict is flat and JSON-safe; ``volume`` is the planner's
    ``|G|*|H|`` work estimate, included so recorded timings can be
    judged against the crude model they are meant to replace.

    ``deep=True`` adds duality-tree-shape features from **one**
    Boros–Makino root expansion (branch-pair count, max/mean child
    volume, a depth estimate) — the quantities the Gottlob–Malizia
    upper bounds are phrased in, and what a shard cost model needs.
    The deep probe materialises the instance and runs one ``expand``,
    so the default cheap path never pays for it.
    """
    g_vertices, g_masks = g_payload
    h_vertices, h_masks = h_payload
    g = _side_features(g_masks)
    h = _side_features(h_masks)
    features = {
        "n_vertices": len(g_vertices) or len(h_vertices),
        "g_edges": g["edges"],
        "h_edges": h["edges"],
        "g_total_size": g["total_size"],
        "h_total_size": h["total_size"],
        "g_max_edge": g["max_edge"],
        "h_max_edge": h["max_edge"],
        "g_min_edge": g["min_edge"],
        "h_min_edge": h["min_edge"],
        "g_max_degree": g["max_degree"],
        "h_max_degree": h["max_degree"],
        "volume": g["edges"] * h["edges"],
    }
    if deep:
        features.update(_deep_features(g_payload, h_payload))
    return features


def _deep_features(g_payload, h_payload) -> dict:
    """Duality-tree-shape features from one planner probe (BM root
    expansion, mirroring :func:`repro.parallel.planner.plan_bm`'s
    prologue).  Failures — non-simple sides, entry-condition
    violations — degrade to zeros: feature capture must never break a
    solve, and "the tree has no branches" is itself a signal.
    """
    import math

    zeros = {
        "bm_branches": 0,
        "bm_max_child_volume": 0,
        "bm_mean_child_volume": 0.0,
        "bm_depth_est": 0.0,
    }
    try:
        from repro.duality.boros_makino import expand
        from repro.duality.conditions import prepare_instance
        from repro.duality.policies import PAPER_POLICY
        from repro.duality.tree import Mark, NodeAttributes
        from repro.hypergraph import from_mask_payload

        entry = prepare_instance(
            from_mask_payload(g_payload), from_mask_payload(h_payload)
        )
        if not entry.ok:
            return zeros
        g_v, h_v = entry.g, entry.h
        if len(h_v) > len(g_v):  # plan_bm's size-order swap
            g_v, h_v = h_v, g_v
        universe = frozenset(g_v.vertices | h_v.vertices)
        root = NodeAttributes((), universe, Mark.NIL, frozenset())
        outcome = expand(root, g_v, h_v, PAPER_POLICY)
        if isinstance(outcome, NodeAttributes):
            return zeros  # single-node tree: a root that is a leaf
        volumes = []
        for child in outcome:
            g_s, h_s = child.instance(g_v, h_v)
            volumes.append(len(g_s) * len(h_s))
        branches = len(outcome)
        max_volume = max(volumes)
        # Depth estimate: levels until the biggest child's volume is
        # divided down to 1, assuming the root's branching repeats.
        if max_volume > 1:
            base = branches if branches > 1 else 2
            depth_est = 1.0 + math.log(max_volume) / math.log(base)
        else:
            depth_est = 1.0
        return {
            "bm_branches": branches,
            "bm_max_child_volume": max_volume,
            "bm_mean_child_volume": round(sum(volumes) / branches, 3),
            "bm_depth_est": round(depth_est, 3),
        }
    except Exception:  # noqa: BLE001 - observation must not break solves
        return zeros


class TimingLog:
    """Thread-safe append-only JSONL recorder of per-solve timings.

    Each :meth:`record` writes one self-contained JSON line::

        {"ts": ..., "engine": "fk_b", "elapsed_s": 0.0123,
         "dual": true, "shard": null, "n_vertices": 9, "g_edges": 4, ...}

    The file handle is opened lazily and kept open; ``flush()`` after
    every line keeps the log crash-tolerant at the cost of a syscall —
    negligible next to any solve.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._fh = None
        self.records_written = 0

    def record(
        self,
        engine: str,
        elapsed_s: float,
        *,
        features: dict | None = None,
        dual=None,
        shard=None,
        trace_id: str | None = None,
        **extra,
    ) -> None:
        row = {"ts": round(time.time(), 6), "engine": engine,
               "elapsed_s": round(float(elapsed_s), 9)}
        if dual is not None:
            row["dual"] = bool(dual)
        if shard is not None:
            row["shard"] = shard
        if trace_id is not None:
            row["trace_id"] = trace_id
        if features:
            row.update(features)
        if extra:
            row.update(extra)
        line = json.dumps(row, separators=(",", ":")) + "\n"
        with self._lock:
            if self._fh is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()
            self.records_written += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "TimingLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_timings(path: str | os.PathLike) -> list[dict]:
    """Read a timing log back; corrupt lines (crash tails) are skipped."""
    rows: list[dict] = []
    try:
        with open(os.fspath(path), encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    continue
                if isinstance(row, dict):
                    rows.append(row)
    except OSError:
        return []
    return rows
