"""A unified metrics registry with Prometheus text exposition.

Before this module every layer kept private counters — the pool its
``tasks_completed``, the cache its ``hits``/``misses``, the network
server a ``_LatencyWindow`` of its own — and only the ``stats`` op
could see any of it, in an ad-hoc JSON shape.  A
:class:`MetricsRegistry` gives them one vocabulary:

* :class:`Counter` — monotone totals, optionally labelled
  (``requests_total{op="solve"}``);
* :class:`Gauge` — point-in-time values, settable or **callback-backed**
  (:meth:`MetricsRegistry.gauge_fn` reads a live attribute at scrape
  time, which is how the pool/cache/service register their existing
  counters without restructuring them);
* :class:`Histogram` — a bounded sliding window of observations with
  p50/p90/p99, exposed in Prometheus *summary* form (quantiles over
  the window, cumulative ``_sum``/``_count`` over the metric's life).
  This generalises — and replaces — the net server's private latency
  window.

:meth:`MetricsRegistry.expose` renders the whole registry in the
Prometheus text exposition format (version 0.0.4), which is what the
``metrics`` wire op and ``repro client --metrics`` return; every
metric also has a JSON-safe :meth:`MetricsRegistry.snapshot` for the
``stats`` op.  All mutators are thread-safe (completion threads,
dispatcher threads, and the event loop all record concurrently); the
costs are one small lock plus a dict update per event, cheap enough to
leave on permanently.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Metric:
    """Shared identity: name, help text, label names."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = _check_name(name)
        self.help = help
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _label_key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    # Each concrete metric yields (suffix, labels_dict, value) samples.
    def samples(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def expose(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples():
            lines.append(
                f"{self.name}{suffix}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )
        return "\n".join(lines)


class Counter(Metric):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """The sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def as_dict(self) -> dict:
        """``{label-value-or-tuple: count}`` for JSON stats snapshots."""
        with self._lock:
            items = dict(self._values)
        if not self.labelnames:
            return {"": items.get((), 0.0)}
        if len(self.labelnames) == 1:
            return {key[0]: value for key, value in items.items()}
        return {",".join(key): value for key, value in items.items()}

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            yield "", dict(zip(self.labelnames, key)), value


class Gauge(Metric):
    """A point-in-time value: settable, or read through a callback."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        fn=None,
    ):
        super().__init__(name, help, labelnames)
        if fn is not None and labelnames:
            raise ValueError("callback gauges cannot be labelled")
        self._fn = fn
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed; cannot set()")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed; cannot inc()")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self):
        if self._fn is not None:
            try:
                yield "", {}, float(self._fn())
            except Exception:  # noqa: BLE001 - a dead callback scrapes as NaN
                yield "", {}, float("nan")
            return
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            yield "", dict(zip(self.labelnames, key)), value


class Histogram(Metric):
    """Sliding-window observations with percentiles; Prometheus summary.

    ``window`` bounds memory: only the most recent observations inform
    the quantiles (a service that has been up for a month reports
    *recent* latency, not its lifetime average), while ``_count`` and
    ``_sum`` stay cumulative, so rate math over scrapes still works.

    Edge cases are defined, not accidental: an empty window reports
    ``None`` percentiles (and exposes no quantile samples — valid
    exposition); a single sample is every percentile; past ``window``
    observations the oldest fall out (wraparound).
    """

    kind = "summary"

    #: The quantiles exposed by default.
    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self, name: str, help: str, window: int = 2048):
        super().__init__(name, help, ())
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._window: deque[float] = deque(maxlen=window)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(float(value))
            self.count += 1
            self.sum += float(value)

    def _ordered(self) -> list[float]:
        with self._lock:
            window = list(self._window)
        window.sort()
        return window

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float | None:
        """Nearest-rank percentile over the sorted window."""
        if not ordered:
            return None
        index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return ordered[index]

    def percentile(self, q: float) -> float | None:
        """The ``q``-quantile over the current window (``None`` if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return self._percentile(self._ordered(), q)

    def snapshot(self) -> dict:
        """JSON-safe summary: cumulative count, window percentiles/mean."""
        ordered = self._ordered()
        with self._lock:
            count = self.count
        if not ordered:
            return {
                "count": count,
                "p50": None,
                "p90": None,
                "p99": None,
                "mean": None,
            }
        return {
            "count": count,
            "p50": self._percentile(ordered, 0.50),
            "p90": self._percentile(ordered, 0.90),
            "p99": self._percentile(ordered, 0.99),
            "mean": sum(ordered) / len(ordered),
        }

    def snapshot_ms(self) -> dict:
        """The shape the server's ``stats`` op has always reported
        (seconds in, milliseconds out; ``None`` on an empty window)."""
        raw = self.snapshot()

        def ms(value):
            return round(value * 1000, 3) if value is not None else None

        return {
            "count": raw["count"],
            "p50_ms": ms(raw["p50"]),
            "p90_ms": ms(raw["p90"]),
            "p99_ms": ms(raw["p99"]),
            "mean_ms": ms(raw["mean"]),
        }

    def samples(self):
        ordered = self._ordered()
        with self._lock:
            count, total = self.count, self.sum
        for q in self.QUANTILES:
            value = self._percentile(ordered, q)
            if value is not None:
                yield "", {"quantile": _format_value(q)}, value
        yield "_sum", {}, total
        yield "_count", {}, count


class MetricsRegistry:
    """Every metric of one process, in registration order.

    ``counter``/``gauge``/``histogram`` are create-or-get by name (two
    layers asking for ``requests_total`` share one counter — that is
    the "unified" part), with a type/label mismatch raising instead of
    silently shadowing.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name, help, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                labelnames = kwargs.get("labelnames", ())
                if getattr(existing, "labelnames", ()) != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames=tuple(labelnames))

    def gauge(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames=tuple(labelnames))

    def gauge_fn(self, name: str, help: str, fn) -> Gauge:
        """A callback gauge: ``fn()`` is read at scrape time.

        The bridge from the pre-obs world — existing live counters
        (``pool.tasks_completed``, ``cache.hits``) become metrics
        without moving where they are maintained.
        """
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if isinstance(existing, Gauge) and existing._fn is not None:
                    existing._fn = fn  # re-registering rebinds the source
                    return existing
                raise ValueError(
                    f"metric {name!r} already registered as a non-callback "
                    f"{type(existing).__name__}"
                )
            metric = Gauge(name, help, fn=fn)
            self._metrics[name] = metric
            return metric

    def histogram(self, name: str, help: str, window: int = 2048) -> Histogram:
        return self._register(Histogram, name, help, window=window)

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self):
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def expose(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        blocks = [metric.expose() for metric in self]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def snapshot(self) -> dict:
        """A JSON-safe dump: counters as dicts, gauges as numbers,
        histograms as percentile summaries."""
        out: dict = {}
        for metric in self:
            if isinstance(metric, Counter):
                if metric.labelnames:
                    out[metric.name] = metric.as_dict()
                else:
                    out[metric.name] = metric.value()
            elif isinstance(metric, Histogram):
                out[metric.name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                try:
                    out[metric.name] = metric.value()
                except ValueError:
                    out[metric.name] = None
        return out


#: A light-weight validation of exposition output used by tests and CI
#: (full client libraries are out of bounds for this repo's no-new-deps
#: rule, so the checker lives here instead).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+( [0-9]+)?$"
)


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse Prometheus text exposition into ``{metric: {labels: value}}``.

    Strict enough to catch a malformed exposition (raises
    ``ValueError``), small enough to inline in CI.  Sample keys are the
    rendered label strings (``'{op="solve"}'``; ``''`` for unlabelled).
    """
    series: dict[str, dict] = {}
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {line_no}: bad comment {line!r}")
        if not _SAMPLE_RE.match(line):
            raise ValueError(f"line {line_no}: bad sample {line!r}")
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, labels = name_part.partition("{")
            labels = "{" + labels
        else:
            name, labels = name_part, ""
        value = float(value_part)
        series.setdefault(name, {})[labels] = value
    return series
