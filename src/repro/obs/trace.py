"""Low-overhead in-process tracing: spans, sinks, and propagation.

One request to the duality service crosses a lot of machinery — client
edge, wire framing, scheduler submit, cache lookup, pool queue, a
worker *process*, response serialisation — and until this module the
only record of that journey was a handful of counters.  A **span** is
one named, timed phase of one request; a **trace** is every span that
shares one ``trace_id``.  The design constraints, in order:

* **zero-cost-when-disabled** — with no sink installed and no request
  context active, :func:`span` returns a shared no-op singleton: one
  function call, no allocation, no lock.  Verdicts are never touched
  either way; tracing observes, it does not participate.
* **thread-agnostic** — spans resolve in whatever thread finished the
  work (submitting thread, pool collector thread, asyncio loop), so a
  span carries its full identity (``trace_id``/``span_id``/
  ``parent_id``) instead of relying on ambient state.  Ambient state
  (a :class:`contextvars.ContextVar`) exists purely as a convenience
  for straight-line code; cross-thread propagation is explicit — a
  :class:`SpanContext` rides on the service ticket / pool future.
* **process-crossing** — worker processes cannot share a sink, so a
  worker builds plain span *dicts* (:meth:`Span.to_dict`) and returns
  them piggybacked on its result; the service re-records them.  Spans
  are timed on the wall clock (``time.time()``) precisely so that
  spans from different processes on one machine land on one timeline.

Two sink shapes cover every consumer: the **global sink** (a
ring-buffered :class:`TraceSink`, installed by :func:`enable_tracing`)
for whole-process tracing (``repro trace``, benchmarks), and small
per-request sinks the network server creates so a traced request's
spans can be returned to the client that minted the trace id.

Rendering: :func:`format_tree` prints an indented span tree per trace;
:func:`to_chrome` converts spans to the Chrome trace-event JSON format
(load the file at ``chrome://tracing`` or https://ui.perfetto.dev).
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque


def new_trace_id() -> str:
    """A fresh 64-bit trace id (16 hex chars)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 32-bit span id (8 hex chars)."""
    return os.urandom(4).hex()


class Span:
    """One named, timed phase of one trace.

    ``start``/``end`` are wall-clock epoch seconds (see the module
    docstring for why not ``monotonic``: worker-process spans must land
    on the same timeline as the service's own).  ``tags`` is a small
    flat dict of JSON-safe values.  A span is *recorded* — handed to a
    sink — only when :meth:`finish`\\ ed through the :func:`span`
    context manager or explicitly by its creator.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "tags",
        "pid",
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        parent_id: str | None = None,
        span_id: str | None = None,
        start: float | None = None,
        tags: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start = start if start is not None else time.time()
        self.end: float | None = None
        self.tags = tags if tags is not None else {}
        self.pid = os.getpid()

    def finish(self, end: float | None = None) -> "Span":
        if self.end is None:
            self.end = end if end is not None else time.time()
        return self

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def set_tag(self, key: str, value) -> None:
        self.tags[key] = value

    def to_dict(self) -> dict:
        """A JSON-safe dict (the wire/worker form; lossless round trip)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "tags": dict(self.tags),
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (worker/wire spans)."""
        span = cls(
            trace_id=str(payload["trace_id"]),
            name=str(payload["name"]),
            parent_id=payload.get("parent_id"),
            span_id=str(payload["span_id"]),
            start=float(payload["start"]),
            tags=dict(payload.get("tags") or {}),
        )
        end = payload.get("end")
        span.end = float(end) if end is not None else None
        pid = payload.get("pid")
        if pid is not None:
            span.pid = int(pid)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration_s * 1000:.3f}ms)"
        )


class TraceSink:
    """A thread-safe ring buffer of finished spans.

    Bounded so an always-on tracer cannot grow without limit: past
    ``maxlen`` the oldest spans fall off (``dropped`` counts them).
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._spans: deque[Span] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.dropped = 0

    def record(self, span: Span) -> None:
        with self._lock:
            if (
                self._spans.maxlen is not None
                and len(self._spans) == self._spans.maxlen
            ):
                self.dropped += 1
            self._spans.append(span)

    def extend(self, spans) -> None:
        """Record many spans (e.g. a worker's piggybacked span dicts)."""
        for span in spans:
            if isinstance(span, dict):
                span = Span.from_dict(span)
            self.record(span)

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """A snapshot, oldest first (optionally one trace only)."""
        with self._lock:
            snapshot = list(self._spans)
        if trace_id is None:
            return snapshot
        return [span for span in snapshot if span.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in the buffer, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class SpanContext:
    """Where the *next* span belongs: trace id, parent span id, sink.

    The explicit cross-thread propagation handle — cheap enough to ride
    on every ticket/future of a traced request, and deliberately *not*
    picklable as a whole (the sink stays in the service process; only
    ``wire()``'s id pair crosses to workers).
    """

    __slots__ = ("trace_id", "span_id", "sink")

    def __init__(
        self, trace_id: str, span_id: str | None, sink: TraceSink
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sink = sink

    def wire(self) -> tuple[str, str | None]:
        """The picklable ``(trace_id, parent_span_id)`` pair for workers."""
        return (self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


# ---------------------------------------------------------------------------
# Ambient state: the global sink and the contextvar
# ---------------------------------------------------------------------------

_GLOBAL_SINK: TraceSink | None = None

_CTX: contextvars.ContextVar[SpanContext | None] = contextvars.ContextVar(
    "repro_obs_span_context", default=None
)


def enable_tracing(maxlen: int = 4096) -> TraceSink:
    """Install (or replace) the process-global span sink; returns it.

    With a global sink installed, :func:`span` records even without an
    explicit or ambient context — each orphan span starts a new trace.
    """
    global _GLOBAL_SINK
    _GLOBAL_SINK = TraceSink(maxlen=maxlen)
    return _GLOBAL_SINK


def disable_tracing() -> None:
    """Remove the global sink; :func:`span` returns to no-op (the default)."""
    global _GLOBAL_SINK
    _GLOBAL_SINK = None


def tracing_enabled() -> bool:
    return _GLOBAL_SINK is not None


def global_sink() -> TraceSink | None:
    return _GLOBAL_SINK


def current_context() -> SpanContext | None:
    """The ambient span context of this thread/task (or ``None``)."""
    return _CTX.get()


class _NullSpan:
    """The shared no-op standing in for a span while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set_tag(self, key: str, value) -> None:
        pass

    def finish(self, end: float | None = None) -> "_NullSpan":
        return self

    span_id = None
    trace_id = None
    duration_s = 0.0


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span and scoping the ambient context."""

    __slots__ = ("span", "_sink", "_token")

    def __init__(self, span: Span, sink: TraceSink) -> None:
        self.span = span
        self._sink = sink
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CTX.set(
            SpanContext(self.span.trace_id, self.span.span_id, self._sink)
        )
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if self._token is not None:
            _CTX.reset(self._token)
        if exc_type is not None:
            self.span.tags.setdefault("error", exc_type.__name__)
        self.span.finish()
        self._sink.record(self.span)
        return False


def span(name: str, ctx: SpanContext | None = None, **tags):
    """Open one span: ``with span("cache-lookup") as s: ...``.

    Parent resolution, in order: the explicit ``ctx``, the ambient
    context (set by an enclosing ``span``), the global sink (a new
    root trace per orphan span).  With none of the three, the shared
    :data:`NULL_SPAN` comes back — no allocation, no recording.
    """
    if ctx is None:
        ctx = _CTX.get()
        if ctx is None:
            sink = _GLOBAL_SINK
            if sink is None:
                return NULL_SPAN
            ctx = SpanContext(new_trace_id(), None, sink)
    return _ActiveSpan(
        Span(ctx.trace_id, name, parent_id=ctx.span_id, tags=tags or None),
        ctx.sink,
    )


def record_span(
    ctx: SpanContext,
    name: str,
    start: float,
    end: float,
    span_id: str | None = None,
    **tags,
) -> Span:
    """Record one already-timed phase under ``ctx`` (completion threads).

    For code that measured a phase with plain timestamps — because the
    phase started in one thread and ended in another — and only later
    knows it belongs to a traced request.
    """
    recorded = Span(
        ctx.trace_id,
        name,
        parent_id=ctx.span_id,
        span_id=span_id,
        start=start,
        tags=tags or None,
    )
    recorded.finish(end)
    ctx.sink.record(recorded)
    return recorded


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def format_tree(spans: list[Span]) -> str:
    """An indented per-trace span tree with durations and tags.

    Orphans (spans whose parent never reached this sink — e.g. the
    client-side parent of a server-recorded subtree) are treated as
    roots, so a partial trace still renders instead of vanishing.
    """
    if not spans:
        return "(no spans recorded)"
    by_trace: dict[str, list[Span]] = {}
    for item in spans:
        by_trace.setdefault(item.trace_id, []).append(item)
    lines: list[str] = []
    for trace_id, members in by_trace.items():
        ids = {member.span_id for member in members}
        children: dict[str | None, list[Span]] = {}
        roots: list[Span] = []
        for member in members:
            if member.parent_id in ids:
                children.setdefault(member.parent_id, []).append(member)
            else:
                roots.append(member)
        roots.sort(key=lambda item: item.start)
        lines.append(f"trace {trace_id} ({len(members)} spans)")

        def walk(node: Span, depth: int) -> None:
            tag_text = ""
            if node.tags:
                inner = ", ".join(
                    f"{key}={value}" for key, value in sorted(node.tags.items())
                )
                tag_text = f"  [{inner}]"
            lines.append(
                f"{'  ' * depth}- {node.name}  "
                f"{node.duration_s * 1000:.3f}ms{tag_text}"
            )
            for child in sorted(
                children.get(node.span_id, []), key=lambda item: item.start
            ):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 1)
    return "\n".join(lines)


def to_chrome(spans: list[Span]) -> dict:
    """Spans as Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

    Complete events (``ph: "X"``) with microsecond timestamps; the
    trace and span ids ride in ``args`` so the tree survives tools that
    only show the flat timeline.
    """
    events = []
    for item in spans:
        events.append(
            {
                "name": item.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(item.start * 1_000_000, 3),
                "dur": round(item.duration_s * 1_000_000, 3),
                "pid": item.pid,
                "tid": item.pid,
                "args": {
                    "trace_id": item.trace_id,
                    "span_id": item.span_id,
                    "parent_id": item.parent_id,
                    **item.tags,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome(spans: list[Span], path) -> None:
    """Write :func:`to_chrome` output to ``path`` as JSON."""
    from pathlib import Path

    Path(path).write_text(
        json.dumps(to_chrome(spans), indent=1) + "\n", encoding="utf-8"
    )
