"""Observability for the duality service: tracing, metrics, timings.

Three small, dependency-free modules that every tier registers into:

* :mod:`repro.obs.trace` — spans with trace-id propagation across
  threads, processes, and the wire (zero-cost when disabled);
* :mod:`repro.obs.metrics` — a unified counter/gauge/histogram
  registry with Prometheus text exposition;
* :mod:`repro.obs.timings` — append-only JSONL capture of per-engine
  elapsed time plus structural features (the learned-engine-selection
  data feed).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.timings import TimingLog, load_timings, structural_features
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanContext,
    TraceSink,
    current_context,
    disable_tracing,
    dump_chrome,
    enable_tracing,
    format_tree,
    global_sink,
    new_span_id,
    new_trace_id,
    record_span,
    span,
    to_chrome,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
    "TimingLog",
    "load_timings",
    "structural_features",
    "NULL_SPAN",
    "Span",
    "SpanContext",
    "TraceSink",
    "current_context",
    "disable_tracing",
    "dump_chrome",
    "enable_tracing",
    "format_tree",
    "global_sink",
    "new_span_id",
    "new_trace_id",
    "record_span",
    "span",
    "to_chrome",
    "tracing_enabled",
]
