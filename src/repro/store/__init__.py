"""Durable verdict + timing store (ROADMAP direction 1).

An append-only fsync'd journal (O(1) per verdict, crash-safe) compacted
into SQLite in WAL mode (multi-process readers, single writer) — the
system of record behind :class:`~repro.parallel.batch.ResultCache`'s
pluggable backend, the service's persistence, and the net server's
autosave.  See :mod:`repro.store.verdict_store` for the design notes.
"""

from repro.store.verdict_store import (
    AUTO_COMPACT_BYTES,
    StoreTimingLog,
    VerdictStore,
)

__all__ = ["AUTO_COMPACT_BYTES", "StoreTimingLog", "VerdictStore"]
