"""The durable verdict store: journal-append persistence over SQLite.

The pre-PR-8 persistence story was :meth:`ResultCache.save`: every
autosave re-serialised the *entire* cache and atomically replaced the
JSON file — O(cache) work per flush, O(n²) over a session that computes
n verdicts, and fundamentally single-process (two servers saving the
same file overwrite each other's verdicts).  :class:`VerdictStore`
replaces that contract with two cooperating layers:

* an **append-only JSONL journal** (``<path>.journal``) — each
  :meth:`put` appends one self-contained line with a single
  ``os.write`` under an ``flock`` and fsyncs it.  O(1) per verdict, and
  crash-safe by construction: ``kill -9`` mid-append can only lose the
  partial last line, never a verdict that was already flushed;

* a **SQLite database in WAL mode** (``<path>``) — the queryable system
  of record.  WAL gives multi-process readers plus a single writer for
  free, so N server processes can share one store file; the journal is
  replayed into it (idempotently — ``INSERT OR REPLACE`` keyed on
  ``instance_key``) at open and on :meth:`compact`, after which the
  journal is truncated.

Verdicts are keyed by :func:`~repro.hypergraph.instance_key` — the
labelled, engine-bound key that the answer path *must* use, because
certificates mention labelled vertices.  A secondary
``canonical_digest`` column stores the structural
:func:`~repro.hypergraph.pair_digest`, so label-renamed isomorphic
instances can be recognised (:meth:`get_structural` answers "what was
the verdict for this shape?") — an index for analytics and the learned
engine selection of ROADMAP direction 3, deliberately *not* wired into
the solve path: a structural hit could only reuse the verdict, never
the certificate, and the service's contract is bit-for-bit serial
results, certificate included.

Per-engine timings (the :class:`~repro.obs.timings.TimingLog` schema)
land in a ``timings`` table of the same database via
:meth:`record_timing` / :meth:`timing_log`, making the store the single
system of record ROADMAP directions 2 and 3 ask for.

Degradation rules mirror the cache's: a corrupt database or journal is
quarantined (renamed aside with a warning) and the store opens empty —
damage costs recomputation, never a wrong answer and never a refusal to
start.  A legacy ``cache.json`` at the store path is detected by
content sniffing and imported automatically, with the original kept as
``<path>.legacy``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import warnings
from pathlib import Path

try:  # pragma: no cover - always present on the POSIX targets CI runs
    import fcntl
except ImportError:  # pragma: no cover - windows fallback: in-process only
    fcntl = None

from repro.duality.result import DualityResult, Verdict
from repro.parallel.batch import result_from_json, result_to_json

_SQLITE_MAGIC = b"SQLite format 3\x00"

#: Journal size (bytes) past which a put triggers an inline compaction.
AUTO_COMPACT_BYTES = 8 << 20

_SCHEMA = """
CREATE TABLE IF NOT EXISTS verdicts (
    instance_key     TEXT PRIMARY KEY,
    canonical_digest TEXT,
    method           TEXT NOT NULL,
    verdict          TEXT NOT NULL,
    kind             TEXT,
    witness          TEXT NOT NULL,
    detail           TEXT NOT NULL,
    cert_path        TEXT NOT NULL,
    created_ts       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS verdicts_by_digest
    ON verdicts (canonical_digest);
CREATE TABLE IF NOT EXISTS timings (
    ts        REAL NOT NULL,
    engine    TEXT NOT NULL,
    elapsed_s REAL NOT NULL,
    dual      INTEGER,
    trace_id  TEXT,
    features  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def _flock(fd: int, op: int) -> None:
    if fcntl is not None:
        fcntl.flock(fd, op)


class StoreTimingLog:
    """A :class:`~repro.obs.timings.TimingLog`-shaped recorder writing
    to the store's ``timings`` table.

    Drop-in for every ``timings=`` parameter in the service and net
    layers: same :meth:`record` signature, same ``records_written``
    counter, and a :meth:`close` that is a no-op because the store owns
    the database connection.
    """

    def __init__(self, store: "VerdictStore") -> None:
        self.store = store
        self.path = store.path
        self.records_written = 0
        self._lock = threading.Lock()

    def record(
        self,
        engine: str,
        elapsed_s: float,
        *,
        features: dict | None = None,
        dual=None,
        shard=None,
        trace_id: str | None = None,
        **extra,
    ) -> None:
        merged = dict(features) if features else {}
        if shard is not None:
            merged["shard"] = shard
        if extra:
            merged.update(extra)
        self.store.record_timing(
            engine, elapsed_s, features=merged, dual=dual, trace_id=trace_id
        )
        with self._lock:
            self.records_written += 1

    def close(self) -> None:
        """No-op: the store's connection outlives any one recorder."""

    def __enter__(self) -> "StoreTimingLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class VerdictStore:
    """Durable, multi-process verdict + timing store (journal → SQLite).

    Open it on a path; the database lives at ``path`` and the journal
    at ``path + ".journal"``.  The store is thread-safe (one internal
    connection guarded by a lock, WAL-mode readers in other processes
    never block on it) and safe to share between processes: appends are
    ``flock``-serialised and replay is idempotent.

    It implements the :class:`~repro.parallel.batch.ResultCache`
    backend protocol — ``get(key)`` / ``put(key, result, digest=)`` —
    so plugging it in is ``ResultCache(backend=VerdictStore(path))``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        auto_compact_bytes: int = AUTO_COMPACT_BYTES,
    ) -> None:
        self.path = os.fspath(path)
        self.journal_path = self.path + ".journal"
        self.auto_compact_bytes = auto_compact_bytes
        self._lock = threading.RLock()  # guards the sqlite connection
        self._journal_fd: int | None = None
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.structural_hits = 0
        #: Entries imported from a legacy ``cache.json`` found at the
        #: store path on open (0 when the file was already a database).
        self.imported = 0
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        legacy = self._sniff_legacy()
        self._conn = self._open_db()
        if legacy is not None:
            self.imported = self.import_entries(legacy)
        # Crash leftovers from any previous writer: fold the journal in
        # and (if nobody else is mid-write) start with it empty.
        self.compact()

    # ------------------------------------------------------------------
    # Opening: content sniffing, legacy import, corruption quarantine
    # ------------------------------------------------------------------

    def _sniff_legacy(self) -> dict | None:
        """Ensure ``self.path`` is absent, empty, or a SQLite database.

        A legacy ``ResultCache.save`` JSON file is moved aside to
        ``<path>.legacy`` and its entries returned for import; anything
        else that is not SQLite is quarantined to ``<path>.corrupt``
        with a warning (degrade to misses, never refuse to start).
        """
        try:
            with open(self.path, "rb") as fh:
                head = fh.read(len(_SQLITE_MAGIC))
        except OSError:
            return None
        if not head or head.startswith(_SQLITE_MAGIC):
            return None
        try:
            payload = json.loads(Path(self.path).read_text(encoding="utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("legacy cache must be a JSON object")
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            self._quarantine(f"unreadable ({exc})")
            return None
        os.replace(self.path, self.path + ".legacy")
        return payload

    def _quarantine(self, why: str) -> None:
        warnings.warn(
            f"verdict store {self.path} is {why}; moving it aside to "
            f"{self.path}.corrupt and starting empty (cached verdicts "
            f"degrade to misses)",
            RuntimeWarning,
            stacklevel=3,
        )
        try:
            os.replace(self.path, self.path + ".corrupt")
        except OSError:  # pragma: no cover - already gone
            pass

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path,
            timeout=30.0,
            check_same_thread=False,
            isolation_level=None,  # autocommit; txns are explicit
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        return conn

    def _open_db(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            # Truncated/garbled database (the sniff only checks the
            # first page's magic): same quarantine rule.
            self._quarantine("not a readable SQLite database")
            return self._connect()

    # ------------------------------------------------------------------
    # The write path: fsync'd journal append + WAL insert
    # ------------------------------------------------------------------

    def _journal(self) -> int:
        if self._journal_fd is None:
            self._journal_fd = os.open(
                self.journal_path,
                os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                0o644,
            )
        return self._journal_fd

    def put(
        self, key: str, result: DualityResult, digest: str | None = None
    ) -> bool:
        """Persist one verdict durably; False if its witness has no
        JSON encoding (user-defined vertex types — the same entries a
        :meth:`ResultCache.save` would silently skip)."""
        entry = result_to_json(result)
        if entry is None:
            return False
        self.put_entry(key, entry, digest=digest)
        return True

    def put_entry(
        self, key: str, entry: dict, digest: str | None = None
    ) -> None:
        """Persist one already-encoded entry (the wire/cache JSON shape).

        The journal line is fsynced before the database insert, so the
        persist-before-resolve guarantee holds even if the process dies
        between the two: the next open replays the journal.
        """
        line = (
            json.dumps(
                {"key": key, "digest": digest, "entry": entry},
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        with self._lock:
            fd = self._journal()
            _flock(fd, fcntl.LOCK_EX if fcntl else 0)
            try:
                os.write(fd, line)
                os.fsync(fd)
                size = os.fstat(fd).st_size
            finally:
                _flock(fd, fcntl.LOCK_UN if fcntl else 0)
            self._insert(key, digest, entry)
            self.puts += 1
        if size >= self.auto_compact_bytes:
            self.compact()

    def _insert(self, key: str, digest: str | None, entry: dict) -> None:
        # Caller holds self._lock.  witness/cert_path are stored as JSON
        # text (including "null") so NULL never has to disambiguate
        # "no witness" from "no column".
        self._conn.execute(
            "INSERT OR REPLACE INTO verdicts "
            "(instance_key, canonical_digest, method, verdict, kind, "
            " witness, detail, cert_path, created_ts) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                digest,
                entry.get("method", ""),
                entry["verdict"],
                entry.get("kind"),
                json.dumps(entry.get("witness")),
                entry.get("detail", ""),
                json.dumps(entry.get("path")),
                time.time(),
            ),
        )

    # ------------------------------------------------------------------
    # The read path
    # ------------------------------------------------------------------

    def get(self, key: str) -> DualityResult | None:
        """The stored result for ``key`` (labelled, engine-bound match)."""
        entry = self.get_entry(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return result_from_json(entry)

    def get_entry(self, key: str) -> dict | None:
        """The raw JSON entry for ``key`` (no hit/miss accounting)."""
        row = self._select(key)
        if row is None and self._replay_journal():
            # A crashed writer may have journal lines nobody folded in
            # yet; replay is idempotent and cheap when the journal is
            # empty (the steady state — live writers insert directly).
            row = self._select(key)
        if row is None:
            return None
        return self._row_to_entry(row)

    def _select(self, key: str):
        with self._lock:
            return self._conn.execute(
                "SELECT method, verdict, kind, witness, detail, cert_path "
                "FROM verdicts WHERE instance_key = ?",
                (key,),
            ).fetchone()

    @staticmethod
    def _row_to_entry(row) -> dict:
        method, verdict, kind, witness, detail, cert_path = row
        return {
            "method": method,
            "verdict": verdict,
            "kind": kind,
            "witness": json.loads(witness),
            "detail": detail,
            "path": json.loads(cert_path),
        }

    def get_structural(self, digest: str) -> Verdict | None:
        """The verdict recorded for this *structure*, if any.

        Keyed on :func:`~repro.hypergraph.pair_digest`: a hit means a
        label-renamed isomorphic twin of the instance was solved
        before.  Only the verdict is returned — certificates are
        labelled sets, so they can never be reused across labellings,
        which is why this lookup is advisory (analytics, engine
        selection) and not part of the solve answer path.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT verdict FROM verdicts "
                "WHERE canonical_digest = ? LIMIT 1",
                (digest,),
            ).fetchone()
        if row is None:
            return None
        self.structural_hits += 1
        return Verdict(row[0])

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM verdicts"
            ).fetchone()
        return int(count)

    def __contains__(self, key: str) -> bool:
        return self._select(key) is not None

    # ------------------------------------------------------------------
    # Journal replay and compaction
    # ------------------------------------------------------------------

    def _replay_journal(self, locked: bool = False) -> int:
        """Fold every complete journal line into the database.

        Idempotent (``INSERT OR REPLACE``); malformed complete lines
        are skipped with one warning, a partial trailing line (a
        ``kill -9`` mid-append) is silently ignored — that verdict was
        never acknowledged to anyone.  ``locked=True`` means the caller
        already holds the journal's exclusive ``flock`` (compaction) —
        taking the shared lock here would self-deadlock: ``flock`` is
        per open file description, and this read uses a fresh one.
        """
        try:
            with open(self.journal_path, "rb") as fh:
                if not locked:
                    _flock(fh.fileno(), fcntl.LOCK_SH if fcntl else 0)
                try:
                    data = fh.read()
                finally:
                    if not locked:
                        _flock(fh.fileno(), fcntl.LOCK_UN if fcntl else 0)
        except OSError:
            return 0
        if not data:
            return 0
        replayed = 0
        malformed = 0
        with self._lock:
            self._conn.execute("BEGIN")
            try:
                for raw in data.split(b"\n")[:-1]:  # drop the partial tail
                    if not raw.strip():
                        continue
                    try:
                        record = json.loads(raw)
                        key = record["key"]
                        entry = record["entry"]
                        entry["verdict"]  # noqa: B018 - shape check
                    except (ValueError, KeyError, TypeError):
                        malformed += 1
                        continue
                    self._insert(key, record.get("digest"), entry)
                    replayed += 1
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        if malformed:
            warnings.warn(
                f"verdict store journal {self.journal_path}: skipped "
                f"{malformed} malformed line(s); the affected verdicts "
                f"degrade to misses",
                RuntimeWarning,
                stacklevel=3,
            )
        return replayed

    def compact(self) -> int:
        """Fold the journal into SQLite, checkpoint the WAL, truncate.

        Returns how many journal lines were folded in.  Safe against
        concurrent writers in other processes: the truncate happens
        under the same ``flock`` appends take, on the shared inode (so
        their ``O_APPEND`` descriptors stay valid), and only after a
        full WAL checkpoint — if another process holds the WAL busy the
        journal is simply kept for the next compaction.
        """
        with self._lock:
            fd = self._journal()
            _flock(fd, fcntl.LOCK_EX if fcntl else 0)
            try:
                replayed = self._replay_journal(locked=True)
                try:
                    busy = self._conn.execute(
                        "PRAGMA wal_checkpoint(FULL)"
                    ).fetchone()[0]
                except sqlite3.OperationalError:
                    busy = 1
                if not busy:
                    os.ftruncate(fd, 0)
            finally:
                _flock(fd, fcntl.LOCK_UN if fcntl else 0)
        return replayed

    # ------------------------------------------------------------------
    # Legacy import
    # ------------------------------------------------------------------

    def import_entries(self, payload: dict) -> int:
        """Insert a ``ResultCache.save``-shaped ``{key: entry}`` dict.

        Entries that do not look like verdict entries are skipped; the
        count of imported rows is returned.  Existing keys are
        overwritten — an import is declared truth.
        """
        imported = 0
        with self._lock:
            self._conn.execute("BEGIN")
            try:
                for key, entry in payload.items():
                    if not (
                        isinstance(key, str)
                        and isinstance(entry, dict)
                        and "verdict" in entry
                    ):
                        continue
                    self._insert(key, None, entry)
                    imported += 1
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return imported

    def import_json(self, path: str | os.PathLike) -> int:
        """Import a legacy ``cache.json`` file into the store."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(
                f"{os.fspath(path)} does not hold a JSON object cache"
            )
        return self.import_entries(payload)

    # ------------------------------------------------------------------
    # Timings
    # ------------------------------------------------------------------

    def record_timing(
        self,
        engine: str,
        elapsed_s: float,
        *,
        features: dict | None = None,
        dual=None,
        trace_id: str | None = None,
    ) -> None:
        """One per-engine timing row (the ``TimingLog`` schema)."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO timings (ts, engine, elapsed_s, dual, "
                "trace_id, features) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    time.time(),
                    engine,
                    round(float(elapsed_s), 9),
                    None if dual is None else int(bool(dual)),
                    trace_id,
                    json.dumps(features or {}, separators=(",", ":")),
                ),
            )

    def timing_log(self) -> StoreTimingLog:
        """A ``TimingLog``-shaped recorder writing into this store."""
        return StoreTimingLog(self)

    def load_timings(self, engine: str | None = None) -> list[dict]:
        """Timing rows back as flat dicts (``TimingLog`` line shape)."""
        query = (
            "SELECT ts, engine, elapsed_s, dual, trace_id, features "
            "FROM timings"
        )
        params: tuple = ()
        if engine is not None:
            query += " WHERE engine = ?"
            params = (engine,)
        with self._lock:
            rows = self._conn.execute(query + " ORDER BY ts", params).fetchall()
        out = []
        for ts, eng, elapsed_s, dual, trace_id, features in rows:
            row = {"ts": ts, "engine": eng, "elapsed_s": elapsed_s}
            if dual is not None:
                row["dual"] = bool(dual)
            if trace_id is not None:
                row["trace_id"] = trace_id
            try:
                row.update(json.loads(features))
            except ValueError:  # pragma: no cover - we wrote it
                pass
            out.append(row)
        return out

    def timings_recorded(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM timings"
            ).fetchone()
        return int(count)

    def timings_by_engine(self) -> dict[str, int]:
        """Timing-row counts per engine — how much training signal each
        engine has contributed (``repro store stats`` surfaces this so
        users can judge whether a model fit is worth running)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT engine, COUNT(*) FROM timings "
                "GROUP BY engine ORDER BY engine"
            ).fetchall()
        return {engine: int(count) for engine, count in rows}

    def feature_coverage(self) -> float | None:
        """The fraction of timing rows that carry structural features
        (rows without features cannot train the selector).  ``None``
        when no timings are recorded."""
        with self._lock:
            total, featured = self._conn.execute(
                "SELECT COUNT(*), "
                "SUM(CASE WHEN features IS NOT NULL AND features != '' "
                "AND features != '{}' THEN 1 ELSE 0 END) FROM timings"
            ).fetchone()
        if not total:
            return None
        return round(int(featured or 0) / int(total), 4)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def journal_bytes(self) -> int:
        try:
            return os.stat(self.journal_path).st_size
        except OSError:
            return 0

    def stats(self) -> dict:
        return {
            "path": self.path,
            "entries": len(self),
            "timings": self.timings_recorded(),
            "timings_by_engine": self.timings_by_engine(),
            "feature_coverage": self.feature_coverage(),
            "journal_bytes": self.journal_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "structural_hits": self.structural_hits,
            "imported": self.imported,
        }

    def register_metrics(self, registry) -> None:
        """Expose the store's counters as callback gauges (the same
        pattern :meth:`ResultCache.register_metrics` uses)."""
        registry.gauge_fn(
            "store_entries", "Verdicts in the durable store", lambda: len(self)
        )
        registry.gauge_fn(
            "store_puts_total", "Verdicts persisted", lambda: self.puts
        )
        registry.gauge_fn(
            "store_journal_bytes",
            "Uncompacted journal size",
            lambda: self.journal_bytes(),
        )

    def close(self) -> None:
        """Compact if possible, then release the connection and journal
        descriptor.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self.compact()
        except sqlite3.Error:  # pragma: no cover - best-effort flush
            pass
        with self._lock:
            self._conn.close()
            if self._journal_fd is not None:
                os.close(self._journal_fd)
                self._journal_fd = None

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
