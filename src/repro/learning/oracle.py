"""Membership oracles over monotone Boolean functions.

A membership oracle answers "is ``f(X) = 1``?" for a hidden monotone
function ``f : 2^V → {0, 1}``.  The learner of
:mod:`repro.learning.exact` sees *only* this interface, so anything that
behaves monotonely can be learned: an explicit DNF/CNF, a hypergraph
read as a DNF, or the *infrequency* predicate of a data relation (the
bridge to Prop. 1.1 — infrequency is monotone because supersets of an
infrequent itemset are infrequent).

The oracle counts queries and memoises answers, so the recorded
``query_count`` is the number of *distinct* points the learner needed —
the quantity the learning-theory bounds speak about.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro._util import powerset, vertex_key
from repro.errors import ReproError, VertexError
from repro.hypergraph.hypergraph import Hypergraph


class NotMonotoneError(ReproError):
    """A claimed-monotone oracle returned ``f(A) = 1, f(B) = 0`` with ``A ⊆ B``."""


class MembershipOracle:
    """Query-counting, memoising wrapper around a monotone predicate.

    Parameters
    ----------
    fn:
        The hidden function, mapping a ``frozenset`` of variables (the
        true-set of the assignment) to ``bool``.
    universe:
        The variable universe ``V``; queries must stay inside it.
    name:
        Optional label for reports.
    """

    def __init__(
        self,
        fn: Callable[[frozenset], bool],
        universe: Iterable,
        name: str = "oracle",
    ) -> None:
        self._fn = fn
        self._universe = frozenset(universe)
        self._cache: dict[frozenset, bool] = {}
        self._queries = 0
        self.name = name

    @property
    def universe(self) -> frozenset:
        """The variable universe ``V``."""
        return self._universe

    @property
    def query_count(self) -> int:
        """Number of distinct points queried so far."""
        return self._queries

    def query(self, point: Iterable) -> bool:
        """``f(point)``, counting and memoising the call."""
        x = frozenset(point)
        if not x <= self._universe:
            extra = sorted(x - self._universe, key=vertex_key)
            raise VertexError(f"query outside the oracle universe: {extra}")
        if x not in self._cache:
            self._cache[x] = bool(self._fn(x))
            self._queries += 1
        return self._cache[x]

    def reset_counter(self) -> None:
        """Zero the query counter and forget memoised answers."""
        self._cache.clear()
        self._queries = 0

    def check_monotone_exhaustive(self) -> bool:
        """Exhaustively verify monotonicity (2^|V| queries — tests only).

        Raises :class:`NotMonotoneError` on the first violating pair.
        """
        points = list(powerset(self._universe))
        values = {p: self.query(p) for p in points}
        for a in points:
            if not values[a]:
                continue
            for v in self._universe - a:
                b = a | {v}
                if not values[frozenset(b)]:
                    raise NotMonotoneError(
                        f"f({sorted(a, key=vertex_key)}) = 1 but "
                        f"f({sorted(b, key=vertex_key)}) = 0"
                    )
        return True

    def spot_check_monotone(self, witness_true: Iterable, superset: Iterable) -> None:
        """Cheap sanity check: a superset of a true point must be true."""
        if self.query(witness_true) and not self.query(superset):
            raise NotMonotoneError(
                "oracle violated monotonicity on a spot-checked pair"
            )

    # ------------------------------------------------------------------
    # Constructors for the standard function sources
    # ------------------------------------------------------------------

    @classmethod
    def from_dnf(cls, dnf) -> "MembershipOracle":
        """Oracle for an explicit :class:`~repro.dnf.MonotoneDNF`."""
        return cls(dnf.evaluate, dnf.variables, name="dnf")

    @classmethod
    def from_cnf(cls, cnf) -> "MembershipOracle":
        """Oracle for an explicit :class:`~repro.logic.MonotoneCNF`."""
        return cls(cnf.evaluate, cnf.variables, name="cnf")

    @classmethod
    def from_hypergraph(cls, hg: Hypergraph) -> "MembershipOracle":
        """Oracle for a hypergraph read as a DNF: true iff ⊇ some edge."""
        edges = hg.edges

        def covers(point: frozenset) -> bool:
            return any(edge <= point for edge in edges)

        return cls(covers, hg.vertices, name="hypergraph-dnf")

    @classmethod
    def from_transversal_predicate(cls, hg: Hypergraph) -> "MembershipOracle":
        """Oracle for "is the point a transversal of ``hg``?" (a CNF view)."""
        edges = hg.edges

        def traverses(point: frozenset) -> bool:
            return all(edge & point for edge in edges)

        return cls(traverses, hg.vertices, name="transversal")

    @classmethod
    def from_infrequency(cls, relation, z: int) -> "MembershipOracle":
        """Oracle for itemset *infrequency* — the Prop. 1.1 instance.

        ``f(U) = 1`` iff ``U`` is infrequent in the relation at strict
        threshold ``z``.  Supersets of infrequent sets are infrequent, so
        ``f`` is monotone; its minimal true points are ``IS⁻`` and its
        maximal false points are ``IS⁺``.
        """
        from repro.itemsets.frequency import is_frequent, validate_threshold

        validate_threshold(relation, z)

        def infrequent(point: frozenset) -> bool:
            return not is_frequent(relation, point, z)

        return cls(infrequent, relation.items, name=f"infrequency(z={z})")
