"""Exact learning of monotone Boolean functions with membership queries.

Section 1 of the paper lists "learning monotone Boolean CNFs and DNFs
with membership queries [26]" among the applications of ``Dual``.  The
algorithm of Gunopulos–Khardon–Mannila–Toivonen reconstructs an unknown
monotone function ``f`` from membership queries alone by maintaining the
two borders of ``f``:

* the **minimal true points** (= prime implicants = the DNF), and
* the **maximal false points** (whose complements are the prime
  implicates = the CNF),

and repeatedly asking a ``Dual`` engine whether the partial borders are
already complete — the *same* loop as frequent-itemset border mining
(Prop. 1.1); the itemset case is the instance where ``f(U) = 1`` iff
``U`` is infrequent.

Public surface:

* :class:`MembershipOracle` — query-counting wrapper around any monotone
  function (:mod:`repro.learning.oracle`);
* :func:`learn_monotone_function` — the GKMT learner
  (:mod:`repro.learning.exact`), returning a :class:`LearnedFunction`
  with both normal forms and the full query/check accounting.
"""

from repro.learning.oracle import MembershipOracle, NotMonotoneError
from repro.learning.exact import (
    LearnedFunction,
    LearningTrace,
    learn_monotone_function,
    maximize_false_point,
    minimize_true_point,
)

__all__ = [
    "LearnedFunction",
    "LearningTrace",
    "MembershipOracle",
    "NotMonotoneError",
    "learn_monotone_function",
    "maximize_false_point",
    "minimize_true_point",
]
