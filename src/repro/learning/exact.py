"""The GKMT exact learner: monotone functions from membership queries.

The algorithm (ref [26] of the paper) maintains two genuine partial
borders of the hidden monotone function ``f``:

* ``MTP`` — minimal true points found so far (each verified minimal by
  greedy shrinking under the oracle);
* ``MFP`` — maximal false points found so far (each verified maximal by
  greedy growing).

The completeness test is a ``Dual`` instance: the borders are complete
iff ``MTP = tr(MFPᶜ)`` where ``MFPᶜ = {V − m : m ∈ MFP}`` — a point is
true iff it is contained in no maximal false point iff it meets every
complement.  When the engine refutes duality, its witness is converted
into an *uncovered* point ``X`` (``X ⊆`` no known false maximum, ``⊇``
no known true minimum); one oracle query on ``X`` decides which border
grows, and a greedy pass lands on a *new* border element.  Every
iteration therefore adds exactly one border point, so the loop runs
``|MTP| + |MFP|`` times, with query cost ``O(|V|)`` per iteration plus
one duality check — the learning-theoretic content of Prop. 1.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import vertex_key
from repro.dnf.formula import MonotoneDNF
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.operations import complement_family
from repro.hypergraph.transversal import is_transversal, transversal_hypergraph
from repro.duality.engine import DEFAULT_METHOD, decide_duality
from repro.duality.result import DualityResult
from repro.duality.witness import WitnessRole, classify_witness
from repro.learning.oracle import MembershipOracle
from repro.logic.cnf import MonotoneCNF


def minimize_true_point(oracle: MembershipOracle, point) -> frozenset:
    """Greedily shrink a true point to a minimal true point (≤ |point| queries).

    Scans vertices in the deterministic library order and drops each one
    whose removal keeps the point true.
    """
    x = frozenset(point)
    if not oracle.query(x):
        raise ValueError("minimize_true_point needs a true starting point")
    for v in sorted(x, key=vertex_key):
        candidate = x - {v}
        if oracle.query(candidate):
            x = candidate
    return x


def maximize_false_point(oracle: MembershipOracle, point) -> frozenset:
    """Greedily grow a false point to a maximal false point (≤ |V| queries)."""
    x = frozenset(point)
    if oracle.query(x):
        raise ValueError("maximize_false_point needs a false starting point")
    for v in sorted(oracle.universe - x, key=vertex_key):
        candidate = x | {v}
        if not oracle.query(candidate):
            x = candidate
    return x


@dataclass
class LearningTrace:
    """Per-iteration log: which border grew, by which point, at what cost."""

    steps: list[tuple[str, frozenset, int]] = field(default_factory=list)

    def additions(self) -> int:
        return len(self.steps)


@dataclass
class LearnedFunction:
    """The learner's output: both borders, both normal forms, and the bill.

    Attributes
    ----------
    minimal_true_points / maximal_false_points:
        The complete borders, as hypergraphs over the oracle universe.
    queries:
        Distinct membership queries spent.
    duality_checks:
        Number of ``Dual`` instances solved.
    trace:
        The per-iteration :class:`LearningTrace`.
    """

    minimal_true_points: Hypergraph
    maximal_false_points: Hypergraph
    queries: int
    duality_checks: int
    trace: LearningTrace

    def dnf(self) -> MonotoneDNF:
        """The learned irredundant DNF (terms = minimal true points)."""
        return MonotoneDNF.from_hypergraph(self.minimal_true_points)

    def cnf(self) -> MonotoneCNF:
        """The learned irredundant CNF (clauses = complements of MFP)."""
        return MonotoneCNF.from_hypergraph(
            complement_family(self.maximal_false_points)
        )

    def evaluate(self, point) -> bool:
        """Evaluate the learned function at a point (via the DNF)."""
        return any(
            edge <= frozenset(point) for edge in self.minimal_true_points.edges
        )


def _duality_sides(
    universe: frozenset,
    maximal_false: set[frozenset],
    minimal_true: set[frozenset],
) -> tuple[Hypergraph, Hypergraph]:
    """The ``Dual`` instance asking "are the borders complete?"."""
    g = Hypergraph(
        (universe - m for m in maximal_false), vertices=universe
    )
    h = Hypergraph(minimal_true, vertices=universe)
    return g, h


def _uncovered_point_from_refutation(
    g_side: Hypergraph,
    h_side: Hypergraph,
    universe: frozenset,
    result: DualityResult,
) -> frozenset:
    """An uncovered point: below no known false max, above no known true min.

    Mirrors the itemset-identification witness conversion (they are the
    same lemma): a clean new-transversal witness is used directly (or
    complemented when it speaks about the transposed instance); an
    extra-edge-of-H witness shrinks by one vertex; otherwise the exact
    transversal oracle supplies a missing minimal transversal.
    """
    witness = result.certificate.witness
    if witness is not None:
        role = classify_witness(g_side, h_side, witness)
        if role is WitnessRole.NEW_TRANSVERSAL_OF_G:
            return frozenset(witness)
        if role is WitnessRole.NEW_TRANSVERSAL_OF_H:
            return frozenset(universe - witness)
        if role is WitnessRole.EXTRA_EDGE_OF_H:
            for a in sorted(witness, key=vertex_key):
                shrunk = frozenset(witness - {a})
                if is_transversal(shrunk, g_side):
                    return shrunk
    exact = transversal_hypergraph(g_side)
    claimed = set(h_side.edges)
    for t in exact.edges:
        if t not in claimed:
            return frozenset(t)
    # tr(G) ⊆ H but H ≠ tr(G): some claimed true minimum is not a
    # minimal transversal — shrink it (the engine gave no usable witness).
    for t in sorted(claimed - set(exact.edges), key=vertex_key):
        for a in sorted(t, key=vertex_key):
            shrunk = frozenset(t - {a})
            if is_transversal(shrunk, g_side):
                return shrunk
    raise RuntimeError("refuted duality but no uncovered point exists")


def learn_monotone_function(
    oracle: MembershipOracle,
    method: str = DEFAULT_METHOD,
    max_iterations: int | None = None,
) -> LearnedFunction:
    """Learn a monotone function exactly from membership queries.

    Parameters
    ----------
    oracle:
        The hidden function behind a :class:`MembershipOracle`.
    method:
        Duality engine for the completeness checks (the paper's point:
        ``"logspace"`` works, giving a quadratic-logspace checker).
    max_iterations:
        Safety valve; ``None`` runs to completion (termination is
        guaranteed — every iteration adds one new border point).

    Returns a :class:`LearnedFunction`; its DNF/CNF are exactly the
    hidden function's prime implicants/implicates.
    """
    universe = oracle.universe
    trace = LearningTrace()
    duality_checks = 0

    # Constant-false seeding: if even the full set is false, the borders
    # are MTP = ∅, MFP = {V}.
    if not oracle.query(universe):
        return LearnedFunction(
            minimal_true_points=Hypergraph.empty(universe),
            maximal_false_points=Hypergraph([universe], vertices=universe),
            queries=oracle.query_count,
            duality_checks=0,
            trace=trace,
        )

    minimal_true: set[frozenset] = {minimize_true_point(oracle, universe)}
    maximal_false: set[frozenset] = set()
    if oracle.query(frozenset()):
        # Constant true: the only minimal true point is ∅ and there is no
        # false point at all; the seeded state is already complete.
        pass
    else:
        maximal_false.add(maximize_false_point(oracle, frozenset()))

    iterations = 0
    while True:
        if max_iterations is not None and iterations >= max_iterations:
            raise RuntimeError(f"learner exceeded {max_iterations} iterations")
        iterations += 1

        g_side, h_side = _duality_sides(universe, maximal_false, minimal_true)
        result = decide_duality(g_side, h_side, method=method)
        duality_checks += 1
        if result.is_dual:
            break

        uncovered = _uncovered_point_from_refutation(
            g_side, h_side, universe, result
        )
        before = oracle.query_count
        if oracle.query(uncovered):
            new_point = minimize_true_point(oracle, uncovered)
            if new_point in minimal_true:
                raise RuntimeError("learner repeated a minimal true point")
            minimal_true.add(new_point)
            trace.steps.append(
                ("true-min", new_point, oracle.query_count - before)
            )
        else:
            new_point = maximize_false_point(oracle, uncovered)
            if new_point in maximal_false:
                raise RuntimeError("learner repeated a maximal false point")
            maximal_false.add(new_point)
            trace.steps.append(
                ("false-max", new_point, oracle.query_count - before)
            )

    return LearnedFunction(
        minimal_true_points=Hypergraph(minimal_true, vertices=universe),
        maximal_false_points=Hypergraph(maximal_false, vertices=universe),
        queries=oracle.query_count,
        duality_checks=duality_checks,
        trace=trace,
    )
