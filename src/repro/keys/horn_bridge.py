"""Functional dependencies ⟷ definite Horn theories.

A functional dependency ``X → Y`` over a relation schema is, logically,
the set of definite Horn clauses ``{X → A : A ∈ Y}`` over the attribute
alphabet; attribute-set closure is forward chaining; the closed
attribute sets form a closure system — precisely an
intersection-closed model family, i.e. the model set of a definite
Horn theory over the attributes (plus the top element).

This bridge makes the identification executable, connecting the
database side of the paper (Prop. 1.2, Armstrong relations [7, 23, 6])
to the Horn machinery of :mod:`repro.logic`:

* :func:`fd_schema_to_horn` / :func:`horn_to_fd_schema` translate both
  ways (losslessly up to clause normalisation);
* closure computations agree attribute-for-attribute;
* the schema's closed sets are exactly the Horn theory's models that
  the full attribute set dominates — and the *meet-irreducible* closed
  sets are the theory's characteristic models (minus the top), the same
  compression the envelope literature [33, 19] uses.
"""

from __future__ import annotations

from repro._util import vertex_key
from repro.errors import InvalidInstanceError
from repro.keys.fd import FDSchema, FunctionalDependency
from repro.logic.horn import HornClause, HornTheory


def fd_schema_to_horn(schema: FDSchema) -> HornTheory:
    """The definite Horn theory of a set of FDs (one clause per rhs atom)."""
    clauses = []
    for dep in schema.dependencies:
        for attr in sorted(dep.rhs, key=vertex_key):
            if attr not in dep.lhs:  # X → A with A ∈ X is a tautology
                clauses.append(HornClause(dep.lhs, attr))
    return HornTheory(clauses, atoms=schema.attributes)


def horn_to_fd_schema(theory: HornTheory) -> FDSchema:
    """The FD schema of a definite Horn theory (clauses become unit FDs).

    Facts (empty bodies) become FDs ``∅ → A``; negative clauses have no
    FD reading and are rejected.
    """
    if not theory.is_definite():
        raise InvalidInstanceError(
            "only definite Horn theories translate to FD schemas "
            "(negative clauses have no functional-dependency reading)"
        )
    deps = [
        FunctionalDependency(clause.body, frozenset({clause.head}))
        for clause in theory.clauses
    ]
    return FDSchema(theory.atoms, deps)


def closures_agree(schema: FDSchema, start) -> bool:
    """Does FD closure equal Horn forward chaining from the same seed?"""
    theory = fd_schema_to_horn(schema)
    return schema.closure(start) == theory.closure(start)


def closed_sets_are_horn_models(schema: FDSchema) -> bool:
    """Closed attribute sets = models of the translated theory.

    Both sides enumerate exponentially; intended for the experiment
    scale, where it verifies the bridge exactly.
    """
    theory = fd_schema_to_horn(schema)
    return set(schema.closed_sets()) == set(theory.models())


def characteristic_closed_sets(schema: FDSchema) -> set[frozenset]:
    """The meet-irreducible closed sets, via the Horn characteristic models.

    The full attribute set is the closure system's top and is
    intersection-reducible whenever two distinct coatoms exist; the
    characteristic models of the model family are exactly the
    meet-irreducible closed sets (plus the top when it is irreducible).
    """
    from repro.logic.horn import characteristic_models

    theory = fd_schema_to_horn(schema)
    return characteristic_models(theory.models())
