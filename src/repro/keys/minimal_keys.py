"""Minimal keys of relational instances and Proposition 1.2.

The *additional key for instance* problem (paper, Section 1): given a
relational instance ``R`` over attribute set ``S`` and a set ``K`` of
minimal keys of ``R``, is there a minimal key not already in ``K``?
Eiter–Gottlob [7] showed this logspace-equivalent to ``Dual``.

The classical reduction goes through the **difference hypergraph**: for
every pair of distinct tuples, take the set of attributes on which they
*disagree*.  A set of attributes is a key iff it hits every such
difference set (two tuples agreeing on the key would need an empty
intersection with their difference set), so

    minimal keys of ``R``  =  ``tr(min(D(R)))``.

Hence "no additional key" ⟺ ``K = tr(min(D(R)))`` — a ``Dual`` instance
once ``K ⊆ tr(min(D(R)))`` is verified — and every engine of
:mod:`repro.duality` decides it, with witnesses converting into concrete
new minimal keys.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro._util import minimize_family, powerset, vertex_key
from repro.errors import InvalidInstanceError
from repro.hypergraph import Hypergraph, transversal_hypergraph
from repro.hypergraph.transversal import is_minimal_transversal, is_transversal
from repro.duality.engine import decide_duality
from repro.duality.result import DualityResult
from repro.duality.witness import WitnessRole, classify_witness


class RelationalInstance:
    """An explicit relational instance: named attributes, arbitrary values.

    Rows are mappings attribute → value; all rows must cover the full
    attribute set.  Duplicate rows are collapsed (keys are about
    distinguishing *distinct* tuples; duplicated tuples make every
    attribute set a non-key, so instances with duplicates have no keys —
    we reject them loudly instead).
    """

    __slots__ = ("_attributes", "_rows")

    def __init__(
        self,
        rows: Iterable[Mapping],
        attributes: Sequence | None = None,
    ) -> None:
        rows = list(rows)
        if attributes is None:
            if not rows:
                raise InvalidInstanceError(
                    "attributes are required for an empty instance"
                )
            attributes = sorted(rows[0].keys(), key=vertex_key)
        self._attributes = tuple(attributes)
        attr_set = set(self._attributes)
        frozen_rows = []
        for row in rows:
            if set(row.keys()) != attr_set:
                raise InvalidInstanceError(
                    f"row {row!r} does not match attributes {self._attributes}"
                )
            frozen_rows.append(tuple(row[a] for a in self._attributes))
        if len(set(frozen_rows)) != len(frozen_rows):
            raise InvalidInstanceError(
                "instance contains duplicate tuples — no attribute set can "
                "be a key; deduplicate first"
            )
        self._rows = tuple(frozen_rows)

    @property
    def attributes(self) -> tuple:
        """The attribute names, in declaration order."""
        return self._attributes

    @property
    def rows(self) -> tuple[tuple, ...]:
        """The tuples, as value vectors aligned with :attr:`attributes`."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def column(self, attribute) -> tuple:
        """All values of one attribute."""
        idx = self._attributes.index(attribute)
        return tuple(row[idx] for row in self._rows)

    def projection_distinguishes(self, attrs: Iterable) -> bool:
        """True iff the attribute set distinguishes every pair of tuples."""
        positions = [self._attributes.index(a) for a in attrs]
        seen = set()
        for row in self._rows:
            key = tuple(row[p] for p in positions)
            if key in seen:
                return False
            seen.add(key)
        return True


def difference_hypergraph(instance: RelationalInstance) -> Hypergraph:
    """The (minimised) difference hypergraph ``min(D(R))``.

    One edge per tuple pair: the attributes where the two tuples differ;
    the family is minimised (only inclusion-minimal difference sets
    matter for transversality).  Distinct tuples always differ somewhere,
    so no edge is empty.
    """
    attrs = instance.attributes
    edges = set()
    rows = instance.rows
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            edges.add(
                frozenset(
                    a for a, x, y in zip(attrs, rows[i], rows[j]) if x != y
                )
            )
    return Hypergraph(minimize_family(edges), vertices=attrs)


def is_key(instance: RelationalInstance, attrs: Iterable) -> bool:
    """Key test, by definition (no two tuples agree on ``attrs``)."""
    return instance.projection_distinguishes(frozenset(attrs))


def is_minimal_key(instance: RelationalInstance, attrs: Iterable) -> bool:
    """Minimal-key test: a key none of whose one-smaller subsets is a key."""
    key = frozenset(attrs)
    if not is_key(instance, key):
        return False
    return all(not is_key(instance, key - {a}) for a in key)


def minimal_keys(instance: RelationalInstance) -> Hypergraph:
    """All minimal keys, via the transversal characterisation.

    ``keys(R) = tr(min(D(R)))`` — exact (Berge) computation.
    """
    return transversal_hypergraph(difference_hypergraph(instance))


def minimal_keys_brute_force(instance: RelationalInstance) -> Hypergraph:
    """All minimal keys by powerset scan (tests only)."""
    found = [
        attrs
        for attrs in powerset(instance.attributes)
        if is_minimal_key(instance, attrs)
    ]
    return Hypergraph(found, vertices=instance.attributes)


@dataclass(frozen=True)
class AdditionalKeyOutcome:
    """Answer of the additional-key-for-instance problem.

    ``exists`` — True iff some minimal key is missing from the claimed
    set; ``new_key`` — such a key (minimal), when one exists;
    ``duality`` — the underlying engine result.
    """

    exists: bool
    duality: DualityResult
    new_key: frozenset | None = None


def validate_claimed_keys(
    instance: RelationalInstance, claimed: Hypergraph
) -> None:
    """Check every claimed key is a *minimal* key of the instance."""
    for edge in claimed.edges:
        if not is_key(instance, edge):
            raise InvalidInstanceError(
                f"claimed key {sorted(map(str, edge))} is not a key"
            )
        if not is_minimal_key(instance, edge):
            raise InvalidInstanceError(
                f"claimed key {sorted(map(str, edge))} is not minimal"
            )


def decide_additional_key(
    instance: RelationalInstance,
    claimed: Hypergraph,
    method: str = "bm",
    validate: bool = True,
) -> AdditionalKeyOutcome:
    """The additional-key-for-instance problem, via ``Dual`` (Prop. 1.2).

    ``claimed`` is the known set ``K`` of minimal keys.  The reduction:
    no additional key ⟺ ``K = tr(min(D(R)))``, decided by the selected
    duality engine.  On YES (a key is missing), the duality witness — a
    transversal of ``min(D(R))`` covering no claimed key — is minimised
    into a concrete **new minimal key**.
    """
    if validate:
        validate_claimed_keys(instance, claimed)
    diff = difference_hypergraph(instance)
    claimed = claimed.with_vertices(diff.vertices)

    result = decide_duality(diff, claimed, method=method)
    if result.is_dual:
        return AdditionalKeyOutcome(exists=False, duality=result)

    witness = result.certificate.witness
    new_key: frozenset | None = None
    if witness is not None:
        role = classify_witness(diff, claimed, witness)
        if role is WitnessRole.NEW_TRANSVERSAL_OF_G:
            new_key = witness
    if new_key is None:
        # Oracle fallback (validated claims guarantee K ⊆ tr(D), so a
        # minimal transversal outside K exists).
        exact = transversal_hypergraph(diff)
        missing = [t for t in exact.edges if t not in set(claimed.edges)]
        if not missing:
            raise InvalidInstanceError(
                "duality refuted but no key is missing — claimed keys "
                "are not minimal keys of the instance"
            )
        new_key = missing[0]
    else:
        from repro.hypergraph.transversal import minimalize_transversal

        new_key = minimalize_transversal(new_key, diff)

    assert is_minimal_key(instance, new_key)
    assert new_key not in set(claimed.edges)
    return AdditionalKeyOutcome(exists=True, duality=result, new_key=new_key)


def enumerate_minimal_keys_incrementally(
    instance: RelationalInstance, method: str = "bm"
) -> list[frozenset]:
    """Enumerate all minimal keys by iterating the additional-key oracle.

    The Prop. 1.2 remark in action: enumerating minimal keys ≡
    enumerating ``tr`` of a hypergraph computable from ``R``.  Starts
    from one greedily-minimised key (the full attribute set is always a
    key for duplicate-free instances) and repeats ``decide_additional_key``
    until it answers "no".
    """
    from repro.hypergraph.transversal import minimalize_transversal

    diff = difference_hypergraph(instance)
    first = minimalize_transversal(frozenset(instance.attributes), diff)
    known: list[frozenset] = [first]
    while True:
        outcome = decide_additional_key(
            instance,
            Hypergraph(known, vertices=instance.attributes),
            method=method,
            validate=False,
        )
        if not outcome.exists:
            return sorted(known, key=lambda k: (len(k), sorted(map(str, k))))
        known.append(outcome.new_key)
