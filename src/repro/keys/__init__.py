"""Relational keys and functional dependencies (Prop. 1.2 and refs [7, 23, 6])."""

from repro.keys.armstrong import (
    agree_set,
    agree_sets,
    armstrong_relation,
    satisfied_closure_matches,
    satisfies,
)
from repro.keys.fd import FDSchema, FunctionalDependency, fd
from repro.keys.minimal_keys import (
    AdditionalKeyOutcome,
    RelationalInstance,
    decide_additional_key,
    difference_hypergraph,
    enumerate_minimal_keys_incrementally,
    is_key,
    is_minimal_key,
    minimal_keys,
    minimal_keys_brute_force,
    validate_claimed_keys,
)

__all__ = [
    "AdditionalKeyOutcome",
    "FDSchema",
    "FunctionalDependency",
    "RelationalInstance",
    "agree_set",
    "agree_sets",
    "armstrong_relation",
    "decide_additional_key",
    "difference_hypergraph",
    "enumerate_minimal_keys_incrementally",
    "fd",
    "is_key",
    "is_minimal_key",
    "minimal_keys",
    "minimal_keys_brute_force",
    "satisfied_closure_matches",
    "satisfies",
    "validate_claimed_keys",
]
