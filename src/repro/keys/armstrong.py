"""Armstrong relations: instances realising exactly a given FD set.

The paper lists the construction of Armstrong relations among the
problems tied to ``Dual`` ([7, 23, 6]).  An *Armstrong relation* for an
FD set ``F`` satisfies exactly the dependencies implied by ``F`` — it is
the universal counterexample: any FD not implied by ``F`` visibly fails
in it.

Construction (classical, via the closure system): take one row ``r₀`` of
all-zeros; for the ``i``-th meet-irreducible closed set ``C``, add a row
that agrees with ``r₀`` exactly on ``C`` (value 0 there, value ``i``
elsewhere).  Agree sets of the resulting instance are intersections of
closed sets — i.e. precisely the closed sets — which realises ``F``.
"""

from __future__ import annotations

from itertools import combinations

from repro._util import vertex_key
from repro.keys.fd import FDSchema, FunctionalDependency
from repro.keys.minimal_keys import RelationalInstance


def armstrong_relation(schema: FDSchema) -> RelationalInstance:
    """Build an Armstrong relation for the FD schema.

    Rows: the all-zero row plus one row per meet-irreducible closed set
    (agreeing with row 0 exactly on that set).  Size is therefore
    ``#meet-irreducibles + 1`` — the standard bound.
    """
    attrs = sorted(schema.attributes, key=vertex_key)
    generators = sorted(
        schema.meet_irreducible_closed_sets(),
        key=lambda c: (len(c), tuple(sorted(map(str, c)))),
    )
    rows = [{a: 0 for a in attrs}]
    for index, closed in enumerate(generators, start=1):
        rows.append({a: (0 if a in closed else index) for a in attrs})
    return RelationalInstance(rows, attributes=attrs)


def agree_set(instance: RelationalInstance, i: int, j: int) -> frozenset:
    """Attributes on which rows ``i`` and ``j`` agree."""
    attrs = instance.attributes
    return frozenset(
        a
        for a, x, y in zip(attrs, instance.rows[i], instance.rows[j])
        if x == y
    )


def agree_sets(instance: RelationalInstance) -> set[frozenset]:
    """All pairwise agree sets of the instance."""
    return {
        agree_set(instance, i, j)
        for i, j in combinations(range(len(instance)), 2)
    }


def satisfies(instance: RelationalInstance, dep: FunctionalDependency) -> bool:
    """Does the instance satisfy ``X → Y``?

    Holds iff every pair of rows agreeing on ``X`` agrees on ``Y`` —
    equivalently, every agree set containing ``X`` contains ``Y``.
    """
    for i, j in combinations(range(len(instance)), 2):
        agreement = agree_set(instance, i, j)
        if dep.lhs <= agreement and not dep.rhs <= agreement:
            return False
    return True


def satisfied_closure_matches(
    instance: RelationalInstance, schema: FDSchema
) -> bool:
    """The Armstrong property: instance FDs = implied FDs, exactly.

    Checked exhaustively over all single-attribute-consequent
    dependencies (which determine the full FD theory): for every ``X ⊆ S`` and
    ``A ∈ S``, ``X → A`` holds in the instance iff ``A ∈ X⁺``.
    """
    from repro._util import powerset

    for x in powerset(schema.attributes):
        closure = schema.closure(x)
        for a in schema.attributes:
            holds = satisfies(instance, FunctionalDependency(x, frozenset({a})))
            if holds != (a in closure):
                return False
    return True
