"""Functional dependencies: closure, implication, keys of an FD schema.

Support machinery for the Armstrong-relation construction ([7, 23, 6] in
the paper's related-problems list).  An FD ``X → Y`` over attribute set
``S``; a set of FDs induces a closure operator on attribute sets, whose
fixed points (closed sets) form the lattice the Armstrong construction
realises.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro._util import powerset, vertex_key
from repro.errors import InvalidInstanceError
from repro.hypergraph import Hypergraph, transversal_hypergraph


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``lhs → rhs`` (both attribute frozensets)."""

    lhs: frozenset
    rhs: frozenset

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))

    def attributes(self) -> frozenset:
        """All attributes mentioned."""
        return self.lhs | self.rhs

    def __str__(self) -> str:
        left = " ".join(str(a) for a in sorted(self.lhs, key=vertex_key)) or "∅"
        right = " ".join(str(a) for a in sorted(self.rhs, key=vertex_key))
        return f"{left} -> {right}"


def fd(lhs: Iterable, rhs: Iterable) -> FunctionalDependency:
    """Shorthand constructor: ``fd("AB", "C")`` accepts iterables of attrs."""
    return FunctionalDependency(frozenset(lhs), frozenset(rhs))


class FDSchema:
    """A set of FDs over a fixed attribute universe.

    Provides the closure operator, implication testing, closed-set
    enumeration and candidate keys — everything the Armstrong
    construction and its tests need.
    """

    def __init__(
        self, attributes: Iterable, dependencies: Iterable[FunctionalDependency]
    ) -> None:
        self.attributes = frozenset(attributes)
        self.dependencies = tuple(dependencies)
        for dep in self.dependencies:
            if not dep.attributes() <= self.attributes:
                raise InvalidInstanceError(
                    f"dependency {dep} mentions unknown attributes"
                )

    # ------------------------------------------------------------------
    # Closure machinery
    # ------------------------------------------------------------------

    def closure(self, attrs: Iterable) -> frozenset:
        """``X⁺``: the closure of ``attrs`` under the FDs (fixpoint chase)."""
        current = set(attrs)
        if not current <= self.attributes:
            raise InvalidInstanceError("closure of unknown attributes requested")
        changed = True
        while changed:
            changed = False
            for dep in self.dependencies:
                if dep.lhs <= current and not dep.rhs <= current:
                    current |= dep.rhs
                    changed = True
        return frozenset(current)

    def implies(self, dep: FunctionalDependency) -> bool:
        """Does the schema imply ``dep``?  (``dep.rhs ⊆ dep.lhs⁺``.)"""
        return dep.rhs <= self.closure(dep.lhs)

    def is_closed(self, attrs: Iterable) -> bool:
        """Is ``attrs`` a fixed point of the closure operator?"""
        attrs = frozenset(attrs)
        return self.closure(attrs) == attrs

    def closed_sets(self) -> list[frozenset]:
        """All closed sets (exponential — small universes only)."""
        return [x for x in powerset(self.attributes) if self.is_closed(x)]

    def meet_irreducible_closed_sets(self) -> list[frozenset]:
        """Closed sets that are not intersections of strictly larger ones.

        These generate the closure system by intersection and are the
        rows the Armstrong construction materialises (minus the top).
        """
        closed = self.closed_sets()
        irreducible = []
        for x in closed:
            if x == frozenset(self.attributes):
                continue
            meet = frozenset(self.attributes)
            for y in closed:
                if x < y:
                    meet &= y
            if meet != x:
                irreducible.append(x)
        return irreducible

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def is_superkey(self, attrs: Iterable) -> bool:
        """``attrs⁺ = S``?"""
        return self.closure(attrs) == self.attributes

    def candidate_keys(self) -> Hypergraph:
        """All minimal keys of the schema, via hypergraph dualization.

        A set is a superkey iff it meets the complement of every
        *maximal non-superkey-closed* set; hence the candidate keys are
        exactly ``tr({S − C : C maximal proper closed set})`` — another
        place the ``Dual`` machinery earns its keep.
        """
        closed = self.closed_sets()
        full = frozenset(self.attributes)
        proper = [c for c in closed if c != full]
        maximal = [
            c for c in proper if not any(c < d for d in proper)
        ]
        complements = Hypergraph(
            (full - c for c in maximal), vertices=full
        )
        return transversal_hypergraph(complements)

    def candidate_keys_brute_force(self) -> Hypergraph:
        """Candidate keys by powerset scan (tests only)."""
        keys = [
            x
            for x in powerset(self.attributes)
            if self.is_superkey(x)
            and all(not self.is_superkey(x - {a}) for a in x)
        ]
        return Hypergraph(keys, vertices=self.attributes)

    def canonical_dependencies(self) -> list[FunctionalDependency]:
        """One FD ``X → X⁺ − X`` per non-closed subset (tests/inspection)."""
        out = []
        for x in powerset(self.attributes):
            cl = self.closure(x)
            if cl != x:
                out.append(FunctionalDependency(x, cl - x))
        return out
