"""Persistent engine service: warm workers behind a cached request queue.

The :mod:`repro.parallel` subsystem made one call fast; this package
makes *many* calls cheap.  Its pieces:

* :class:`EnginePool` — a persistent worker pool with an explicit
  **start / submit / drain / shutdown** lifecycle.  Workers spawn once
  and stay warm across arbitrarily many ``decide_duality``/
  ``solve_many`` batches (both accept ``pool=``); a worker that dies
  mid-batch is detected, the pool respawns, and the lost work re-runs.
* :class:`EngineService` — the request-queue front end ``repro serve``
  drives: a :class:`~repro.parallel.batch.ResultCache` wired *in front*
  of the queue (optionally persisted across sessions), ``submit`` /
  ``drain`` semantics, and responses in submission order with the same
  verdicts and certificates serial calls would produce.
* :func:`response_to_json` — one JSON verdict line per answer, with
  witnesses through the lossless vertex codec.

Layering: ``repro.service`` sits on top of ``repro.parallel`` (it reuses
``solve_many``'s cache/dedup logic and the shard executors); nothing
below imports it, and plain library use never pays for it.
"""

from repro.service.pool import EnginePool, PoolClosedError
from repro.service.server import (
    EngineService,
    ServiceResponse,
    response_to_json,
)

__all__ = [
    "EnginePool",
    "EngineService",
    "PoolClosedError",
    "ServiceResponse",
    "response_to_json",
]
