"""Persistent engine service: a concurrent scheduler over warm workers.

The :mod:`repro.parallel` subsystem made one call fast; this package
makes *many concurrent* calls cheap.  Its pieces:

* :class:`EnginePool` — a persistent worker pool with an explicit
  **start / submit / drain / shutdown** lifecycle.  ``submit`` returns
  a :class:`PoolFuture` per work item (result/done/callbacks, out of
  submission order), workers spawn once and stay warm across
  arbitrarily many batches, and a worker that dies mid-flight is
  detected, the pool respawns, and **only the lost items** re-run.
* :class:`EngineService` — the scheduler front end ``repro serve`` and
  the TCP server drive: a :class:`~repro.parallel.batch.ResultCache`
  consulted *at submit time* (hits resolve instantly, optionally
  persisted across sessions), in-flight dedup of identical instances,
  and a :class:`ServiceTicket` per request — an id that doubles as a
  completion handle.  ``drain`` remains the lock-step view: responses
  in submission order with the same verdicts and certificates serial
  calls would produce.
* :func:`response_to_json` — one JSON verdict line per answer, with
  witnesses through the lossless vertex codec.

Layering: ``repro.service`` sits on top of ``repro.parallel`` (it reuses
``solve_many``'s cache and worker entry points); nothing below imports
it, and plain library use never pays for it.
"""

from repro.service.pool import (
    Completion,
    EnginePool,
    HedgedFuture,
    PoolClosedError,
    PoolFuture,
)
from repro.service.server import (
    EngineService,
    ServiceResponse,
    ServiceTicket,
    response_to_json,
)

__all__ = [
    "Completion",
    "EnginePool",
    "EngineService",
    "HedgedFuture",
    "PoolClosedError",
    "PoolFuture",
    "ServiceResponse",
    "ServiceTicket",
    "response_to_json",
]
